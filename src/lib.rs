//! # rcg-vliw — register component graph partitioning for clustered VLIWs
//!
//! A full reproduction of *Register Assignment for Software Pipelining with
//! Partitioned Register Banks* (Hiser, Carr, Sweany, Beaty; IPPS/SPDP 2000):
//! a retargetable code-generation framework that software-pipelines
//! innermost loops for VLIW machines whose register file is split into
//! per-cluster banks, and assigns values to banks by partitioning a
//! **register component graph** (RCG).
//!
//! This crate is a facade: it re-exports the workspace's layers under one
//! name. The layers, bottom-up:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`ir`] | `vliw-ir` | three-address loop IR, builder, verifier |
//! | [`machine`] | `vliw-machine` | cluster/bank/copy-model machine descriptions, §6.1 latencies |
//! | [`ddg`] | `vliw-ddg` | dependence graphs, ResII/RecII, slack |
//! | [`sched`] | `vliw-sched` | iterative modulo scheduling, MRT, list scheduling, prelude/postlude expansion |
//! | [`core`] | `vliw-core` | **the paper's contribution**: RCG build, greedy bank assignment, copy insertion, baselines, iterated refinement |
//! | [`exact`] | `vliw-exact` | branch-and-bound optimal bank assignment — the yardstick the greedy heuristic is measured against |
//! | [`joint`] | `vliw-joint` | constraint-propagation solver for the joint (II, slot, bank) problem |
//! | [`analysis`] | `vliw-analysis` | cross-stage lint registry and diagnostics |
//! | [`regalloc`] | `vliw-regalloc` | MVE live ranges, Chaitin/Briggs per bank |
//! | [`sim`] | `vliw-sim` | cycle-accurate simulator + scalar reference oracle |
//! | [`loopgen`] | `vliw-loopgen` | the deterministic 211-loop corpus |
//! | [`pipeline`] | `vliw-pipeline` | end-to-end driver, Table 1/2 and Fig. 5–7 reproduction |
//!
//! ## Quickstart
//!
//! ```
//! use rcg_vliw::prelude::*;
//!
//! // y[i] = y[i] + a*x[i], unrolled 4×.
//! let mut b = LoopBuilder::new("daxpy");
//! let x = b.array("x", RegClass::Float, 512);
//! let y = b.array("y", RegClass::Float, 512);
//! let a = b.live_in_float_val("a", 2.0);
//! for j in 0..4 {
//!     let xv = b.load(x, j, 4);
//!     let yv = b.load(y, j, 4);
//!     let p = b.fmul(a, xv);
//!     let s = b.fadd(yv, p);
//!     b.store(y, j, 4, s);
//! }
//! let body = b.finish(64);
//!
//! // Pipeline it onto a 16-wide machine with 4 clusters of 4 FUs.
//! let machine = MachineDesc::embedded(4, 4);
//! let result = run_loop(&body, &machine, &PipelineConfig::default());
//! assert!(result.clustered_ii >= result.ideal_ii);
//! assert_eq!(result.spills, 0);
//! ```

pub use vliw_analysis as analysis;
pub use vliw_core as core;
pub use vliw_ddg as ddg;
pub use vliw_exact as exact;
pub use vliw_ir as ir;
pub use vliw_joint as joint;
pub use vliw_loopgen as loopgen;
pub use vliw_machine as machine;
pub use vliw_pipeline as pipeline;
pub use vliw_regalloc as regalloc;
pub use vliw_sched as sched;
pub use vliw_sim as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use vliw_core::{
        assign_banks, assign_banks_caps, build_rcg, insert_copies, iterated_partition, Partition,
        PartitionConfig,
    };
    pub use vliw_ddg::{build_ddg, compute_slack, min_ii, rec_ii, res_ii};
    pub use vliw_exact::{solve as solve_exact, ExactConfig, ExactResult};
    pub use vliw_ir::{Loop, LoopBuilder, Opcode, RegClass, VReg};
    pub use vliw_machine::{ClusterId, CopyModel, LatencyTable, MachineDesc};
    pub use vliw_pipeline::{run_loop, LoopResult, PartitionerKind, PipelineConfig};
    pub use vliw_regalloc::allocate;
    pub use vliw_sched::{
        expand, list_schedule, schedule_loop, verify_schedule, ImsConfig, SchedProblem, Schedule,
    };
    pub use vliw_sim::{check_equivalence, run_reference, simulate};
}
