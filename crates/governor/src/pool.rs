//! Global byte pool with RAII grants and an interactive reserve.
//!
//! The design follows the budgeted-pool shape from query engines: one
//! process-wide limit, cheap atomic accounting, and consumers that hold
//! a [`Grant`] for as long as the bytes are live. Heavy consumers may
//! only occupy the pool up to `limit − reserve`, so interactive work can
//! always make progress — that carve-out is what lets the serve tier
//! promise "zero interactive sheds" as a contract rather than a hope.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fraction of the pool reserved for interactive work (denominator; the
/// reserve is `limit / INTERACTIVE_RESERVE_DIV`).
const INTERACTIVE_RESERVE_DIV: u64 = 8;

/// Typed admission/accounting failures. Distinct from malformed input:
/// a `Shed` is the server saying "correct request, wrong moment".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// Transient: the pool is momentarily full. Retry after the hint.
    Shed { retry_after_ms: u64 },
    /// Permanent: the request can never fit (single ask exceeds the
    /// heavy capacity outright).
    Rejected,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Shed { retry_after_ms } => {
                write!(f, "overloaded, retry after {retry_after_ms} ms")
            }
            PoolError::Rejected => write!(f, "request exceeds server resource limits"),
        }
    }
}

struct PoolInner {
    limit: u64,
    reserve: u64,
    used: AtomicU64,
}

/// Process-wide byte budget. Cloning shares the same accounting.
#[derive(Clone)]
pub struct ResourcePool {
    inner: Arc<PoolInner>,
}

impl ResourcePool {
    pub fn new(limit: u64) -> ResourcePool {
        let limit = limit.max(1);
        ResourcePool {
            inner: Arc::new(PoolInner {
                limit,
                reserve: (limit / INTERACTIVE_RESERVE_DIV).max(1),
                used: AtomicU64::new(0),
            }),
        }
    }

    pub fn limit(&self) -> u64 {
        self.inner.limit
    }

    /// Bytes currently granted out.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// The ceiling heavy grants may occupy (limit minus the interactive
    /// reserve).
    pub fn heavy_capacity(&self) -> u64 {
        self.inner.limit - self.inner.reserve
    }

    /// Would a heavy grant of `bytes` succeed right now? (Advisory: the
    /// answer can change before a subsequent `grant_heavy`.)
    pub fn can_grant_heavy(&self, bytes: u64) -> bool {
        bytes <= self.heavy_capacity() && self.used().saturating_add(bytes) <= self.heavy_capacity()
    }

    /// Grant `bytes` against the heavy share of the pool.
    pub fn grant_heavy(&self, bytes: u64) -> Result<Grant, PoolError> {
        if bytes > self.heavy_capacity() {
            return Err(PoolError::Rejected);
        }
        self.reserve_up_to(bytes, self.heavy_capacity())
    }

    /// Grant `bytes` with access to the full pool including the
    /// interactive reserve. Only shedding is possible (never rejection):
    /// interactive asks are bounded small by construction.
    pub fn grant_interactive(&self, bytes: u64) -> Result<Grant, PoolError> {
        self.reserve_up_to(bytes, self.inner.limit)
    }

    fn reserve_up_to(&self, bytes: u64, ceiling: u64) -> Result<Grant, PoolError> {
        let mut cur = self.inner.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(bytes);
            if next > ceiling {
                return Err(PoolError::Shed {
                    retry_after_ms: 100,
                });
            }
            match self.inner.used.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Ok(Grant {
                        pool: self.clone(),
                        bytes,
                        ceiling,
                    })
                }
                Err(actual) => cur = actual,
            }
        }
    }

    fn release(&self, bytes: u64) {
        let prev = self.inner.used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "pool release underflow");
    }
}

/// RAII hold on pool bytes. Dropping returns them.
pub struct Grant {
    pool: ResourcePool,
    bytes: u64,
    ceiling: u64,
}

impl fmt::Debug for Grant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Grant")
            .field("bytes", &self.bytes)
            .field("ceiling", &self.ceiling)
            .finish()
    }
}

impl Grant {
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Try to grow this grant by `extra` bytes under the same ceiling it
    /// was opened with. Returns false (leaving the grant unchanged) if
    /// the pool cannot cover it.
    pub fn grow(&mut self, extra: u64) -> bool {
        match self.pool.reserve_up_to(extra, self.ceiling) {
            Ok(g) => {
                // Absorb the bytes; forget the temporary so its Drop
                // does not double-release them.
                self.bytes += g.bytes;
                std::mem::forget(g);
                true
            }
            Err(_) => false,
        }
    }

    /// Return `give` bytes early (e.g. a solver phase finished and freed
    /// its arenas).
    pub fn shrink(&mut self, give: u64) {
        let give = give.min(self.bytes);
        self.bytes -= give;
        self.pool.release(give);
    }
}

impl Drop for Grant {
    fn drop(&mut self) {
        self.pool.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_account_and_release() {
        let p = ResourcePool::new(1000);
        let g = p.grant_heavy(100).unwrap();
        assert_eq!(p.used(), 100);
        drop(g);
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn heavy_cannot_touch_reserve() {
        let p = ResourcePool::new(800);
        // reserve = 100, heavy capacity = 700
        assert_eq!(p.heavy_capacity(), 700);
        let _g = p.grant_heavy(700).unwrap();
        assert!(matches!(p.grant_heavy(1), Err(PoolError::Shed { .. })));
        // Interactive can still use the reserve.
        let i = p.grant_interactive(100).unwrap();
        assert_eq!(p.used(), 800);
        drop(i);
    }

    #[test]
    fn oversized_ask_is_rejected_not_shed() {
        let p = ResourcePool::new(800);
        assert_eq!(p.grant_heavy(701).unwrap_err(), PoolError::Rejected);
    }

    #[test]
    fn grow_and_shrink() {
        let p = ResourcePool::new(1000);
        let mut g = p.grant_heavy(100).unwrap();
        assert!(g.grow(200));
        assert_eq!(p.used(), 300);
        assert_eq!(g.bytes(), 300);
        // Heavy ceiling is 875; growing past it fails and changes nothing.
        assert!(!g.grow(10_000));
        assert_eq!(p.used(), 300);
        g.shrink(250);
        assert_eq!(p.used(), 50);
        drop(g);
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn concurrent_grants_never_exceed_limit() {
        let p = ResourcePool::new(10_000);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    if let Ok(g) = p.grant_heavy(100) {
                        assert!(p.used() <= 10_000);
                        drop(g);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.used(), 0);
    }
}
