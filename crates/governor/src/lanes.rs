//! Interactive vs heavy lane classification.
//!
//! The first-pass heuristic is syntactic and allocation-free: scan the
//! raw wire line for the canonical `partitioner exact`/`partitioner
//! joint` config tokens and count `vreg ` declaration lines (the
//! canonical loop text declares each register on its own `vreg vN CLASS`
//! line, so substring occurrences == register count). Exact/joint
//! requests over the vreg threshold go to the heavy lane — the ≤12-vreg
//! slice closes in milliseconds, so only the larger instances deserve
//! isolation.
//!
//! The heuristic is then *corrected by observation*: request shapes seen
//! to run slow are promoted to the heavy lane, and heavy-looking shapes
//! that actually return fast (warm cache hits of a hard instance) are
//! demoted back to interactive. Both correction sets are fixed-size
//! lock-free hash tables — slight forgetfulness under collision is fine,
//! the heuristic re-learns on the next observation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Requests observed slower than this are promoted to the heavy lane.
pub const HEAVY_SERVICE_THRESHOLD_US: u64 = 50_000;

/// Heavy-classified requests observed faster than this (warm hits) are
/// demoted back to the interactive lane.
const FAST_SERVICE_THRESHOLD_US: u64 = 5_000;

/// Exact/joint requests with at least this many declared vregs are
/// heavy by default (the smaller slice closes optimally in ~15 ms).
pub const HEAVY_VREG_THRESHOLD: usize = 13;

/// Slots per correction table. Power of two; collisions overwrite.
const MARK_SLOTS: usize = 1024;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    Interactive,
    Heavy,
}

impl Lane {
    pub fn as_str(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Heavy => "heavy",
        }
    }
}

/// Fixed-size lock-free set of line hashes. `0` means empty, so hashes
/// are nudged off zero.
struct MarkTable {
    slots: Vec<AtomicU64>,
}

impl MarkTable {
    fn new() -> MarkTable {
        MarkTable {
            slots: (0..MARK_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn insert(&self, h: u64) {
        let h = h.max(1);
        self.slots[(h as usize) & (MARK_SLOTS - 1)].store(h, Ordering::Relaxed);
    }

    fn remove(&self, h: u64) {
        let h = h.max(1);
        let slot = &self.slots[(h as usize) & (MARK_SLOTS - 1)];
        let _ = slot.compare_exchange(h, 0, Ordering::Relaxed, Ordering::Relaxed);
    }

    fn contains(&self, h: u64) -> bool {
        let h = h.max(1);
        self.slots[(h as usize) & (MARK_SLOTS - 1)].load(Ordering::Relaxed) == h
    }
}

/// FNV-1a over the line. Requests are canonicalized upstream, so equal
/// shapes hash equal; that is all the correction tables need.
pub fn line_hash(line: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in line.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub struct LaneClassifier {
    slow: MarkTable,
    fast: MarkTable,
}

impl LaneClassifier {
    pub fn new() -> LaneClassifier {
        LaneClassifier {
            slow: MarkTable::new(),
            fast: MarkTable::new(),
        }
    }

    /// Syntactic first-pass classification of a raw wire line.
    pub fn classify_syntactic(line: &str) -> Lane {
        let exact_or_joint =
            line.contains("partitioner exact") || line.contains("partitioner joint");
        if exact_or_joint && count_occurrences(line, "vreg ") >= HEAVY_VREG_THRESHOLD {
            Lane::Heavy
        } else {
            Lane::Interactive
        }
    }

    /// Classification with observed-service-time correction applied.
    pub fn classify(&self, line: &str) -> Lane {
        let h = line_hash(line);
        if self.slow.contains(h) {
            return Lane::Heavy;
        }
        if self.fast.contains(h) {
            return Lane::Interactive;
        }
        Self::classify_syntactic(line)
    }

    /// Feed back an observed service time for `line`.
    pub fn observe(&self, line: &str, service: Duration) {
        let us = service.as_micros().min(u128::from(u64::MAX)) as u64;
        let h = line_hash(line);
        if us >= HEAVY_SERVICE_THRESHOLD_US {
            self.fast.remove(h);
            self.slow.insert(h);
        } else if us < FAST_SERVICE_THRESHOLD_US {
            self.slow.remove(h);
            // Only record a demotion when the heuristic would have sent
            // it heavy; marking every fast line wastes table slots.
            if Self::classify_syntactic(line) == Lane::Heavy {
                self.fast.insert(h);
            }
        }
    }
}

impl Default for LaneClassifier {
    fn default() -> Self {
        Self::new()
    }
}

fn count_occurrences(hay: &str, needle: &str) -> usize {
    let mut n = 0;
    let mut rest = hay;
    while let Some(i) = rest.find(needle) {
        n += 1;
        rest = &rest[i + needle.len()..];
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(partitioner: &str, vregs: usize) -> String {
        let decls: String = (0..vregs).map(|i| format!("vreg v{i} int\\n")).collect();
        format!(
            "{{\"op\":\"compile\",\"loop_text\":\"loop l\\n{decls}\",\"config_text\":\"partitioner {partitioner}\\nscheduler ims\\n\"}}"
        )
    }

    #[test]
    fn small_or_greedy_requests_are_interactive() {
        assert_eq!(
            LaneClassifier::classify_syntactic(&line("greedy", 40)),
            Lane::Interactive
        );
        assert_eq!(
            LaneClassifier::classify_syntactic(&line("joint 500", 8)),
            Lane::Interactive
        );
    }

    #[test]
    fn big_exact_and_joint_requests_are_heavy() {
        assert_eq!(
            LaneClassifier::classify_syntactic(&line("joint 500", 25)),
            Lane::Heavy
        );
        assert_eq!(
            LaneClassifier::classify_syntactic(&line("exact 500", 13)),
            Lane::Heavy
        );
    }

    #[test]
    fn slow_observation_promotes() {
        let c = LaneClassifier::new();
        let l = line("greedy", 4);
        assert_eq!(c.classify(&l), Lane::Interactive);
        c.observe(&l, Duration::from_millis(200));
        assert_eq!(c.classify(&l), Lane::Heavy);
    }

    #[test]
    fn fast_observation_demotes_heavy_shapes() {
        let c = LaneClassifier::new();
        let l = line("joint 500", 25);
        assert_eq!(c.classify(&l), Lane::Heavy);
        c.observe(&l, Duration::from_micros(300));
        assert_eq!(c.classify(&l), Lane::Interactive);
        // And a later slow run re-promotes.
        c.observe(&l, Duration::from_millis(80));
        assert_eq!(c.classify(&l), Lane::Heavy);
    }
}
