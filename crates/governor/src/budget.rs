//! The handle solver loops poll: wall-clock deadline + charged memory.
//!
//! Design constraints, in order: (1) `exceeded()` must be cheap enough
//! to call every few hundred search nodes — one relaxed atomic load on
//! the common path; (2) `charge()` must keep the global pool honest
//! without a lock per allocation — it reserves from the pool in
//! [`CHARGE_CHUNK_BYTES`] chunks and burns down the local headroom; (3)
//! exhaustion is *cooperative*: the solver sees `exceeded()` and takes
//! its existing anytime/truncation exit, so a budget trip degrades to a
//! typed partial result rather than an abort.

use crate::pool::Grant;
use crate::GovernorGauges;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Pool-reservation granularity for `charge()`. Large enough that a
/// solver charging per-node cost touches the shared pool rarely; small
/// enough that accounting tracks real usage within ~1 MiB.
pub const CHARGE_CHUNK_BYTES: u64 = 1 << 20;

/// Marker returned by [`TrackedBudget::check`] when the budget is spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded;

struct BudgetInner {
    deadline: Option<Instant>,
    /// Set once any dimension (time or memory) is exhausted, or when the
    /// server cancels the request. Solvers poll only this.
    cancel: AtomicBool,
    /// Bytes charged by the solver so far.
    mem_used: AtomicU64,
    /// Bytes reserved from the pool (grant size). `mem_used` may run
    /// ahead transiently while a grow is in flight on another thread.
    mem_reserved: AtomicU64,
    grant: Mutex<Grant>,
    gauges: Arc<GovernorGauges>,
}

/// Shared budget handle: clone-cheap, thread-safe. The exact solver's
/// parallel frontier and the joint solver's II ladder can all poll the
/// same budget.
#[derive(Clone)]
pub struct TrackedBudget {
    inner: Arc<BudgetInner>,
}

impl TrackedBudget {
    pub(crate) fn new(
        grant: Grant,
        deadline_ms: u64,
        gauges: Arc<GovernorGauges>,
    ) -> TrackedBudget {
        let reserved = grant.bytes();
        TrackedBudget {
            inner: Arc::new(BudgetInner {
                deadline: (deadline_ms > 0)
                    .then(|| Instant::now() + Duration::from_millis(deadline_ms)),
                cancel: AtomicBool::new(false),
                mem_used: AtomicU64::new(0),
                mem_reserved: AtomicU64::new(reserved),
                grant: Mutex::new(grant),
                gauges,
            }),
        }
    }

    /// Cheap poll: has any budget dimension been exhausted? Suitable for
    /// per-node solver loops. The deadline comparison only runs until
    /// the first trip; after that the flag short-circuits.
    #[inline]
    pub fn exceeded(&self) -> bool {
        if self.inner.cancel.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(d) = self.inner.deadline {
            if Instant::now() >= d {
                self.inner.cancel.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// `Err(BudgetExceeded)` variant of [`exceeded`] for `?`-style exits.
    #[inline]
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        if self.exceeded() {
            Err(BudgetExceeded)
        } else {
            Ok(())
        }
    }

    /// Mark the budget exhausted from outside (server-side cancel).
    pub fn cancel(&self) {
        self.inner.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether a trip has already been *observed* — the deadline latched
    /// by an [`exceeded`] poll, a failed [`charge`], or a [`cancel`].
    /// Unlike `exceeded`, this is a pure read: checking it after a solve
    /// does not arm the deadline retroactively, so a solve that finished
    /// without ever seeing the budget reports untripped even if the
    /// deadline has passed since. The serve tier uses this to decide
    /// whether a truncated result is reproducible (cacheable) or was
    /// shaped by transient server state (never cached).
    pub fn tripped(&self) -> bool {
        self.inner.cancel.load(Ordering::Relaxed)
    }

    /// Charge `bytes` of solver memory against the pool. Grows the
    /// underlying grant in [`CHARGE_CHUNK_BYTES`] chunks; if the pool
    /// cannot cover the growth the budget trips (the *next* `exceeded()`
    /// poll returns true) and `charge` returns false. Callers that
    /// allocated speculatively keep the memory — accounting stays honest
    /// because the reservation only lags by under one chunk.
    pub fn charge(&self, bytes: u64) -> bool {
        let used = self.inner.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        let reserved = self.inner.mem_reserved.load(Ordering::Relaxed);
        if used <= reserved {
            return true;
        }
        // Slow path: top up the grant to cover `used`, rounded up a chunk.
        let mut grant = self.inner.grant.lock().unwrap();
        let reserved = self.inner.mem_reserved.load(Ordering::Relaxed);
        if used <= reserved {
            return true; // another thread grew it while we waited
        }
        let want = (used - reserved).max(CHARGE_CHUNK_BYTES);
        if grant.grow(want) {
            self.inner
                .mem_reserved
                .store(grant.bytes(), Ordering::Relaxed);
            true
        } else {
            self.inner.cancel.store(true, Ordering::Relaxed);
            false
        }
    }

    /// Release `bytes` previously charged (freed arenas). Keeps the
    /// chunk-rounded reservation; the pool gets it all back on drop.
    pub fn uncharge(&self, bytes: u64) {
        let mut cur = self.inner.mem_used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.inner.mem_used.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn mem_used(&self) -> u64 {
        self.inner.mem_used.load(Ordering::Relaxed)
    }

    pub fn mem_reserved(&self) -> u64 {
        self.inner.mem_reserved.load(Ordering::Relaxed)
    }

    /// Remaining wall time, if a deadline was set.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Drop for BudgetInner {
    fn drop(&mut self) {
        self.gauges.inflight_grants.fetch_sub(1, Ordering::Relaxed);
        // The Grant field's own Drop returns the bytes to the pool.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Governor, ShedPolicy};

    #[test]
    fn charge_within_grant_is_cheap_and_true() {
        let g = Governor::new(64 << 20, 1, ShedPolicy::Never);
        let b = g.open_budget(0).unwrap();
        assert!(b.charge(1024));
        assert!(!b.exceeded());
        assert_eq!(b.mem_used(), 1024);
    }

    #[test]
    fn charge_grows_grant_in_chunks() {
        let g = Governor::new(64 << 20, 1, ShedPolicy::Never);
        let b = g.open_budget(0).unwrap();
        let initial = b.mem_reserved();
        assert!(b.charge(initial + 1));
        assert!(b.mem_reserved() > initial);
        assert!(g.pool().used() > initial);
    }

    #[test]
    fn exhausted_pool_trips_budget() {
        // Pool of 2 MiB, heavy capacity under 2 MiB, admission grant 512 KiB.
        let g = Governor::new(2 << 20, 1, ShedPolicy::Never);
        let b = g.open_budget(0).unwrap();
        // Charge far past what the pool can ever cover.
        assert!(!b.charge(64 << 20));
        assert!(b.exceeded());
        assert_eq!(b.check(), Err(BudgetExceeded));
    }

    #[test]
    fn deadline_trips_budget() {
        let g = Governor::new(64 << 20, 1, ShedPolicy::Never);
        let b = g.open_budget(1).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.exceeded());
    }

    #[test]
    fn drop_returns_bytes_to_pool() {
        let g = Governor::new(64 << 20, 1, ShedPolicy::Never);
        let b = g.open_budget(0).unwrap();
        b.charge(4 << 20);
        let b2 = b.clone();
        drop(b);
        assert!(g.pool().used() > 0, "clone still holds the grant");
        drop(b2);
        assert_eq!(g.pool().used(), 0);
    }

    #[test]
    fn cancel_is_sticky() {
        let g = Governor::new(64 << 20, 1, ShedPolicy::Never);
        let b = g.open_budget(0).unwrap();
        assert!(!b.exceeded());
        b.cancel();
        assert!(b.exceeded());
    }
}
