//! Deficit weighted round-robin queues, one logical queue per client.
//!
//! A flood from one client lands in that client's FIFO; `pop` serves
//! clients round-robin with a deficit counter, so a client submitting
//! thousands of requests gets exactly one queue's worth of service per
//! round while everyone else's single request is served within one
//! rotation. Costs are caller-defined units (1 = one request; callers
//! may weight by estimated service time).

use std::collections::{HashMap, VecDeque};

struct ClientQ<T> {
    items: VecDeque<(u64, T)>,
    deficit: u64,
    /// True when this client is due a quantum top-up on its next visit.
    fresh_visit: bool,
}

pub struct DwrrQueue<T> {
    clients: HashMap<u64, ClientQ<T>>,
    order: VecDeque<u64>,
    quantum: u64,
    len: usize,
}

impl<T> DwrrQueue<T> {
    pub fn new(quantum: u64) -> DwrrQueue<T> {
        DwrrQueue {
            clients: HashMap::new(),
            order: VecDeque::new(),
            quantum: quantum.max(1),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn push(&mut self, client: u64, cost: u64, item: T) {
        let q = self.clients.entry(client).or_insert_with(|| {
            self.order.push_back(client);
            ClientQ {
                items: VecDeque::new(),
                deficit: 0,
                fresh_visit: true,
            }
        });
        q.items.push_back((cost.max(1), item));
        self.len += 1;
    }

    /// Pop the next item in DWRR order.
    pub fn pop(&mut self) -> Option<T> {
        loop {
            let client = *self.order.front()?;
            let q = self
                .clients
                .get_mut(&client)
                .expect("order entry has a client queue");
            if q.items.is_empty() {
                // Idle client leaves the rotation; its deficit resets so
                // it cannot bank service while absent.
                self.order.pop_front();
                self.clients.remove(&client);
                continue;
            }
            if q.fresh_visit {
                q.deficit = q.deficit.saturating_add(self.quantum);
                q.fresh_visit = false;
            }
            let head_cost = q.items.front().expect("non-empty").0;
            if head_cost <= q.deficit {
                let (cost, item) = q.items.pop_front().expect("non-empty");
                q.deficit -= cost;
                self.len -= 1;
                if q.items.is_empty() {
                    self.order.pop_front();
                    self.clients.remove(&client);
                }
                return Some(item);
            }
            // Deficit exhausted for this round: rotate to the next client.
            q.fresh_visit = true;
            self.order.rotate_left(1);
        }
    }

    /// Drop every queued item (shutdown path). Returns how many were
    /// discarded.
    pub fn clear(&mut self) -> usize {
        let n = self.len;
        self.clients.clear();
        self.order.clear();
        self.len = 0;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_client_is_fifo() {
        let mut q = DwrrQueue::new(1);
        for i in 0..5 {
            q.push(7, 1, i);
        }
        let got: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn flood_does_not_starve_light_client() {
        let mut q = DwrrQueue::new(1);
        // Client 1 floods 100 items, then client 2 adds one.
        for i in 0..100 {
            q.push(1, 1, (1u64, i));
        }
        q.push(2, 1, (2u64, 0));
        // Client 2's single item must surface within one rotation (i.e.
        // after at most one of client 1's items).
        let mut seen_before_client2 = 0;
        loop {
            let (client, _) = q.pop().unwrap();
            if client == 2 {
                break;
            }
            seen_before_client2 += 1;
            assert!(seen_before_client2 <= 1, "light client starved");
        }
    }

    #[test]
    fn equal_clients_interleave() {
        let mut q = DwrrQueue::new(1);
        for i in 0..3 {
            q.push(1, 1, (1, i));
            q.push(2, 1, (2, i));
        }
        let mut counts = [0usize; 2];
        for step in 0..6 {
            let (client, _) = q.pop().unwrap();
            counts[client as usize - 1] += 1;
            // After any even number of pops the two clients are balanced.
            if step % 2 == 1 {
                assert_eq!(counts[0], counts[1]);
            }
        }
    }

    #[test]
    fn costs_weight_the_rotation() {
        let mut q = DwrrQueue::new(2);
        // Client 1's items cost 4 each (needs two rounds of quantum per
        // item); client 2's cost 1.
        for i in 0..2 {
            q.push(1, 4, (1, i));
        }
        for i in 0..4 {
            q.push(2, 1, (2, i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(c, _)| c).collect();
        // Client 2 should get roughly 4 units of service per client-1 item.
        assert_eq!(order.len(), 6);
        let first_c1 = order.iter().position(|&c| c == 1).unwrap();
        assert!(first_c1 >= 1, "cheap client served first: {order:?}");
    }

    #[test]
    fn departed_client_loses_banked_deficit() {
        let mut q = DwrrQueue::new(1);
        q.push(1, 1, 10);
        assert_eq!(q.pop(), Some(10));
        assert!(q.is_empty());
        // Re-joining starts from zero deficit, not accumulated credit.
        q.push(1, 1, 11);
        q.push(2, 1, 20);
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), Some(20));
    }
}
