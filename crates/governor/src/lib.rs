//! Resource governance for the serve tier: budgeted memory pools,
//! per-client fair-share admission, and interactive/heavy lane isolation
//! with typed load shedding (DESIGN.md §15).
//!
//! This crate is a dependency *leaf*: the solvers (`vliw-exact`,
//! `vliw-joint`) poll a [`TrackedBudget`] handle from their search loops,
//! and the serve tier builds a [`Governor`] that hands those handles out
//! under a global [`ResourcePool`]. Nothing here knows about sockets,
//! JSON, or schedules — it is pure accounting and queueing policy, which
//! keeps it unit-testable without a server.

mod budget;
mod fair;
mod lanes;
mod pool;

pub use budget::{BudgetExceeded, TrackedBudget, CHARGE_CHUNK_BYTES};
pub use fair::DwrrQueue;
pub use lanes::{Lane, LaneClassifier, HEAVY_SERVICE_THRESHOLD_US, HEAVY_VREG_THRESHOLD};
pub use pool::{Grant, PoolError, ResourcePool};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// When to shed heavy work at admission. Interactive work is *never*
/// shed: its per-request footprint is bounded (cache probes and greedy
/// compiles), so the pool reserves headroom for it instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Queue everything; only pool exhaustion mid-solve truncates work.
    Never,
    /// Shed heavies once the heavy lane holds this many queued requests.
    Depth(usize),
    /// Shed heavies when the *projected* queue wait (heavy depth ×
    /// observed mean heavy service time / heavy workers) exceeds
    /// [`ADAPTIVE_WAIT_LIMIT`], or when the pool cannot grant admission
    /// memory. This is the queue-wait-vs-service-time split from the
    /// stats histograms applied as an admission signal.
    Adaptive,
}

/// Projected-wait ceiling for [`ShedPolicy::Adaptive`].
pub const ADAPTIVE_WAIT_LIMIT: Duration = Duration::from_millis(2_000);

impl ShedPolicy {
    /// Parse the `--shed-policy` flag grammar: `never`, `depth:N`,
    /// `adaptive`.
    pub fn parse(s: &str) -> Result<ShedPolicy, String> {
        match s {
            "never" => Ok(ShedPolicy::Never),
            "adaptive" => Ok(ShedPolicy::Adaptive),
            _ => {
                if let Some(n) = s.strip_prefix("depth:") {
                    n.parse::<usize>()
                        .map(ShedPolicy::Depth)
                        .map_err(|_| format!("bad depth in shed policy {s:?}"))
                } else {
                    Err(format!(
                        "unknown shed policy {s:?} (expected never, depth:N, or adaptive)"
                    ))
                }
            }
        }
    }
}

/// The admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    Admit,
    /// Transient overload: the client should back off and retry.
    Shed {
        retry_after_ms: u64,
    },
    /// Permanent: the request can never fit (e.g. larger than the whole
    /// pool). Retrying is pointless.
    Reject,
}

/// Live gauges and counters the `stats` endpoint exposes. Everything is
/// a relaxed atomic: readers tolerate slight staleness, writers are on
/// the hot path.
#[derive(Debug, Default)]
pub struct GovernorGauges {
    pub queue_depth_interactive: AtomicU64,
    pub queue_depth_heavy: AtomicU64,
    pub inflight_grants: AtomicU64,
    pub sheds: AtomicU64,
    pub rejects: AtomicU64,
    /// Mean heavy-lane service time, EWMA in microseconds (α = 1/8).
    heavy_service_ewma_us: AtomicU64,
}

impl GovernorGauges {
    pub fn observe_heavy_service(&self, service: Duration) {
        let us = service.as_micros().min(u128::from(u64::MAX)) as u64;
        // Racy read-modify-write is fine: the EWMA is a shed heuristic,
        // not an invariant.
        let old = self.heavy_service_ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 { us } else { old - old / 8 + us / 8 };
        self.heavy_service_ewma_us
            .store(new.max(1), Ordering::Relaxed);
    }

    pub fn heavy_service_ewma(&self) -> Duration {
        Duration::from_micros(self.heavy_service_ewma_us.load(Ordering::Relaxed))
    }
}

/// Central governor: one per server process. Combines the byte pool, the
/// lane classifier, and the shed policy; the reactor consults it at
/// admission and the compile pool consults it when granting budgets.
pub struct Governor {
    pool: ResourcePool,
    classifier: LaneClassifier,
    policy: ShedPolicy,
    heavy_workers: usize,
    gauges: Arc<GovernorGauges>,
    /// Admission-time memory charge per heavy request: the grant the
    /// solver's [`TrackedBudget`] starts from (it can grow later).
    heavy_admission_bytes: u64,
}

/// Default per-heavy-request admission grant: 1 MiB, grown on demand.
pub const HEAVY_ADMISSION_BYTES: u64 = 1 << 20;

/// Default per-interactive-request admission grant: small (interactive
/// exact/joint instances sit under the vreg threshold), drawn against the
/// full pool including the interactive reserve, grown on demand.
pub const INTERACTIVE_ADMISSION_BYTES: u64 = 256 << 10;

impl Governor {
    pub fn new(mem_budget: u64, heavy_workers: usize, policy: ShedPolicy) -> Governor {
        Governor {
            pool: ResourcePool::new(mem_budget),
            classifier: LaneClassifier::new(),
            policy,
            heavy_workers: heavy_workers.max(1),
            gauges: Arc::new(GovernorGauges::default()),
            heavy_admission_bytes: HEAVY_ADMISSION_BYTES.min(mem_budget / 4).max(1),
        }
    }

    pub fn gauges(&self) -> &Arc<GovernorGauges> {
        &self.gauges
    }

    pub fn pool(&self) -> &ResourcePool {
        &self.pool
    }

    pub fn policy(&self) -> ShedPolicy {
        self.policy
    }

    pub fn heavy_workers(&self) -> usize {
        self.heavy_workers
    }

    pub fn classify(&self, line: &str) -> Lane {
        self.classifier.classify(line)
    }

    /// Record an observed service time so future classifications of the
    /// same request shape are corrected (slow "interactive" requests get
    /// promoted to the heavy lane).
    pub fn observe_service(&self, line: &str, lane: Lane, service: Duration) {
        if lane == Lane::Heavy {
            self.gauges.observe_heavy_service(service);
        }
        self.classifier.observe(line, service);
    }

    /// Decide admission for one request. `heavy_depth` is the current
    /// heavy-lane queue depth (the caller owns the queues; the governor
    /// owns the policy).
    pub fn admit(&self, lane: Lane, heavy_depth: usize) -> Admission {
        if lane == Lane::Interactive {
            // Interactive work is always admitted: the pool keeps a
            // reserve for it (see ResourcePool::grant) and its footprint
            // is bounded, so shedding it would only add latency.
            return Admission::Admit;
        }
        let verdict = match self.policy {
            ShedPolicy::Never => Admission::Admit,
            ShedPolicy::Depth(limit) => {
                if heavy_depth >= limit {
                    Admission::Shed {
                        retry_after_ms: self.retry_after(heavy_depth),
                    }
                } else {
                    Admission::Admit
                }
            }
            ShedPolicy::Adaptive => {
                let wait = self.projected_wait(heavy_depth);
                if wait > ADAPTIVE_WAIT_LIMIT
                    || !self.pool.can_grant_heavy(self.heavy_admission_bytes)
                {
                    Admission::Shed {
                        retry_after_ms: self.retry_after(heavy_depth),
                    }
                } else {
                    Admission::Admit
                }
            }
        };
        match verdict {
            Admission::Shed { .. } => {
                self.gauges.sheds.fetch_add(1, Ordering::Relaxed);
            }
            Admission::Reject => {
                self.gauges.rejects.fetch_add(1, Ordering::Relaxed);
            }
            Admission::Admit => {}
        }
        verdict
    }

    /// Projected queue wait for a newly-arrived heavy request.
    fn projected_wait(&self, heavy_depth: usize) -> Duration {
        let ewma = self.gauges.heavy_service_ewma();
        let per_worker = heavy_depth / self.heavy_workers + 1;
        ewma.saturating_mul(per_worker as u32)
    }

    /// Retry hint: roughly the projected wait, clamped to a sane window
    /// so clients neither hammer nor stall.
    fn retry_after(&self, heavy_depth: usize) -> u64 {
        let wait = self.projected_wait(heavy_depth).as_millis() as u64;
        wait.clamp(25, 5_000)
    }

    /// Open a tracked budget for an admitted heavy request. `deadline_ms`
    /// (0 = none) bounds wall time; the memory side starts from the
    /// admission grant and grows against the pool. Returns `Reject` if
    /// even the admission grant cannot fit inside the whole pool.
    pub fn open_budget(&self, deadline_ms: u64) -> Result<TrackedBudget, PoolError> {
        let grant = match self.pool.grant_heavy(self.heavy_admission_bytes) {
            Ok(g) => g,
            Err(e) => {
                match e {
                    PoolError::Shed { .. } => self.gauges.sheds.fetch_add(1, Ordering::Relaxed),
                    PoolError::Rejected => self.gauges.rejects.fetch_add(1, Ordering::Relaxed),
                };
                return Err(e);
            }
        };
        self.gauges.inflight_grants.fetch_add(1, Ordering::Relaxed);
        Ok(TrackedBudget::new(
            grant,
            deadline_ms,
            Arc::clone(&self.gauges),
        ))
    }

    /// Open a tracked budget for an interactive-lane request that still
    /// runs a budgeted solver (an exact/joint instance under the heavy
    /// thresholds, or a heavy shape demoted by an observed warm hit that
    /// then misses the cache). The grant is small and draws on the *full*
    /// pool — including the interactive reserve, so it succeeds even while
    /// heavy grants occupy their whole share — which keeps `--mem-budget`
    /// a hard cap on solver memory for every lane. Only shedding is
    /// possible: the ask is clamped under the pool limit by construction.
    pub fn open_budget_interactive(&self, deadline_ms: u64) -> Result<TrackedBudget, PoolError> {
        let ask = INTERACTIVE_ADMISSION_BYTES
            .min(self.pool.limit() / 4)
            .max(1);
        let grant = match self.pool.grant_interactive(ask) {
            Ok(g) => g,
            Err(e) => {
                match e {
                    PoolError::Shed { .. } => self.gauges.sheds.fetch_add(1, Ordering::Relaxed),
                    PoolError::Rejected => self.gauges.rejects.fetch_add(1, Ordering::Relaxed),
                };
                return Err(e);
            }
        };
        self.gauges.inflight_grants.fetch_add(1, Ordering::Relaxed);
        Ok(TrackedBudget::new(
            grant,
            deadline_ms,
            Arc::clone(&self.gauges),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_policy_grammar() {
        assert_eq!(ShedPolicy::parse("never").unwrap(), ShedPolicy::Never);
        assert_eq!(ShedPolicy::parse("adaptive").unwrap(), ShedPolicy::Adaptive);
        assert_eq!(ShedPolicy::parse("depth:8").unwrap(), ShedPolicy::Depth(8));
        assert!(ShedPolicy::parse("depth:x").is_err());
        assert!(ShedPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn interactive_is_always_admitted() {
        let g = Governor::new(1 << 20, 1, ShedPolicy::Depth(0));
        assert_eq!(g.admit(Lane::Interactive, 10_000), Admission::Admit);
        // Heavy at depth 0 with Depth(0) policy sheds immediately.
        assert!(matches!(g.admit(Lane::Heavy, 0), Admission::Shed { .. }));
        assert_eq!(g.gauges().sheds.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn depth_policy_sheds_past_limit() {
        let g = Governor::new(64 << 20, 2, ShedPolicy::Depth(4));
        assert_eq!(g.admit(Lane::Heavy, 3), Admission::Admit);
        let v = g.admit(Lane::Heavy, 4);
        match v {
            Admission::Shed { retry_after_ms } => {
                assert!((25..=5_000).contains(&retry_after_ms));
            }
            other => panic!("expected shed, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_sheds_on_projected_wait() {
        let g = Governor::new(64 << 20, 1, ShedPolicy::Adaptive);
        // Teach the EWMA that heavies take ~1s each.
        for _ in 0..16 {
            g.gauges().observe_heavy_service(Duration::from_secs(1));
        }
        assert_eq!(g.admit(Lane::Heavy, 0), Admission::Admit);
        assert!(matches!(g.admit(Lane::Heavy, 10), Admission::Shed { .. }));
    }

    #[test]
    fn adaptive_sheds_when_pool_full() {
        let g = Governor::new(2 << 20, 4, ShedPolicy::Adaptive);
        // Hold grants covering everything the heavy side may use.
        let _held = g.pool().grant_heavy(g.pool().heavy_capacity()).unwrap();
        assert!(matches!(g.admit(Lane::Heavy, 0), Admission::Shed { .. }));
        // Interactive still fine.
        assert_eq!(g.admit(Lane::Interactive, 0), Admission::Admit);
    }

    #[test]
    fn interactive_budget_draws_on_the_reserve() {
        let g = Governor::new(8 << 20, 1, ShedPolicy::Never);
        // Heavy grants occupy their entire share of the pool.
        let _held = g.pool().grant_heavy(g.pool().heavy_capacity()).unwrap();
        assert!(matches!(g.open_budget(0), Err(PoolError::Shed { .. })));
        // An interactive compile still gets a tracked budget (the reserve
        // exists precisely so it can), and it is real accounting: charges
        // past the pool limit trip it.
        let b = g.open_budget_interactive(0).unwrap();
        assert_eq!(g.gauges().inflight_grants.load(Ordering::Relaxed), 1);
        assert!(!b.charge(64 << 20), "charge past the pool limit refused");
        assert!(b.exceeded());
        drop(b);
        assert_eq!(g.gauges().inflight_grants.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn open_budget_tracks_inflight_gauge() {
        let g = Governor::new(64 << 20, 2, ShedPolicy::Never);
        let b = g.open_budget(0).unwrap();
        assert_eq!(g.gauges().inflight_grants.load(Ordering::Relaxed), 1);
        drop(b);
        assert_eq!(g.gauges().inflight_grants.load(Ordering::Relaxed), 0);
        assert_eq!(g.pool().used(), 0);
    }
}
