//! Chaitin-style simplify/spill colouring with Briggs' optimistic push.

use crate::interfere::InterferenceGraph;
use crate::live::LiveRange;

/// Result of colouring one (bank, class) interference graph.
#[derive(Debug, Clone)]
pub struct ColorOutcome {
    /// Colour per node; `None` = spilled.
    pub colors: Vec<Option<u32>>,
    /// Number of spilled nodes.
    pub n_spilled: usize,
    /// Number of distinct colours actually used.
    pub n_colors_used: usize,
}

impl ColorOutcome {
    /// Check the defining property: no two interfering nodes share a colour.
    pub fn is_valid(&self, g: &InterferenceGraph) -> bool {
        for i in 0..g.n_nodes() {
            let Some(ci) = self.colors[i] else { continue };
            for &j in g.neighbours(i) {
                if self.colors[j] == Some(ci) {
                    return false;
                }
            }
        }
        true
    }
}

/// Colour `g` with `k` colours.
///
/// Simplify: repeatedly remove a node with remaining degree `< k` (Chaitin).
/// If none exists, choose the node minimising `cost / (degree + 1)` and push
/// it anyway (Briggs' optimistic spill candidate). When popping, a node
/// takes the lowest colour unused by its already-coloured neighbours;
/// optimistic nodes that find no colour are spilled.
pub fn color_graph(g: &InterferenceGraph, ranges: &[LiveRange], k: usize) -> ColorOutcome {
    let n = g.n_nodes();
    assert_eq!(ranges.len(), n);
    let mut removed = vec![false; n];
    let mut degree: Vec<usize> = (0..n).map(|i| g.degree(i)).collect();
    let mut stack: Vec<usize> = Vec::with_capacity(n);

    for _ in 0..n {
        // Prefer a trivially colourable node (degree < k).
        let pick = (0..n)
            .filter(|&i| !removed[i] && degree[i] < k)
            .max_by_key(|&i| degree[i])
            .or_else(|| {
                // Spill candidate: cheapest per unit of degree relief.
                (0..n).filter(|&i| !removed[i]).min_by(|&a, &b| {
                    let ka = ranges[a].cost / (degree[a] + 1) as f64;
                    let kb = ranges[b].cost / (degree[b] + 1) as f64;
                    ka.partial_cmp(&kb).unwrap().then(a.cmp(&b))
                })
            })
            .expect("n iterations, one removal each");
        removed[pick] = true;
        stack.push(pick);
        for &nb in g.neighbours(pick) {
            if !removed[nb] {
                degree[nb] -= 1;
            }
        }
    }

    let mut colors: Vec<Option<u32>> = vec![None; n];
    let mut n_spilled = 0usize;
    while let Some(i) = stack.pop() {
        let mut used = vec![false; k];
        for &nb in g.neighbours(i) {
            if let Some(c) = colors[nb] {
                used[c as usize] = true;
            }
        }
        match used.iter().position(|&u| !u) {
            Some(c) => colors[i] = Some(c as u32),
            None => n_spilled += 1,
        }
    }
    let n_colors_used = colors
        .iter()
        .flatten()
        .copied()
        .collect::<std::collections::HashSet<_>>()
        .len();
    ColorOutcome {
        colors,
        n_spilled,
        n_colors_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::CyclicInterval;
    use vliw_ir::VReg;

    fn ranges_from_intervals(iv: &[(i64, i64)], circle: i64) -> Vec<LiveRange> {
        iv.iter()
            .enumerate()
            .map(|(i, &(s, l))| LiveRange {
                vreg: VReg(i as u32),
                instance: 0,
                interval: CyclicInterval::new(s, l, circle),
                cost: 1.0,
            })
            .collect()
    }

    #[test]
    fn chain_colors_with_two() {
        // Three pairwise-chained intervals: 2 colours suffice.
        let r = ranges_from_intervals(&[(0, 4), (3, 4), (6, 3)], 12);
        let g = InterferenceGraph::build(&r);
        let out = color_graph(&g, &r, 2);
        assert_eq!(out.n_spilled, 0);
        assert!(out.is_valid(&g));
        assert!(out.n_colors_used <= 2);
    }

    #[test]
    fn clique_spills_when_short() {
        // Four full-circle ranges form a 4-clique; 2 colours ⇒ 2 spills.
        let r = ranges_from_intervals(&[(0, 9), (0, 9), (0, 9), (0, 9)], 8);
        let g = InterferenceGraph::build(&r);
        let out = color_graph(&g, &r, 2);
        assert_eq!(out.n_spilled, 2);
        assert!(out.is_valid(&g));
    }

    #[test]
    fn optimistic_push_beats_pessimism() {
        // A diamond: centre node has degree 4 ≥ k=2... choose a cycle:
        // 4-cycle is 2-colourable even though every node has degree 2 == k.
        let circle = 8;
        let r = ranges_from_intervals(&[(0, 3), (2, 3), (4, 3), (6, 3)], circle);
        let g = InterferenceGraph::build(&r);
        // Each interval overlaps its two neighbours in the ring.
        let out = color_graph(&g, &r, 2);
        assert_eq!(
            out.n_spilled, 0,
            "optimistic colouring must 2-colour a ring"
        );
        assert!(out.is_valid(&g));
    }

    #[test]
    fn empty_graph() {
        let r: Vec<LiveRange> = Vec::new();
        let g = InterferenceGraph::build(&r);
        let out = color_graph(&g, &r, 4);
        assert_eq!(out.n_spilled, 0);
        assert_eq!(out.n_colors_used, 0);
    }

    #[test]
    fn spill_prefers_cheap_nodes() {
        // 3-clique with one expensive node, k = 2: the cheap ones compete for
        // the spill; the expensive node must be coloured.
        let mut r = ranges_from_intervals(&[(0, 8), (0, 8), (0, 8)], 8);
        r[1].cost = 100.0;
        let g = InterferenceGraph::build(&r);
        let out = color_graph(&g, &r, 2);
        assert_eq!(out.n_spilled, 1);
        assert!(out.colors[1].is_some(), "expensive node must not spill");
        assert!(out.is_valid(&g));
    }
}
