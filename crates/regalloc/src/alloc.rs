//! Per-bank, per-class register assignment driver.

use crate::color::{color_graph, ColorOutcome};
use crate::interfere::InterferenceGraph;
use crate::live::{kernel_live_ranges, max_pressure, LiveRange};
use vliw_ddg::Ddg;
use vliw_ir::{Loop, RegClass};
use vliw_machine::{ClusterId, MachineDesc};
use vliw_sched::Schedule;

/// Colouring statistics for one (bank, class) register file.
#[derive(Debug, Clone)]
pub struct BankClassStats {
    /// The bank.
    pub bank: ClusterId,
    /// The class.
    pub class: RegClass,
    /// Live-range nodes coloured.
    pub n_ranges: usize,
    /// Peak simultaneous liveness.
    pub max_pressure: usize,
    /// Registers actually used.
    pub n_colors_used: usize,
    /// Ranges that could not be coloured.
    pub n_spilled: usize,
}

/// Complete allocation result.
#[derive(Debug, Clone)]
pub struct AllocResult {
    /// MVE kernel unroll factor.
    pub unroll: u32,
    /// Physical register per (vreg, instance): `assignment[v][k]`.
    /// `None` = spilled.
    pub assignment: Vec<Vec<Option<u32>>>,
    /// Live ranges the colourer could not colour, as `(vreg, instance)`.
    pub spilled: Vec<(vliw_ir::VReg, u32)>,
    /// Per-(bank, class) statistics.
    pub stats: Vec<BankClassStats>,
}

impl AllocResult {
    /// Total spills across all banks and classes.
    pub fn total_spills(&self) -> usize {
        self.stats.iter().map(|s| s.n_spilled).sum()
    }

    /// Peak pressure across banks for a class.
    pub fn peak_pressure(&self, class: RegClass) -> usize {
        self.stats
            .iter()
            .filter(|s| s.class == class)
            .map(|s| s.max_pressure)
            .max()
            .unwrap_or(0)
    }
}

/// Run Chaitin/Briggs per register bank and class.
///
/// `vreg_bank` gives the bank of every virtual register (from the
/// partitioner); `s` is the final clustered schedule. Register capacities
/// come from the machine description.
pub fn allocate(
    body: &Loop,
    ddg: &Ddg,
    s: &Schedule,
    vreg_bank: &[ClusterId],
    machine: &MachineDesc,
) -> AllocResult {
    assert_eq!(vreg_bank.len(), body.n_vregs());
    let (unroll, all_ranges) = kernel_live_ranges(body, ddg, s, |op| {
        machine.latencies.of(body.op(op).opcode) as i64
    });

    let mut assignment: Vec<Vec<Option<u32>>> = vec![vec![None; unroll as usize]; body.n_vregs()];
    let mut spilled = Vec::new();
    let mut stats = Vec::new();

    for bank in machine.cluster_ids() {
        for class in RegClass::ALL {
            let ranges: Vec<LiveRange> = all_ranges
                .iter()
                .filter(|r| vreg_bank[r.vreg.index()] == bank && body.class_of(r.vreg) == class)
                .cloned()
                .collect();
            if ranges.is_empty() {
                continue;
            }
            let capacity = match class {
                RegClass::Int => machine.clusters[bank.index()].int_regs,
                RegClass::Float => machine.clusters[bank.index()].float_regs,
            };
            let graph = InterferenceGraph::build(&ranges);
            let out: ColorOutcome = color_graph(&graph, &ranges, capacity);
            debug_assert!(out.is_valid(&graph));
            for (i, r) in ranges.iter().enumerate() {
                assignment[r.vreg.index()][r.instance as usize] = out.colors[i];
                if out.colors[i].is_none() {
                    spilled.push((r.vreg, r.instance));
                }
            }
            stats.push(BankClassStats {
                bank,
                class,
                n_ranges: ranges.len(),
                max_pressure: max_pressure(&ranges),
                n_colors_used: out.n_colors_used,
                n_spilled: out.n_spilled,
            });
        }
    }

    AllocResult {
        unroll,
        assignment,
        spilled,
        stats,
    }
}

/// Check assignment validity against the underlying live ranges: no two
/// overlapping ranges in the same (bank, class) share a physical register.
pub fn validate_allocation(
    body: &Loop,
    ddg: &Ddg,
    s: &Schedule,
    vreg_bank: &[ClusterId],
    machine: &MachineDesc,
    alloc: &AllocResult,
) -> bool {
    let (_, ranges) = kernel_live_ranges(body, ddg, s, |op| {
        machine.latencies.of(body.op(op).opcode) as i64
    });
    for (i, a) in ranges.iter().enumerate() {
        let pa = alloc.assignment[a.vreg.index()][a.instance as usize];
        let Some(pa) = pa else { continue };
        for b in &ranges[i + 1..] {
            let pb = alloc.assignment[b.vreg.index()][b.instance as usize];
            if pb != Some(pa) {
                continue;
            }
            let same_file = vreg_bank[a.vreg.index()] == vreg_bank[b.vreg.index()]
                && body.class_of(a.vreg) == body.class_of(b.vreg);
            if same_file && a.interval.overlaps(&b.interval) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::build_ddg;
    use vliw_ir::{LoopBuilder, RegClass, VReg};
    use vliw_sched::{schedule_loop, ImsConfig, SchedProblem};

    fn daxpy(unroll: usize) -> Loop {
        let mut b = LoopBuilder::new("daxpy");
        let x = b.array("x", RegClass::Float, 1024);
        let y = b.array("y", RegClass::Float, 1024);
        let a = b.live_in_float("a");
        for u in 0..unroll as i64 {
            let xv = b.load(x, u, unroll as i64);
            let yv = b.load(y, u, unroll as i64);
            let p = b.fmul(a, xv);
            let s = b.fadd(yv, p);
            b.store(y, u, unroll as i64, s);
        }
        b.finish(128)
    }

    fn run(l: &Loop, m: &MachineDesc) -> (Ddg, Schedule) {
        let g = build_ddg(l, &m.latencies);
        let p = SchedProblem::ideal(l, m);
        let s = schedule_loop(&p, &g, &ImsConfig::default()).unwrap();
        (g, s)
    }

    #[test]
    fn daxpy_allocates_without_spills() {
        let l = daxpy(8);
        let m = MachineDesc::monolithic(16);
        let (g, s) = run(&l, &m);
        let banks = vec![ClusterId(0); l.n_vregs()];
        let alloc = allocate(&l, &g, &s, &banks, &m);
        assert_eq!(alloc.total_spills(), 0);
        assert!(validate_allocation(&l, &g, &s, &banks, &m, &alloc));
        assert!(alloc.unroll >= 1);
        // Every float vreg instance got a register.
        for v in 0..l.n_vregs() {
            for k in 0..alloc.unroll as usize {
                if !l.defs_of(VReg(v as u32)).is_empty() || l.is_live_in(VReg(v as u32)) {
                    assert!(alloc.assignment[v][k].is_some() || k > 0);
                }
            }
        }
    }

    #[test]
    fn tiny_bank_forces_spills() {
        let l = daxpy(8);
        let m = MachineDesc::monolithic(16).with_regs_per_bank(2, 2);
        let (g, s) = run(&l, &m);
        let banks = vec![ClusterId(0); l.n_vregs()];
        let alloc = allocate(&l, &g, &s, &banks, &m);
        assert!(alloc.total_spills() > 0);
        // Even with spills, what was coloured must be consistent.
        assert!(validate_allocation(&l, &g, &s, &banks, &m, &alloc));
    }

    #[test]
    fn split_banks_partition_pressure() {
        let l = daxpy(4);
        let m = MachineDesc::embedded(2, 8);
        let (g, s) = run(&l, &m);
        // Alternate registers between the two banks (arbitrary but legal for
        // allocation purposes — copy correctness is not at stake here).
        let banks: Vec<ClusterId> = (0..l.n_vregs())
            .map(|i| ClusterId((i % 2) as u32))
            .collect();
        let alloc = allocate(&l, &g, &s, &banks, &m);
        assert_eq!(alloc.total_spills(), 0);
        let bank_stats: Vec<_> = alloc
            .stats
            .iter()
            .filter(|st| st.class == RegClass::Float)
            .collect();
        assert_eq!(bank_stats.len(), 2);
        assert!(validate_allocation(&l, &g, &s, &banks, &m, &alloc));
    }

    #[test]
    fn pressure_reported_at_least_colors() {
        let l = daxpy(8);
        let m = MachineDesc::monolithic(16);
        let (g, s) = run(&l, &m);
        let banks = vec![ClusterId(0); l.n_vregs()];
        let alloc = allocate(&l, &g, &s, &banks, &m);
        for st in &alloc.stats {
            assert!(st.max_pressure <= st.n_ranges);
            assert!(st.n_colors_used >= st.max_pressure.min(st.n_colors_used));
            assert!(st.n_colors_used <= st.n_ranges);
        }
    }
}
