//! # vliw-regalloc — Chaitin/Briggs register assignment over kernel live ranges
//!
//! Step 5 of the paper's framework (§4): "with functional units specified and
//! registers allocated to banks, perform 'standard' Chaitin/Briggs graph
//! coloring register assignment for each register bank."
//!
//! A software-pipelined kernel complicates classic coloring in one way:
//! values live longer than one initiation interval, so a register name is
//! redefined before its previous value dies. The standard fix — and what
//! this crate implements — is **modulo variable expansion** (MVE): unroll the
//! kernel `K = max_v ⌈lifetime(v)/II⌉` times, give every loop-variant value
//! `K` renamed instances, and colour the resulting *cyclic* live ranges on a
//! circle of `K·II` cycles. Loop invariants occupy their register for the
//! whole circle.
//!
//! Colouring itself is Chaitin's simplify/spill scheme with Briggs'
//! optimistic push: nodes of degree `< R` are removed; otherwise the
//! cheapest node (spill cost / degree) is pushed optimistically and may
//! still receive a colour when popped. Uncoloured pops are counted as
//! spills — the paper's experiments never spill (32 registers per class per
//! bank), and ours confirm that, but the machinery is exercised by tests
//! with tiny banks.

#![warn(missing_docs)]

pub mod alloc;
pub mod color;
pub mod interfere;
pub mod live;
pub mod spill;

pub use alloc::{allocate, validate_allocation, AllocResult, BankClassStats};
pub use color::{color_graph, ColorOutcome};
pub use interfere::InterferenceGraph;
pub use live::{kernel_live_ranges, max_pressure, CyclicInterval, LiveRange};
pub use spill::{insert_spill_code, spillable, SpillOutcome};
