//! Kernel live ranges and modulo variable expansion.

use vliw_ddg::{Ddg, DepKind};
use vliw_ir::{Loop, VReg};
use vliw_sched::Schedule;

/// A half-open interval `[start, start+len)` on a circle of `circle` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CyclicInterval {
    /// Start point, already reduced mod `circle`.
    pub start: i64,
    /// Length in cycles, capped at `circle` (== `circle` means "everywhere").
    pub len: i64,
    /// Circumference.
    pub circle: i64,
}

impl CyclicInterval {
    /// Build, reducing `start` and capping `len`.
    pub fn new(start: i64, len: i64, circle: i64) -> Self {
        debug_assert!(circle > 0 && len >= 0);
        CyclicInterval {
            start: start.rem_euclid(circle),
            len: len.min(circle),
            circle,
        }
    }

    /// Do two intervals on the same circle overlap?
    pub fn overlaps(&self, other: &CyclicInterval) -> bool {
        debug_assert_eq!(self.circle, other.circle);
        if self.len == 0 || other.len == 0 {
            return false;
        }
        if self.len == self.circle || other.len == other.circle {
            return true;
        }
        let d1 = (other.start - self.start).rem_euclid(self.circle);
        let d2 = (self.start - other.start).rem_euclid(self.circle);
        d1 < self.len || d2 < other.len
    }

    /// Does the interval cover circle point `p`?
    pub fn covers(&self, p: i64) -> bool {
        if self.len == self.circle {
            return true;
        }
        (p.rem_euclid(self.circle) - self.start).rem_euclid(self.circle) < self.len
    }
}

/// One colourable node: an MVE instance of a virtual register.
#[derive(Debug, Clone)]
pub struct LiveRange {
    /// The virtual register.
    pub vreg: VReg,
    /// MVE instance number (0 for invariants).
    pub instance: u32,
    /// Occupancy on the unrolled-kernel circle.
    pub interval: CyclicInterval,
    /// Spill cost: static use+def count of the register (Chaitin's metric,
    /// uniform depth since the corpus is innermost loops).
    pub cost: f64,
}

/// Compute the MVE unroll factor and all live ranges of `body` under
/// schedule `s`.
///
/// Per register: `start = min issue time of its defs`; `end = max over flow
/// edges out of its defs of (use time + II·distance) + 1`; live-outs persist
/// one extra II past their def (they must survive into the next stage);
/// dead defs hold their register until the write completes. Invariants
/// (live-in, never defined) occupy the full circle.
///
/// Returns `(unroll factor K, ranges)` — every loop-variant register
/// contributes `K` instances whose intervals are the base interval shifted
/// by `k·II` on the circle of `K·II` cycles.
pub fn kernel_live_ranges(
    body: &Loop,
    ddg: &Ddg,
    s: &Schedule,
    lat_of: impl Fn(vliw_ir::OpId) -> i64,
) -> (u32, Vec<LiveRange>) {
    let ii = s.ii as i64;
    let n = body.n_vregs();
    let mut start = vec![i64::MAX; n];
    let mut end = vec![i64::MIN; n];

    for op in &body.ops {
        if let Some(d) = op.def {
            let t = s.time(op.id);
            start[d.index()] = start[d.index()].min(t);
            // Hold at least until the value is written.
            end[d.index()] = end[d.index()].max(t + lat_of(op.id));
        }
    }
    for e in ddg.edges() {
        if e.kind != DepKind::Flow {
            continue;
        }
        let Some(d) = body.op(e.from).def else {
            continue;
        };
        let use_end = s.time(e.to) + ii * e.distance as i64 + 1;
        end[d.index()] = end[d.index()].max(use_end);
    }
    for &v in &body.live_out {
        if start[v.index()] != i64::MAX {
            end[v.index()] = end[v.index()].max(start[v.index()] + ii);
        }
    }

    // Unroll factor.
    let mut k = 1u32;
    for i in 0..n {
        if start[i] != i64::MAX {
            let life = (end[i] - start[i]).max(1);
            k = k.max(((life + ii - 1) / ii) as u32);
        }
    }
    let circle = k as i64 * ii;

    let mut ranges = Vec::new();
    for v in (0..n as u32).map(VReg) {
        let i = v.index();
        let cost = (body.defs_of(v).len() + body.uses_of(v).len()) as f64;
        if start[i] == i64::MAX {
            // Never defined. Live-in invariants hold a register throughout;
            // unreferenced registers (none in practice) are skipped.
            if body.is_live_in(v) {
                ranges.push(LiveRange {
                    vreg: v,
                    instance: 0,
                    interval: CyclicInterval::new(0, circle, circle),
                    cost: cost.max(1.0),
                });
            }
            continue;
        }
        let life = (end[i] - start[i]).max(1);
        for inst in 0..k {
            ranges.push(LiveRange {
                vreg: v,
                instance: inst,
                interval: CyclicInterval::new(start[i] + inst as i64 * ii, life, circle),
                cost: cost.max(1.0),
            });
        }
    }
    (k, ranges)
}

/// Maximum number of simultaneously live ranges among `ranges` (register
/// pressure on the circle).
pub fn max_pressure(ranges: &[LiveRange]) -> usize {
    let Some(first) = ranges.first() else {
        return 0;
    };
    let circle = first.interval.circle;
    (0..circle)
        .map(|p| ranges.iter().filter(|r| r.interval.covers(p)).count())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::build_ddg;
    use vliw_ir::{LoopBuilder, RegClass};
    use vliw_machine::MachineDesc;
    use vliw_sched::{schedule_loop, ImsConfig, SchedProblem};

    #[test]
    fn interval_overlap_basics() {
        let a = CyclicInterval::new(0, 3, 10);
        let b = CyclicInterval::new(2, 2, 10);
        let c = CyclicInterval::new(5, 3, 10);
        let wrap = CyclicInterval::new(8, 4, 10); // covers 8,9,0,1
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(wrap.overlaps(&a));
        assert!(!wrap.overlaps(&c));
        assert!(wrap.covers(9) && wrap.covers(1) && !wrap.covers(2));
    }

    #[test]
    fn full_circle_overlaps_everything() {
        let full = CyclicInterval::new(3, 99, 7);
        assert_eq!(full.len, 7);
        let tiny = CyclicInterval::new(5, 1, 7);
        assert!(full.overlaps(&tiny));
        assert!(tiny.overlaps(&full));
    }

    #[test]
    fn empty_interval_never_overlaps() {
        let e = CyclicInterval::new(0, 0, 5);
        let a = CyclicInterval::new(0, 5, 5);
        assert!(!e.overlaps(&a));
        assert!(!a.overlaps(&e));
    }

    fn pipeline(l: &Loop, m: &MachineDesc) -> (Ddg, Schedule) {
        let g = build_ddg(l, &m.latencies);
        let p = SchedProblem::ideal(l, m);
        let s = schedule_loop(&p, &g, &ImsConfig::default()).unwrap();
        (g, s)
    }

    #[test]
    fn long_lived_value_forces_unroll() {
        // On a wide machine II is small but the load→use chain spans many
        // cycles ⇒ lifetime > II ⇒ K > 1.
        let mut b = LoopBuilder::new("k");
        let x = b.array("x", RegClass::Float, 256);
        let y = b.array("y", RegClass::Float, 256);
        for u in 0..4i64 {
            let v = b.load(x, u, 4);
            let w = b.fmul(v, v);
            let w2 = b.fmul(w, w);
            let w3 = b.fadd(w2, v); // v stays live across the chain
            b.store(y, u, 4, w3);
        }
        let l = b.finish(64);
        let m = MachineDesc::monolithic(16);
        let (g, s) = pipeline(&l, &m);
        let (k, ranges) =
            kernel_live_ranges(&l, &g, &s, |op| m.latencies.of(l.op(op).opcode) as i64);
        assert!(k > 1, "expected MVE unroll, got K={k}");
        // Every variant vreg has exactly K instances.
        let v0_instances = ranges.iter().filter(|r| r.vreg == VReg(0)).count();
        assert_eq!(v0_instances, k as usize);
    }

    #[test]
    fn invariant_covers_full_circle() {
        let mut b = LoopBuilder::new("inv");
        let x = b.array("x", RegClass::Float, 64);
        let a = b.live_in_float("a");
        let v = b.load(x, 0, 1);
        let w = b.fmul(a, v);
        b.store(x, 0, 1, w);
        let l = b.finish(64);
        let m = MachineDesc::monolithic(16);
        let (g, s) = pipeline(&l, &m);
        let (_, ranges) =
            kernel_live_ranges(&l, &g, &s, |op| m.latencies.of(l.op(op).opcode) as i64);
        let a_range = ranges.iter().find(|r| r.vreg == a).unwrap();
        assert_eq!(a_range.interval.len, a_range.interval.circle);
    }

    #[test]
    fn pressure_counts_overlaps() {
        let circle = 4;
        let mk = |s, l| LiveRange {
            vreg: VReg(0),
            instance: 0,
            interval: CyclicInterval::new(s, l, circle),
            cost: 1.0,
        };
        let ranges = vec![mk(0, 2), mk(1, 2), mk(3, 1)];
        assert_eq!(max_pressure(&ranges), 2);
    }
}
