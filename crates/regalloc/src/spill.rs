//! Spill-code insertion — the other half of Chaitin's allocator.
//!
//! When a bank's colouring fails, the classic response is to push the
//! uncoloured value into memory: a store after its definition and a reload
//! before each use. The value's register lifetime collapses to the few
//! cycles around the definition, and each reload is a short fresh range —
//! after which colouring is retried (the Chaitin build–colour–spill loop,
//! driven by `vliw-pipeline`).
//!
//! Spill slots live in a dedicated per-loop array, one slot lane per
//! spilled register, strided by the lane count so different iterations and
//! different slots never alias. A spilled value that is consumed *across*
//! the backedge (textual use-before-def) would need its reload to read the
//! previous iteration's slot — iteration 0 would underflow the array — so
//! carried values are not spill candidates; the caller filters them with
//! [`spillable`].

use std::collections::HashMap;
use vliw_ir::{AluKind, ArrayInfo, Loop, MemRef, OpId, Opcode, Operation, VReg};
use vliw_machine::ClusterId;

/// Result of one spill round.
#[derive(Debug, Clone)]
pub struct SpillOutcome {
    /// The rewritten body (stores after defs, reloads before uses).
    pub body: Loop,
    /// Cluster per (new) operation.
    pub cluster_of: Vec<ClusterId>,
    /// Bank per (new) virtual register.
    pub vreg_bank: Vec<ClusterId>,
    /// Registers actually spilled this round.
    pub spilled: Vec<VReg>,
}

/// Is `v` a legal spill candidate in `body`? It must be defined in the loop
/// (invariants are cheaper to keep in registers — and rematerialisable) and
/// must not be read across the backedge.
pub fn spillable(body: &Loop, v: VReg) -> bool {
    let defs = body.defs_of(v);
    if defs.is_empty() {
        return false;
    }
    let first_def = defs[0].index();
    // A use at or before the first def reads the previous iteration.
    !body.ops.iter().take(first_def + 1).any(|o| o.uses_reg(v))
}

/// Rewrite `body`, spilling every register in `victims` (all must satisfy
/// [`spillable`]). Returns `None` when `victims` is empty.
pub fn insert_spill_code(
    body: &Loop,
    cluster_of: &[ClusterId],
    vreg_bank: &[ClusterId],
    victims: &[VReg],
) -> Option<SpillOutcome> {
    if victims.is_empty() {
        return None;
    }
    debug_assert!(victims.iter().all(|&v| spillable(body, v)));
    let n_slots = victims.len() as i64;
    let slot_of: HashMap<VReg, i64> = victims
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as i64))
        .collect();

    // One spill array per class present among the victims.
    let mut arrays = body.arrays.clone();
    let mut spill_array: HashMap<vliw_ir::RegClass, vliw_ir::ArrayId> = HashMap::new();
    for &v in victims {
        let class = body.class_of(v);
        spill_array.entry(class).or_insert_with(|| {
            let id = vliw_ir::ArrayId(arrays.len() as u32);
            arrays.push(ArrayInfo {
                name: format!("spill_{class}"),
                class,
                len: (n_slots * (body.trip_count.max(1) as i64) + n_slots) as usize,
            });
            id
        });
    }

    let mut vreg_classes = body.vreg_classes.clone();
    let mut new_vreg_bank = vreg_bank.to_vec();
    let mut ops: Vec<Operation> = Vec::new();
    let mut new_cluster: Vec<ClusterId> = Vec::new();
    let mut n_reloads = 0usize;

    let push = |op: Operation, c: ClusterId, ops: &mut Vec<Operation>, cl: &mut Vec<ClusterId>| {
        let mut op = op;
        op.id = OpId(ops.len() as u32);
        ops.push(op);
        cl.push(c);
    };

    for op in &body.ops {
        let c = cluster_of[op.id.index()];
        // Reloads for spilled operands, inserted just before the consumer.
        let mut new_op = op.clone();
        let mut reload_for: HashMap<VReg, VReg> = HashMap::new();
        for u in new_op.uses.iter_mut() {
            if let Some(&slot) = slot_of.get(u) {
                let r = *reload_for.entry(*u).or_insert_with(|| {
                    let class = body.class_of(*u);
                    let fresh = VReg(vreg_classes.len() as u32);
                    vreg_classes.push(class);
                    new_vreg_bank.push(c); // reload lands in the consumer's bank
                    n_reloads += 1;
                    push(
                        Operation {
                            id: OpId(0),
                            opcode: Opcode::Load,
                            alu: AluKind::Add,
                            def: Some(fresh),
                            uses: vec![],
                            imm: None,
                            fimm_bits: None,
                            mem: Some(MemRef {
                                array: spill_array[&class],
                                offset: slot,
                                stride: n_slots,
                            }),
                        },
                        c,
                        &mut ops,
                        &mut new_cluster,
                    );
                    fresh
                });
                *u = r;
            }
        }
        let def = new_op.def;
        push(new_op, c, &mut ops, &mut new_cluster);
        // Store after a spilled def.
        if let Some(d) = def {
            if let Some(&slot) = slot_of.get(&d) {
                let class = body.class_of(d);
                push(
                    Operation {
                        id: OpId(0),
                        opcode: Opcode::Store,
                        alu: AluKind::Add,
                        def: None,
                        uses: vec![d],
                        imm: None,
                        fimm_bits: None,
                        mem: Some(MemRef {
                            array: spill_array[&class],
                            offset: slot,
                            stride: n_slots,
                        }),
                    },
                    c,
                    &mut ops,
                    &mut new_cluster,
                );
            }
        }
    }
    let _ = n_reloads;

    let new_body = Loop {
        name: body.name.clone(),
        ops,
        vreg_classes,
        live_in: body.live_in.clone(),
        live_in_vals: body.live_in_vals.clone(),
        live_out: body.live_out.clone(),
        arrays,
        trip_count: body.trip_count,
        nesting_depth: body.nesting_depth,
    };
    debug_assert!(vliw_ir::verify_loop(&new_body).is_ok());
    Some(SpillOutcome {
        body: new_body,
        cluster_of: new_cluster,
        vreg_bank: new_vreg_bank,
        spilled: victims.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{LoopBuilder, RegClass};

    fn sample() -> (Loop, Vec<ClusterId>, Vec<ClusterId>) {
        let mut b = LoopBuilder::new("sp");
        let x = b.array("x", RegClass::Float, 256);
        let y = b.array("y", RegClass::Float, 256);
        let v = b.load(x, 0, 1); // v0
        let w = b.fmul(v, v); // v1
        let z = b.fadd(w, v); // v2
        b.store(y, 0, 1, z);
        let l = b.finish(64);
        let cl = vec![ClusterId(0); l.n_ops()];
        let banks = vec![ClusterId(0); l.n_vregs()];
        (l, cl, banks)
    }

    #[test]
    fn spilling_rewrites_defs_and_uses() {
        let (l, cl, banks) = sample();
        let v = VReg(0);
        assert!(spillable(&l, v));
        let out = insert_spill_code(&l, &cl, &banks, &[v]).unwrap();
        vliw_ir::verify_loop(&out.body).unwrap();
        // Original 4 ops + 1 spill store + 2 reloads (fmul's duplicate use
        // shares one reload; the fadd gets its own).
        assert_eq!(out.body.n_ops(), 4 + 1 + 2);
        assert_eq!(out.cluster_of.len(), out.body.n_ops());
        assert_eq!(out.vreg_bank.len(), out.body.n_vregs());
        // No remaining direct use of v0 except the spill store.
        for op in &out.body.ops {
            if op.uses_reg(v) {
                assert_eq!(op.opcode, Opcode::Store);
            }
        }
    }

    #[test]
    fn spilled_loop_preserves_semantics() {
        let (l, cl, banks) = sample();
        let out = insert_spill_code(&l, &cl, &banks, &[VReg(0), VReg(1)]).unwrap();
        let a = vliw_sim_check(&l);
        let b = vliw_sim_check(&out.body);
        assert_eq!(a, b);
    }

    /// Reference-run the y array contents (avoids a dev-dependency cycle by
    /// interpreting here — the spill array is extra state the original lacks,
    /// so compare only the original arrays).
    fn vliw_sim_check(l: &Loop) -> Vec<f64> {
        // Minimal scalar interpreter mirroring vliw-sim's reference
        // semantics for the ops this test uses.
        let mut mem: Vec<Vec<f64>> = l
            .arrays
            .iter()
            .enumerate()
            .map(|(k, a)| {
                (0..a.len)
                    .map(|i| {
                        let h = ((k as i64 + 1) * 31 + i as i64 * 7) % 13 - 6;
                        (if h == 0 { 5 } else { h }) as f64 * 0.5
                    })
                    .collect()
            })
            .collect();
        let mut regs = vec![0f64; l.n_vregs()];
        for i in 0..l.trip_count as i64 {
            for op in &l.ops {
                match op.opcode {
                    Opcode::Load => {
                        let m = op.mem.unwrap();
                        regs[op.def.unwrap().index()] =
                            mem[m.array.index()][(m.offset + i * m.stride) as usize];
                    }
                    Opcode::Store => {
                        let m = op.mem.unwrap();
                        mem[m.array.index()][(m.offset + i * m.stride) as usize] =
                            regs[op.uses[0].index()];
                    }
                    Opcode::FMul => {
                        regs[op.def.unwrap().index()] =
                            regs[op.uses[0].index()] * regs[op.uses[1].index()]
                    }
                    Opcode::FAlu => {
                        regs[op.def.unwrap().index()] =
                            regs[op.uses[0].index()] + regs[op.uses[1].index()]
                    }
                    _ => unreachable!("test ops only"),
                }
            }
        }
        mem[1].clone() // the y array
    }

    #[test]
    fn carried_values_are_not_spillable() {
        let mut b = LoopBuilder::new("c");
        let s = b.live_in_float_val("s", 0.0);
        let t = b.fmul(s, s); // carried use of s
        b.fadd_into(s, t, t);
        b.live_out(s);
        let l = b.finish(8);
        assert!(!spillable(&l, s));
        assert!(spillable(&l, t));
        // Invariants are not spillable either.
        let mut b2 = LoopBuilder::new("i");
        let a = b2.live_in_float("a");
        let x = b2.array("x", RegClass::Float, 16);
        let v = b2.load(x, 0, 1);
        let w = b2.fmul(a, v);
        b2.store(x, 0, 1, w);
        let l2 = b2.finish(8);
        assert!(!spillable(&l2, a));
    }

    #[test]
    fn empty_victims_is_none() {
        let (l, cl, banks) = sample();
        assert!(insert_spill_code(&l, &cl, &banks, &[]).is_none());
    }
}
