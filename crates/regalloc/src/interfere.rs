//! Interference graph over live-range nodes.

use crate::live::LiveRange;

/// Undirected interference graph; node indices refer to the range slice it
/// was built from.
#[derive(Debug, Clone)]
pub struct InterferenceGraph {
    n: usize,
    adj: Vec<Vec<usize>>,
}

impl InterferenceGraph {
    /// Build from cyclic live ranges: two nodes interfere iff their
    /// intervals overlap. Instances of the same register DO interfere when
    /// their (longer-than-II) lifetimes overlap — that is exactly what MVE
    /// renaming is for.
    pub fn build(ranges: &[LiveRange]) -> Self {
        let n = ranges.len();
        let mut adj = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if ranges[i].interval.overlaps(&ranges[j].interval) {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        InterferenceGraph { n, adj }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }

    /// Neighbours of node `i`.
    pub fn neighbours(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Do `i` and `j` interfere?
    pub fn interferes(&self, i: usize, j: usize) -> bool {
        self.adj[i].contains(&j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::CyclicInterval;
    use vliw_ir::VReg;

    fn mk(start: i64, len: i64) -> LiveRange {
        LiveRange {
            vreg: VReg(0),
            instance: 0,
            interval: CyclicInterval::new(start, len, 10),
            cost: 1.0,
        }
    }

    #[test]
    fn builds_expected_edges() {
        let ranges = vec![mk(0, 3), mk(2, 2), mk(5, 3), mk(8, 4)];
        let g = InterferenceGraph::build(&ranges);
        assert!(g.interferes(0, 1));
        assert!(!g.interferes(0, 2));
        // [5,8) vs the wrapping [8,12)≡{8,9,0,1}: disjoint.
        assert!(!g.interferes(2, 3));
        // [0,3) vs {8,9,0,1}: overlap at 0,1.
        assert!(g.interferes(0, 3));
    }

    #[test]
    fn wrapping_edges() {
        let ranges = vec![mk(8, 4), mk(0, 2), mk(4, 2)];
        let g = InterferenceGraph::build(&ranges);
        assert!(g.interferes(0, 1)); // wrap covers 0,1
        assert!(!g.interferes(0, 2));
        assert_eq!(g.degree(2), 0);
    }
}
