//! Property tests for cyclic intervals and colouring.

use proptest::prelude::*;
use vliw_ir::VReg;
use vliw_regalloc::{color_graph, CyclicInterval, InterferenceGraph, LiveRange};

fn ranges(circle: i64) -> impl Strategy<Value = Vec<LiveRange>> {
    proptest::collection::vec((0..circle, 1..=circle), 1..24).prop_map(move |iv| {
        iv.into_iter()
            .enumerate()
            .map(|(i, (s, l))| LiveRange {
                vreg: VReg(i as u32),
                instance: 0,
                interval: CyclicInterval::new(s, l, circle),
                cost: 1.0 + (i % 5) as f64,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    #[test]
    fn overlap_is_symmetric(a in (0i64..12, 0i64..14), b in (0i64..12, 0i64..14)) {
        let x = CyclicInterval::new(a.0, a.1, 12);
        let y = CyclicInterval::new(b.0, b.1, 12);
        prop_assert_eq!(x.overlaps(&y), y.overlaps(&x));
    }

    #[test]
    fn overlap_iff_common_point(a in (0i64..10, 0i64..11), b in (0i64..10, 0i64..11)) {
        let x = CyclicInterval::new(a.0, a.1, 10);
        let y = CyclicInterval::new(b.0, b.1, 10);
        let common = (0..10).any(|p| x.covers(p) && y.covers(p));
        prop_assert_eq!(x.overlaps(&y), common);
    }

    #[test]
    fn coloring_is_always_valid_whatever_k(rs in ranges(16), k in 1usize..8) {
        let g = InterferenceGraph::build(&rs);
        let out = color_graph(&g, &rs, k);
        prop_assert!(out.is_valid(&g));
        prop_assert!(out.n_colors_used <= k);
        // Spilled + coloured = all nodes.
        let colored = out.colors.iter().filter(|c| c.is_some()).count();
        prop_assert_eq!(colored + out.n_spilled, rs.len());
    }

    #[test]
    fn enough_colors_means_no_spills(rs in ranges(16)) {
        let g = InterferenceGraph::build(&rs);
        // Max degree + 1 colours always suffice (greedy bound).
        let k = (0..g.n_nodes()).map(|i| g.degree(i)).max().unwrap_or(0) + 1;
        let out = color_graph(&g, &rs, k);
        prop_assert_eq!(out.n_spilled, 0);
        prop_assert!(out.is_valid(&g));
    }
}
