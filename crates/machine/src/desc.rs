//! Machine descriptions: clusters, register banks, copy models.

use crate::latency::LatencyTable;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a cluster (and of its register bank — they are one-to-one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// Dense index of this cluster.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One cluster: a group of general-purpose functional units sharing a
/// register bank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterDesc {
    /// Number of general-purpose functional units in the cluster.
    pub n_fus: usize,
    /// Integer registers in the bank (per-class capacity used by the
    /// Chaitin/Briggs allocator).
    pub int_regs: usize,
    /// Floating-point registers in the bank.
    pub float_regs: usize,
}

/// How cross-bank copies are supported (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CopyModel {
    /// Explicit copy operations scheduled on the destination cluster's
    /// functional units, consuming issue slots.
    Embedded,
    /// Dedicated copy hardware: `busses` system-wide busses, and
    /// `ports_per_cluster` extra register-bank ports per cluster through
    /// which incoming copies are written. A copy reserves one bus and one
    /// destination-cluster port for its issue cycle; no functional-unit slot
    /// is consumed.
    CopyUnit {
        /// System-wide copy busses (the paper uses one per cluster).
        busses: usize,
        /// Extra write ports per register bank devoted to incoming copies.
        ports_per_cluster: usize,
    },
}

impl CopyModel {
    /// True for the embedded-copies model.
    pub fn is_embedded(self) -> bool {
        matches!(self, CopyModel::Embedded)
    }
}

/// A complete machine description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineDesc {
    /// Name for reports, e.g. `16w-4x4-copyunit`.
    pub name: String,
    /// The clusters. A monolithic machine is a single cluster.
    pub clusters: Vec<ClusterDesc>,
    /// Copy support. Irrelevant for a monolithic machine.
    pub copy_model: CopyModel,
    /// Operation latencies.
    pub latencies: LatencyTable,
}

impl MachineDesc {
    /// Default register-bank capacity per class, per functional unit in the
    /// cluster. The paper never states its bank sizes; 8 registers per class
    /// per FU (so 32+32 in a 4-FU cluster, 64+64 in an 8-FU cluster) keeps
    /// bank capacity proportional to the value traffic the cluster's units
    /// generate, and the paper-scale experiments never spill under it.
    pub const REGS_PER_CLASS_PER_FU: usize = 8;

    /// A `width`-wide machine with a single monolithic multi-ported bank —
    /// the "ideal" model every result is normalised against.
    pub fn monolithic(width: usize) -> Self {
        MachineDesc {
            name: format!("{width}w-ideal"),
            clusters: vec![ClusterDesc {
                n_fus: width,
                int_regs: Self::REGS_PER_CLASS_PER_FU * width,
                float_regs: Self::REGS_PER_CLASS_PER_FU * width,
            }],
            copy_model: CopyModel::Embedded,
            latencies: LatencyTable::paper(),
        }
    }

    /// `n_clusters` clusters of `fus_per_cluster` units each, embedded-copy
    /// model, paper latencies.
    pub fn embedded(n_clusters: usize, fus_per_cluster: usize) -> Self {
        MachineDesc {
            name: format!(
                "{}w-{}x{}-embedded",
                n_clusters * fus_per_cluster,
                n_clusters,
                fus_per_cluster
            ),
            clusters: vec![
                ClusterDesc {
                    n_fus: fus_per_cluster,
                    int_regs: Self::REGS_PER_CLASS_PER_FU * fus_per_cluster,
                    float_regs: Self::REGS_PER_CLASS_PER_FU * fus_per_cluster,
                };
                n_clusters
            ],
            copy_model: CopyModel::Embedded,
            latencies: LatencyTable::paper(),
        }
    }

    /// `n_clusters` clusters of `fus_per_cluster` units each, copy-unit
    /// model: `n_clusters` busses and `log2(n_clusters)` copy ports per bank.
    ///
    /// The per-cluster port count reconstructs the paper's (OCR-garbled)
    /// formula from its worked consequences: §6.2 states 1 port per cluster
    /// on the 2-cluster machine and 3 ports per cluster on the 8-cluster
    /// machine, i.e. `log2(N)`.
    pub fn copy_unit(n_clusters: usize, fus_per_cluster: usize) -> Self {
        let ports = Self::copy_ports_for(n_clusters);
        MachineDesc {
            name: format!(
                "{}w-{}x{}-copyunit",
                n_clusters * fus_per_cluster,
                n_clusters,
                fus_per_cluster
            ),
            clusters: vec![
                ClusterDesc {
                    n_fus: fus_per_cluster,
                    int_regs: Self::REGS_PER_CLASS_PER_FU * fus_per_cluster,
                    float_regs: Self::REGS_PER_CLASS_PER_FU * fus_per_cluster,
                };
                n_clusters
            ],
            copy_model: CopyModel::CopyUnit {
                busses: n_clusters,
                ports_per_cluster: ports,
            },
            latencies: LatencyTable::paper(),
        }
    }

    /// Copy ports per cluster for an `n`-cluster copy-unit machine:
    /// `log2(n)`, clamped to at least 1.
    pub fn copy_ports_for(n_clusters: usize) -> usize {
        (usize::BITS - 1 - n_clusters.max(2).leading_zeros()) as usize
    }

    /// The three 16-wide clustered models evaluated in §6 (2×8, 4×4, 8×2),
    /// under the given copy model kind.
    pub fn paper_models(embedded: bool) -> Vec<MachineDesc> {
        [(2, 8), (4, 4), (8, 2)]
            .into_iter()
            .map(|(n, m)| {
                if embedded {
                    Self::embedded(n, m)
                } else {
                    Self::copy_unit(n, m)
                }
            })
            .collect()
    }

    /// Total issue width (functional units across all clusters).
    pub fn issue_width(&self) -> usize {
        self.clusters.iter().map(|c| c.n_fus).sum()
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Is this a single monolithic bank?
    pub fn is_monolithic(&self) -> bool {
        self.clusters.len() == 1
    }

    /// Functional units in cluster `c`.
    pub fn fus_in(&self, c: ClusterId) -> usize {
        self.clusters[c.index()].n_fus
    }

    /// Iterate over cluster ids.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> {
        (0..self.clusters.len() as u32).map(ClusterId)
    }

    /// Replace the latency table (builder-style).
    pub fn with_latencies(mut self, lat: LatencyTable) -> Self {
        self.latencies = lat;
        self
    }

    /// Replace per-class register capacity in every bank (builder-style).
    pub fn with_regs_per_bank(mut self, int_regs: usize, float_regs: usize) -> Self {
        for c in &mut self.clusters {
            c.int_regs = int_regs;
            c.float_regs = float_regs;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monolithic_shape() {
        let m = MachineDesc::monolithic(16);
        assert!(m.is_monolithic());
        assert_eq!(m.issue_width(), 16);
        assert_eq!(m.n_clusters(), 1);
    }

    #[test]
    fn paper_models_are_16_wide() {
        for emb in [true, false] {
            let models = MachineDesc::paper_models(emb);
            assert_eq!(models.len(), 3);
            for m in &models {
                assert_eq!(m.issue_width(), 16, "{}", m.name);
                assert_eq!(m.copy_model.is_embedded(), emb);
            }
            assert_eq!(models[0].n_clusters(), 2);
            assert_eq!(models[1].n_clusters(), 4);
            assert_eq!(models[2].n_clusters(), 8);
        }
    }

    #[test]
    fn copy_ports_match_section_6_2() {
        // §6.2: 1 port/cluster at N=2, 3 ports/cluster at N=8.
        assert_eq!(MachineDesc::copy_ports_for(2), 1);
        assert_eq!(MachineDesc::copy_ports_for(4), 2);
        assert_eq!(MachineDesc::copy_ports_for(8), 3);
    }

    #[test]
    fn copy_unit_has_one_bus_per_cluster() {
        let m = MachineDesc::copy_unit(4, 4);
        match m.copy_model {
            CopyModel::CopyUnit {
                busses,
                ports_per_cluster,
            } => {
                assert_eq!(busses, 4);
                assert_eq!(ports_per_cluster, 2);
            }
            _ => panic!("expected copy-unit model"),
        }
    }

    #[test]
    fn builders_modify_in_place() {
        let m = MachineDesc::embedded(2, 8)
            .with_latencies(LatencyTable::unit())
            .with_regs_per_bank(16, 8);
        assert_eq!(m.latencies, LatencyTable::unit());
        assert!(m.clusters.iter().all(|c| c.int_regs == 16));
        assert!(m.clusters.iter().all(|c| c.float_regs == 8));
    }

    #[test]
    fn cluster_ids_are_dense() {
        let m = MachineDesc::embedded(8, 2);
        let ids: Vec<_> = m.cluster_ids().collect();
        assert_eq!(ids.len(), 8);
        assert_eq!(ids[0], ClusterId(0));
        assert_eq!(ids[7], ClusterId(7));
        assert_eq!(m.fus_in(ClusterId(3)), 2);
    }
}
