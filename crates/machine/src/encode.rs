//! Canonical text encoding of machine descriptions.
//!
//! The compile service (`vliw-serve`) keys its cache on a content hash over
//! the canonical request encoding, so every machine a request can name needs
//! a deterministic, round-trippable text form. The grammar is line-oriented
//! (one item per line, `;` comments allowed), mirroring the loop format in
//! `vliw_ir::parser`:
//!
//! ```text
//! machine 16w-4x4-embedded
//! copy embedded              ; or: copy unit BUSSES PORTS
//! latency copy_int=2 copy_float=3 load=2 int_mul=5 int_div=12 \
//!         int_other=1 fp_mul=2 fp_div=2 fp_other=2 store=4
//! cluster FUS INT_REGS FLOAT_REGS   ; one line per cluster, in order
//! ```
//!
//! `parse_machine(format_machine(m)) == m` for every well-formed
//! description, and `format_machine` is a fixed point under re-parsing — the
//! properties the cache key relies on.

use crate::desc::{ClusterDesc, CopyModel, MachineDesc};
use crate::latency::LatencyTable;
use std::fmt::Write as _;

/// A machine-description parse failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineParseError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for MachineParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MachineParseError {}

fn err(line: usize, message: impl Into<String>) -> MachineParseError {
    MachineParseError {
        line,
        message: message.into(),
    }
}

/// Render `m` in the canonical text form accepted by [`parse_machine`].
pub fn format_machine(m: &MachineDesc) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "machine {}", m.name);
    match m.copy_model {
        CopyModel::Embedded => {
            let _ = writeln!(s, "copy embedded");
        }
        CopyModel::CopyUnit {
            busses,
            ports_per_cluster,
        } => {
            let _ = writeln!(s, "copy unit {busses} {ports_per_cluster}");
        }
    }
    let l = &m.latencies;
    let _ = writeln!(
        s,
        "latency copy_int={} copy_float={} load={} int_mul={} int_div={} \
         int_other={} fp_mul={} fp_div={} fp_other={} store={}",
        l.copy_int,
        l.copy_float,
        l.load,
        l.int_mul,
        l.int_div,
        l.int_other,
        l.fp_mul,
        l.fp_div,
        l.fp_other,
        l.store
    );
    for c in &m.clusters {
        let _ = writeln!(s, "cluster {} {} {}", c.n_fus, c.int_regs, c.float_regs);
    }
    s
}

/// Parse the canonical text form produced by [`format_machine`].
pub fn parse_machine(text: &str) -> Result<MachineDesc, MachineParseError> {
    let mut name: Option<String> = None;
    let mut copy_model: Option<CopyModel> = None;
    let mut latencies: Option<LatencyTable> = None;
    let mut clusters: Vec<ClusterDesc> = Vec::new();

    for (ln, raw) in text.lines().enumerate() {
        let line = ln + 1;
        let code = raw.split(';').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        if let Some(rest) = code.strip_prefix("machine ") {
            name = Some(rest.trim().to_string());
            continue;
        }
        if let Some(rest) = code.strip_prefix("copy ") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            copy_model = Some(match toks.as_slice() {
                ["embedded"] => CopyModel::Embedded,
                ["unit", b, p] => CopyModel::CopyUnit {
                    busses: b.parse().map_err(|_| err(line, "bad bus count"))?,
                    ports_per_cluster: p.parse().map_err(|_| err(line, "bad port count"))?,
                },
                _ => return Err(err(line, "copy needs: embedded | unit BUSSES PORTS")),
            });
            continue;
        }
        if let Some(rest) = code.strip_prefix("latency ") {
            let mut l = LatencyTable::unit();
            for kv in rest.split_whitespace() {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| err(line, format!("latency item `{kv}` is not key=value")))?;
                let v: u32 = v
                    .parse()
                    .map_err(|_| err(line, format!("bad latency value in `{kv}`")))?;
                match k {
                    "copy_int" => l.copy_int = v,
                    "copy_float" => l.copy_float = v,
                    "load" => l.load = v,
                    "int_mul" => l.int_mul = v,
                    "int_div" => l.int_div = v,
                    "int_other" => l.int_other = v,
                    "fp_mul" => l.fp_mul = v,
                    "fp_div" => l.fp_div = v,
                    "fp_other" => l.fp_other = v,
                    "store" => l.store = v,
                    other => return Err(err(line, format!("unknown latency field `{other}`"))),
                }
            }
            latencies = Some(l);
            continue;
        }
        if let Some(rest) = code.strip_prefix("cluster ") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() != 3 {
                return Err(err(line, "cluster needs: cluster FUS INT_REGS FLOAT_REGS"));
            }
            clusters.push(ClusterDesc {
                n_fus: toks[0].parse().map_err(|_| err(line, "bad FU count"))?,
                int_regs: toks[1].parse().map_err(|_| err(line, "bad int regs"))?,
                float_regs: toks[2].parse().map_err(|_| err(line, "bad float regs"))?,
            });
            continue;
        }
        return Err(err(line, format!("unrecognised line `{code}`")));
    }

    if clusters.is_empty() {
        return Err(err(0, "machine has no clusters"));
    }
    Ok(MachineDesc {
        name: name.ok_or_else(|| err(0, "missing `machine NAME` line"))?,
        clusters,
        copy_model: copy_model.ok_or_else(|| err(0, "missing `copy` line"))?,
        latencies: latencies.ok_or_else(|| err(0, "missing `latency` line"))?,
    })
}

/// Resolve a short machine spec — `ideal:W`, `embedded:NxM`, `copyunit:NxM`
/// — or fall back to parsing a full canonical description. The short forms
/// are what the client CLI accepts on the command line.
pub fn machine_from_spec(spec: &str) -> Result<MachineDesc, MachineParseError> {
    let parse_grid = |s: &str| -> Option<(usize, usize)> {
        let (n, m) = s.split_once('x')?;
        Some((n.parse().ok()?, m.parse().ok()?))
    };
    if let Some(rest) = spec.strip_prefix("ideal:") {
        let w: usize = rest
            .parse()
            .map_err(|_| err(0, format!("bad ideal width `{rest}`")))?;
        return Ok(MachineDesc::monolithic(w));
    }
    if let Some(rest) = spec.strip_prefix("embedded:") {
        let (n, m) =
            parse_grid(rest).ok_or_else(|| err(0, format!("bad cluster grid `{rest}`")))?;
        return Ok(MachineDesc::embedded(n, m));
    }
    if let Some(rest) = spec.strip_prefix("copyunit:") {
        let (n, m) =
            parse_grid(rest).ok_or_else(|| err(0, format!("bad cluster grid `{rest}`")))?;
        return Ok(MachineDesc::copy_unit(n, m));
    }
    parse_machine(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_paper_models() {
        for emb in [true, false] {
            for m in MachineDesc::paper_models(emb) {
                let text = format_machine(&m);
                let back = parse_machine(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
                assert_eq!(back, m);
                // The canonical form is a fixed point under re-parsing.
                assert_eq!(format_machine(&back), text);
            }
        }
    }

    #[test]
    fn round_trips_monolithic_and_custom_latencies() {
        let m = MachineDesc::monolithic(16).with_latencies(LatencyTable::paper_fast_copies());
        let back = parse_machine(&format_machine(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn short_specs_resolve() {
        assert_eq!(machine_from_spec("ideal:16").unwrap().issue_width(), 16);
        let e = machine_from_spec("embedded:4x4").unwrap();
        assert_eq!(e.n_clusters(), 4);
        assert!(e.copy_model.is_embedded());
        let c = machine_from_spec("copyunit:2x8").unwrap();
        assert!(!c.copy_model.is_embedded());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_machine("machine x\ncopy embedded\n").is_err()); // no clusters
        assert!(parse_machine("machine x\ncopy frobnicate\ncluster 1 8 8\n").is_err());
        assert!(parse_machine("nonsense line\n").is_err());
        assert!(machine_from_spec("embedded:4by4").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text =
            "; a comment\nmachine tiny\n\ncopy embedded ; inline\nlatency load=1\ncluster 2 8 8\n";
        let m = parse_machine(text).unwrap();
        assert_eq!(m.name, "tiny");
        assert_eq!(m.n_clusters(), 1);
        assert_eq!(m.latencies.load, 1);
    }
}
