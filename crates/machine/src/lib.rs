//! # vliw-machine — clustered VLIW machine descriptions
//!
//! Describes the architectural meta-model of the paper's §6.1: a `W`-wide ILP
//! machine whose `W` general-purpose functional units are grouped into `N`
//! clusters, each cluster owning one multi-ported register bank. Two copy
//! models connect the clusters:
//!
//! * **Embedded** — a cross-bank copy is an explicit operation that occupies
//!   an issue slot of one of the destination cluster's functional units.
//! * **Copy-unit** — dedicated busses and extra register-bank ports carry
//!   copies, so no functional-unit issue slot is consumed; instead the copy
//!   reserves a bus and a copy port at the destination cluster for its issue
//!   cycle.
//!
//! The latency table reproduces §6.1 exactly (integer copy 2, float copy 3,
//! load 2, integer multiply 5, integer divide 12, other integer 1, all listed
//! float ops 2, store 4).

#![warn(missing_docs)]

pub mod desc;
pub mod encode;
pub mod latency;

pub use desc::{ClusterDesc, ClusterId, CopyModel, MachineDesc};
pub use encode::{format_machine, machine_from_spec, parse_machine, MachineParseError};
pub use latency::LatencyTable;
