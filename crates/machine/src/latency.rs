//! Operation latencies (§6.1 of the paper).

use serde::{Deserialize, Serialize};
use vliw_ir::Opcode;

/// Cycle latencies per opcode. `latency` cycles elapse between issuing an
/// operation and its result being readable; an operation issued at cycle `c`
/// produces a value readable at cycle `c + latency`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyTable {
    /// Integer inter-bank copy.
    pub copy_int: u32,
    /// Floating-point inter-bank copy.
    pub copy_float: u32,
    /// Memory load.
    pub load: u32,
    /// Integer multiply.
    pub int_mul: u32,
    /// Integer divide.
    pub int_div: u32,
    /// Other integer operations (including immediates).
    pub int_other: u32,
    /// Floating-point multiply.
    pub fp_mul: u32,
    /// Floating-point divide.
    pub fp_div: u32,
    /// Other floating-point operations.
    pub fp_other: u32,
    /// Memory store (cycles until the stored value is visible to loads).
    pub store: u32,
}

impl LatencyTable {
    /// The paper's latency table (§6.1), used by both machine models.
    pub fn paper() -> Self {
        LatencyTable {
            copy_int: 2,
            copy_float: 3,
            load: 2,
            int_mul: 5,
            int_div: 12,
            int_other: 1,
            fp_mul: 2,
            fp_div: 2,
            fp_other: 2,
            store: 4,
        }
    }

    /// Unit latencies for every operation — the assumption of the paper's
    /// worked example (§4.2, Figures 1–3).
    pub fn unit() -> Self {
        LatencyTable {
            copy_int: 1,
            copy_float: 1,
            load: 1,
            int_mul: 1,
            int_div: 1,
            int_other: 1,
            fp_mul: 1,
            fp_div: 1,
            fp_other: 1,
            store: 1,
        }
    }

    /// The paper's table with 1-cycle copies — the Nystrom/Eichenberger and
    /// Ozer et al. assumption, used by the copy-latency ablation (§6.3).
    pub fn paper_fast_copies() -> Self {
        LatencyTable {
            copy_int: 1,
            copy_float: 1,
            ..LatencyTable::paper()
        }
    }

    /// Latency of `op`.
    pub fn of(&self, op: Opcode) -> u32 {
        match op {
            Opcode::IntAlu | Opcode::LoadImmInt => self.int_other,
            Opcode::IntMul => self.int_mul,
            Opcode::IntDiv => self.int_div,
            Opcode::FAlu | Opcode::LoadImmFloat => self.fp_other,
            Opcode::FMul => self.fp_mul,
            Opcode::FDiv => self.fp_div,
            Opcode::Load => self.load,
            Opcode::Store => self.store,
            Opcode::CopyInt => self.copy_int,
            Opcode::CopyFloat => self.copy_float,
        }
    }

    /// The largest latency in the table (bounds schedule-length estimates).
    pub fn max_latency(&self) -> u32 {
        [
            self.copy_int,
            self.copy_float,
            self.load,
            self.int_mul,
            self.int_div,
            self.int_other,
            self.fp_mul,
            self.fp_div,
            self.fp_other,
            self.store,
        ]
        .into_iter()
        .max()
        .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_matches_section_6_1() {
        let t = LatencyTable::paper();
        assert_eq!(t.of(Opcode::CopyInt), 2);
        assert_eq!(t.of(Opcode::CopyFloat), 3);
        assert_eq!(t.of(Opcode::Load), 2);
        assert_eq!(t.of(Opcode::IntMul), 5);
        assert_eq!(t.of(Opcode::IntDiv), 12);
        assert_eq!(t.of(Opcode::IntAlu), 1);
        assert_eq!(t.of(Opcode::FMul), 2);
        assert_eq!(t.of(Opcode::FDiv), 2);
        assert_eq!(t.of(Opcode::FAlu), 2);
        assert_eq!(t.of(Opcode::Store), 4);
        assert_eq!(t.max_latency(), 12);
    }

    #[test]
    fn unit_table_is_all_ones() {
        let t = LatencyTable::unit();
        for op in [
            Opcode::IntAlu,
            Opcode::IntMul,
            Opcode::IntDiv,
            Opcode::FAlu,
            Opcode::FMul,
            Opcode::FDiv,
            Opcode::Load,
            Opcode::Store,
            Opcode::LoadImmInt,
            Opcode::LoadImmFloat,
            Opcode::CopyInt,
            Opcode::CopyFloat,
        ] {
            assert_eq!(t.of(op), 1, "{op}");
        }
    }

    #[test]
    fn fast_copy_table_only_changes_copies() {
        let fast = LatencyTable::paper_fast_copies();
        let paper = LatencyTable::paper();
        assert_eq!(fast.of(Opcode::CopyInt), 1);
        assert_eq!(fast.of(Opcode::CopyFloat), 1);
        assert_eq!(fast.of(Opcode::IntDiv), paper.of(Opcode::IntDiv));
        assert_eq!(fast.of(Opcode::Store), paper.of(Opcode::Store));
    }
}
