//! Property tests for dependence analysis: RecII is the exact feasibility
//! boundary, longest paths are internally consistent, and the O(V·E)
//! Bellman–Ford kernels agree with the dense Floyd–Warshall reference on
//! arbitrary (multi-cycle and acyclic) graphs.

use proptest::prelude::*;
use vliw_ddg::{rec_ii, rec_ii_dense, Ddg, DepEdge, DepKind, NO_PATH};
use vliw_ir::OpId;

fn arbitrary_graph() -> impl Strategy<Value = Ddg> {
    (
        2usize..12,
        proptest::collection::vec((any::<u8>(), any::<u8>(), 1u8..13, 0u8..3), 1..24),
    )
        .prop_map(|(n, raw)| {
            let mut g = Ddg::new(n);
            for (f, t, lat, dist) in raw {
                let from = OpId((f as usize % n) as u32);
                let to = OpId((t as usize % n) as u32);
                if from == to && dist == 0 {
                    continue; // zero-distance self loop is never feasible
                }
                // Keep distance-0 edges forward so the graph matches the
                // builder invariant (program order).
                let (from, to, dist) = if dist == 0 && from.index() > to.index() {
                    (to, from, 0)
                } else {
                    (from, to, dist)
                };
                g.add_edge(DepEdge {
                    from,
                    to,
                    latency: lat as i64,
                    distance: dist as u32,
                    kind: DepKind::Flow,
                });
            }
            g
        })
}

/// A graph with only distance-0 (forward) edges — always acyclic.
fn acyclic_graph() -> impl Strategy<Value = Ddg> {
    (
        2usize..12,
        proptest::collection::vec((any::<u8>(), any::<u8>(), 1u8..13), 1..24),
    )
        .prop_map(|(n, raw)| {
            let mut g = Ddg::new(n);
            for (f, t, lat) in raw {
                let a = f as usize % n;
                let b = t as usize % n;
                if a == b {
                    continue;
                }
                let (from, to) = (a.min(b), a.max(b));
                g.add_edge(DepEdge {
                    from: OpId(from as u32),
                    to: OpId(to as u32),
                    latency: lat as i64,
                    distance: 0,
                    kind: DepKind::Flow,
                });
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn rec_ii_is_the_feasibility_boundary(g in arbitrary_graph()) {
        let r = rec_ii(&g);
        prop_assert!(g.longest_paths(r).is_some(), "RecII itself must be feasible");
        if r > 1 {
            prop_assert!(g.longest_paths(r - 1).is_none(), "RecII-1 must be infeasible");
        }
    }

    #[test]
    fn feasibility_is_monotone(g in arbitrary_graph(), bump in 1u32..5) {
        let r = rec_ii(&g);
        prop_assert!(g.longest_paths(r + bump).is_some());
    }

    #[test]
    fn bellman_ford_feasibility_matches_floyd_warshall(
        g in arbitrary_graph(),
        ii in 1u32..32,
    ) {
        prop_assert_eq!(g.is_feasible(ii), g.longest_paths(ii).is_some());
    }

    #[test]
    fn rec_ii_matches_dense_reference(g in arbitrary_graph()) {
        prop_assert_eq!(rec_ii(&g), rec_ii_dense(&g));
    }

    #[test]
    fn rec_ii_of_acyclic_graphs_is_1_under_both_kernels(g in acyclic_graph()) {
        prop_assert_eq!(rec_ii(&g), 1);
        prop_assert_eq!(rec_ii_dense(&g), 1);
        prop_assert!(!g.has_recurrence());
        prop_assert!(g.is_feasible(1));
    }

    #[test]
    fn dfs_recurrence_matches_matrix_diagonal(g in arbitrary_graph()) {
        // The huge-II matrix has a path i→i exactly when some cycle exists —
        // the pre-refactor definition of `has_recurrence`.
        let d = g.longest_paths(1_000_000).expect("II=1e6 must be feasible");
        let dense = (0..g.n_ops()).any(|i| d.has_path(i, i));
        prop_assert_eq!(g.has_recurrence(), dense);
    }

    #[test]
    fn source_distances_match_matrix_row_maxima(g in arbitrary_graph()) {
        // Longest path from the virtual source to v = max(0, max_i d[i][v]).
        let r = rec_ii(&g);
        let dist = g.longest_from_source(r).expect("RecII is feasible");
        let d = g.longest_paths(r).unwrap();
        for (v, &dv) in dist.iter().enumerate().take(g.n_ops()) {
            let best = (0..g.n_ops())
                .filter(|&i| d.has_path(i, v))
                .map(|i| d.at(i, v))
                .max()
                .unwrap_or(0)
                .max(0);
            prop_assert_eq!(dv, best);
        }
    }

    #[test]
    fn longest_paths_satisfy_triangle_rule(g in arbitrary_graph()) {
        let r = rec_ii(&g);
        let d = g.longest_paths(r).unwrap();
        let n = d.n_ops();
        // d[i][j] ≥ d[i][k] + d[k][j] can't be violated after Floyd-Warshall.
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    if d[(i, k)] > NO_PATH && d[(k, j)] > NO_PATH {
                        prop_assert!(d[(i, j)] >= d[(i, k)] + d[(k, j)]);
                    }
                }
            }
        }
    }

    #[test]
    fn edge_weights_bounded_by_path_matrix(g in arbitrary_graph()) {
        let r = rec_ii(&g);
        let d = g.longest_paths(r).unwrap();
        for e in g.edges() {
            let w = e.latency - (r as i64) * (e.distance as i64);
            prop_assert!(d[(e.from.index(), e.to.index())] >= w);
        }
    }
}
