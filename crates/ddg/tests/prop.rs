//! Property tests for dependence analysis: RecII is the exact feasibility
//! boundary, and longest paths are internally consistent.

use proptest::prelude::*;
use vliw_ddg::{rec_ii, Ddg, DepEdge, DepKind};
use vliw_ir::OpId;

fn arbitrary_graph() -> impl Strategy<Value = Ddg> {
    (
        2usize..12,
        proptest::collection::vec((any::<u8>(), any::<u8>(), 1u8..13, 0u8..3), 1..24),
    )
        .prop_map(|(n, raw)| {
            let mut g = Ddg::new(n);
            for (f, t, lat, dist) in raw {
                let from = OpId((f as usize % n) as u32);
                let to = OpId((t as usize % n) as u32);
                if from == to && dist == 0 {
                    continue; // zero-distance self loop is never feasible
                }
                // Keep distance-0 edges forward so the graph matches the
                // builder invariant (program order).
                let (from, to, dist) = if dist == 0 && from.index() > to.index() {
                    (to, from, 0)
                } else {
                    (from, to, dist)
                };
                g.add_edge(DepEdge {
                    from,
                    to,
                    latency: lat as i64,
                    distance: dist as u32,
                    kind: DepKind::Flow,
                });
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn rec_ii_is_the_feasibility_boundary(g in arbitrary_graph()) {
        let r = rec_ii(&g);
        prop_assert!(g.longest_paths(r).is_some(), "RecII itself must be feasible");
        if r > 1 {
            prop_assert!(g.longest_paths(r - 1).is_none(), "RecII-1 must be infeasible");
        }
    }

    #[test]
    fn feasibility_is_monotone(g in arbitrary_graph(), bump in 1u32..5) {
        let r = rec_ii(&g);
        prop_assert!(g.longest_paths(r + bump).is_some());
    }

    #[test]
    fn longest_paths_satisfy_triangle_rule(g in arbitrary_graph()) {
        let r = rec_ii(&g);
        let d = g.longest_paths(r).unwrap();
        const NEG: i64 = i64::MIN / 4;
        let n = d.len();
        // d[i][j] ≥ d[i][k] + d[k][j] can't be violated after Floyd-Warshall.
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    if d[i][k] > NEG && d[k][j] > NEG {
                        prop_assert!(d[i][j] >= d[i][k] + d[k][j]);
                    }
                }
            }
        }
    }

    #[test]
    fn edge_weights_bounded_by_path_matrix(g in arbitrary_graph()) {
        let r = rec_ii(&g);
        let d = g.longest_paths(r).unwrap();
        for e in g.edges() {
            let w = e.latency - (r as i64) * (e.distance as i64);
            prop_assert!(d[e.from.index()][e.to.index()] >= w);
        }
    }
}
