//! The dependence graph data structure.

use vliw_ir::OpId;

/// Kind of dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// True (read-after-write) dependence through a register.
    Flow,
    /// Anti (write-after-read) dependence through a register.
    Anti,
    /// Output (write-after-write) dependence through a register.
    Output,
    /// Memory dependence (any of flow/anti/output through an array).
    Mem,
}

/// One dependence edge: `to` (in iteration `i + distance`) must issue at
/// least `latency` cycles after `from` (in iteration `i`). Under an
/// initiation interval `II`, the scheduling constraint is
/// `cycle(to) ≥ cycle(from) + latency − II·distance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Source operation.
    pub from: OpId,
    /// Dependent operation.
    pub to: OpId,
    /// Minimum cycles between issue of `from` and issue of `to`.
    pub latency: i64,
    /// Iteration distance ω (0 = same iteration).
    pub distance: u32,
    /// What the edge models.
    pub kind: DepKind,
}

/// A dependence graph over the operations of one loop body.
#[derive(Debug, Clone)]
pub struct Ddg {
    n: usize,
    edges: Vec<DepEdge>,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
}

impl Ddg {
    /// Create an empty graph over `n` operations.
    pub fn new(n: usize) -> Self {
        Ddg {
            n,
            edges: Vec::new(),
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
        }
    }

    /// Number of operations (nodes).
    #[inline]
    pub fn n_ops(&self) -> usize {
        self.n
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Add an edge. Duplicate (from, to, distance, kind) pairs keep only the
    /// largest latency.
    pub fn add_edge(&mut self, e: DepEdge) {
        debug_assert!(e.from.index() < self.n && e.to.index() < self.n);
        if let Some(idx) = self.succ[e.from.index()].iter().copied().find(|&i| {
            let old = self.edges[i];
            old.to == e.to && old.distance == e.distance && old.kind == e.kind
        }) {
            let old = &mut self.edges[idx];
            old.latency = old.latency.max(e.latency);
            return;
        }
        let idx = self.edges.len();
        self.edges.push(e);
        self.succ[e.from.index()].push(idx);
        self.pred[e.to.index()].push(idx);
    }

    /// Outgoing edges of `op`.
    pub fn succs(&self, op: OpId) -> impl Iterator<Item = &DepEdge> {
        self.succ[op.index()].iter().map(move |&i| &self.edges[i])
    }

    /// Incoming edges of `op`.
    pub fn preds(&self, op: OpId) -> impl Iterator<Item = &DepEdge> {
        self.pred[op.index()].iter().map(move |&i| &self.edges[i])
    }

    /// Longest-path matrix under a candidate II, or `None` if a positive
    /// cycle exists (II infeasible). `dist[i][j]` is the maximum over paths
    /// i→j of `Σ latency − II·Σ distance`; `i64::MIN` marks "no path".
    ///
    /// Floyd–Warshall, O(n³); loop bodies are at most a few hundred ops so
    /// this is well within budget, and the binary search in
    /// [`crate::minii::rec_ii`] calls it O(log Σlat) times.
    pub fn longest_paths(&self, ii: u32) -> Option<Vec<Vec<i64>>> {
        const NEG: i64 = i64::MIN / 4;
        let n = self.n;
        let mut d = vec![vec![NEG; n]; n];
        for e in &self.edges {
            let w = e.latency - (ii as i64) * (e.distance as i64);
            let cur = &mut d[e.from.index()][e.to.index()];
            *cur = (*cur).max(w);
        }
        for k in 0..n {
            for i in 0..n {
                let dik = d[i][k];
                // Relaxing through k == i is a no-op whenever d[i][i] ≤ 0,
                // and a positive d[i][i] is caught below.
                if dik <= NEG || i == k {
                    if d[i][i] > 0 {
                        return None;
                    }
                    continue;
                }
                // Split borrows: row k is read while row i is written.
                let (row_k, row_i) = if i < k {
                    let (lo, hi) = d.split_at_mut(k);
                    (&hi[0], &mut lo[i])
                } else {
                    let (lo, hi) = d.split_at_mut(i);
                    (&lo[k], &mut hi[0])
                };
                for (dij, &dkj) in row_i.iter_mut().zip(row_k.iter()) {
                    if dkj > NEG {
                        let w = dik + dkj;
                        if w > *dij {
                            *dij = w;
                        }
                    }
                }
                // A positive self-loop through k means a positive cycle.
                if d[i][i] > 0 {
                    return None;
                }
            }
        }
        for (i, row) in d.iter().enumerate() {
            if row[i] > 0 {
                return None;
            }
        }
        Some(d)
    }

    /// True if some dependence cycle exists (i.e. the loop has a recurrence).
    pub fn has_recurrence(&self) -> bool {
        // A cycle must contain a distance>0 edge; test feasibility with a
        // huge II — if even that has a positive cycle something is malformed,
        // so instead check for any cycle via reachability on the full graph.
        let d = self
            .longest_paths(1_000_000)
            .expect("II=1e6 must be feasible");
        (0..self.n).any(|i| d[i][i] > i64::MIN / 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(from: u32, to: u32, lat: i64, dist: u32) -> DepEdge {
        DepEdge {
            from: OpId(from),
            to: OpId(to),
            latency: lat,
            distance: dist,
            kind: DepKind::Flow,
        }
    }

    #[test]
    fn duplicate_edges_keep_max_latency() {
        let mut g = Ddg::new(2);
        g.add_edge(edge(0, 1, 2, 0));
        g.add_edge(edge(0, 1, 5, 0));
        g.add_edge(edge(0, 1, 3, 0));
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.edges()[0].latency, 5);
    }

    #[test]
    fn adjacency_lists() {
        let mut g = Ddg::new(3);
        g.add_edge(edge(0, 1, 1, 0));
        g.add_edge(edge(0, 2, 1, 0));
        g.add_edge(edge(1, 2, 1, 0));
        assert_eq!(g.succs(OpId(0)).count(), 2);
        assert_eq!(g.preds(OpId(2)).count(), 2);
        assert_eq!(g.preds(OpId(0)).count(), 0);
    }

    #[test]
    fn positive_cycle_detected_below_recii() {
        // Cycle 0→1→0: total latency 5, total distance 1 ⇒ RecII = 5.
        let mut g = Ddg::new(2);
        g.add_edge(edge(0, 1, 3, 0));
        g.add_edge(edge(1, 0, 2, 1));
        assert!(g.longest_paths(4).is_none());
        assert!(g.longest_paths(5).is_some());
        assert!(g.has_recurrence());
    }

    #[test]
    fn acyclic_graph_feasible_at_ii_1() {
        let mut g = Ddg::new(3);
        g.add_edge(edge(0, 1, 10, 0));
        g.add_edge(edge(1, 2, 10, 0));
        assert!(g.longest_paths(1).is_some());
        assert!(!g.has_recurrence());
        let d = g.longest_paths(1).unwrap();
        assert_eq!(d[0][2], 20);
    }
}
