//! The dependence graph data structure.

use std::ops::Index;
use vliw_ir::OpId;

/// Kind of dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// True (read-after-write) dependence through a register.
    Flow,
    /// Anti (write-after-read) dependence through a register.
    Anti,
    /// Output (write-after-write) dependence through a register.
    Output,
    /// Memory dependence (any of flow/anti/output through an array).
    Mem,
}

/// One dependence edge: `to` (in iteration `i + distance`) must issue at
/// least `latency` cycles after `from` (in iteration `i`). Under an
/// initiation interval `II`, the scheduling constraint is
/// `cycle(to) ≥ cycle(from) + latency − II·distance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Source operation.
    pub from: OpId,
    /// Dependent operation.
    pub to: OpId,
    /// Minimum cycles between issue of `from` and issue of `to`.
    pub latency: i64,
    /// Iteration distance ω (0 = same iteration).
    pub distance: u32,
    /// What the edge models.
    pub kind: DepKind,
}

/// Sentinel below which a matrix entry means "no path". Kept well away from
/// `i64::MIN` so additions cannot wrap.
pub const NO_PATH: i64 = i64::MIN / 4;

/// All-pairs longest-path matrix in a flat row-major buffer.
///
/// Produced by [`Ddg::longest_paths`]; reuse one across probes via
/// [`Ddg::longest_paths_into`] to avoid the O(n²) allocation per call.
/// `m[(i, j)]` is the maximum over paths i→j of `Σ latency − II·Σ distance`;
/// entries at or below [`NO_PATH`] mean no path exists.
#[derive(Debug, Clone, Default)]
pub struct PathMatrix {
    n: usize,
    d: Vec<i64>,
}

impl PathMatrix {
    /// An empty matrix, ready to be filled by [`Ddg::longest_paths_into`].
    pub fn new() -> Self {
        PathMatrix::default()
    }

    /// Number of operations (rows/columns).
    #[inline]
    pub fn n_ops(&self) -> usize {
        self.n
    }

    /// The longest-path weight i→j, or a value ≤ [`NO_PATH`] if unreachable.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> i64 {
        self.d[i * self.n + j]
    }

    /// Does a path i→j exist?
    #[inline]
    pub fn has_path(&self, i: usize, j: usize) -> bool {
        self.at(i, j) > NO_PATH
    }

    /// One full row (length `n_ops`).
    #[inline]
    pub fn row(&self, i: usize) -> &[i64] {
        &self.d[i * self.n..(i + 1) * self.n]
    }

    fn reset(&mut self, n: usize) {
        self.n = n;
        self.d.clear();
        self.d.resize(n * n, NO_PATH);
    }
}

impl Index<(usize, usize)> for PathMatrix {
    type Output = i64;
    fn index(&self, (i, j): (usize, usize)) -> &i64 {
        &self.d[i * self.n + j]
    }
}

/// A dependence graph over the operations of one loop body.
#[derive(Debug, Clone)]
pub struct Ddg {
    n: usize,
    edges: Vec<DepEdge>,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
}

impl Ddg {
    /// Create an empty graph over `n` operations.
    pub fn new(n: usize) -> Self {
        Ddg {
            n,
            edges: Vec::new(),
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
        }
    }

    /// Number of operations (nodes).
    #[inline]
    pub fn n_ops(&self) -> usize {
        self.n
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Add an edge. Duplicate (from, to, distance, kind) pairs keep only the
    /// largest latency.
    pub fn add_edge(&mut self, e: DepEdge) {
        debug_assert!(e.from.index() < self.n && e.to.index() < self.n);
        if let Some(idx) = self.succ[e.from.index()].iter().copied().find(|&i| {
            let old = self.edges[i];
            old.to == e.to && old.distance == e.distance && old.kind == e.kind
        }) {
            let old = &mut self.edges[idx];
            old.latency = old.latency.max(e.latency);
            return;
        }
        let idx = self.edges.len();
        self.edges.push(e);
        self.succ[e.from.index()].push(idx);
        self.pred[e.to.index()].push(idx);
    }

    /// Outgoing edges of `op`.
    pub fn succs(&self, op: OpId) -> impl Iterator<Item = &DepEdge> {
        self.succ[op.index()].iter().map(move |&i| &self.edges[i])
    }

    /// Incoming edges of `op`.
    pub fn preds(&self, op: OpId) -> impl Iterator<Item = &DepEdge> {
        self.pred[op.index()].iter().map(move |&i| &self.edges[i])
    }

    /// Is the candidate `ii` feasible — i.e. does the graph have **no**
    /// positive cycle under edge weights `latency − II·distance`?
    ///
    /// Bellman–Ford from a virtual source connected to every node with a
    /// zero-weight edge: O(V·E) and no O(n²) matrix, which is what the
    /// per-II probe in iterative modulo scheduling wants. See
    /// [`Ddg::is_feasible_with`] to reuse the O(n) scratch buffer across
    /// probes.
    pub fn is_feasible(&self, ii: u32) -> bool {
        let mut scratch = Vec::new();
        self.is_feasible_with(ii, &mut scratch)
    }

    /// [`Ddg::is_feasible`] with a caller-provided scratch buffer, so a
    /// binary search or II escalation loop performs no per-probe allocation.
    /// On a feasible return, `scratch[v]` holds the longest-path weight from
    /// the virtual source to `v` (≥ 0).
    pub fn is_feasible_with(&self, ii: u32, scratch: &mut Vec<i64>) -> bool {
        let n = self.n;
        scratch.clear();
        scratch.resize(n, 0);
        if n == 0 || self.edges.is_empty() {
            return true;
        }
        // The longest simple path from the virtual source uses at most n
        // real edges; a relaxation that still fires on the n-th pass can
        // only come from a repeated vertex, i.e. a positive cycle.
        for _pass in 0..n {
            let mut changed = false;
            for e in &self.edges {
                let w = e.latency - (ii as i64) * (e.distance as i64);
                let cand = scratch[e.from.index()] + w;
                if cand > scratch[e.to.index()] {
                    scratch[e.to.index()] = cand;
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
        }
        false
    }

    /// [`Ddg::is_feasible_with`] under per-edge latency adjustments: edge
    /// weights become `latency + extra(edge) − II·distance`.
    ///
    /// The joint solver's recurrence propagator probes candidate IIs with
    /// cross-bank flow edges lengthened by the copy latency a partial bank
    /// assignment already commits to, without materialising the clustered
    /// body. `extra` must be non-negative for the probe to stay a sound
    /// relaxation of the copy-inserted graph. On a feasible return,
    /// `scratch[v]` holds the longest-path weight from the virtual source.
    pub fn is_feasible_adjusted(
        &self,
        ii: u32,
        extra: impl Fn(&DepEdge) -> i64,
        scratch: &mut Vec<i64>,
    ) -> bool {
        let n = self.n;
        scratch.clear();
        scratch.resize(n, 0);
        if n == 0 || self.edges.is_empty() {
            return true;
        }
        for _pass in 0..n {
            let mut changed = false;
            for e in &self.edges {
                let w = e.latency + extra(e) - (ii as i64) * (e.distance as i64);
                let cand = scratch[e.from.index()] + w;
                if cand > scratch[e.to.index()] {
                    scratch[e.to.index()] = cand;
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
        }
        false
    }

    /// Per-node longest-path weight from the virtual source under `ii`
    /// (every weight ≥ 0 since the source reaches each node directly), or
    /// `None` if `ii` is infeasible. O(V·E), one O(n) allocation.
    pub fn longest_from_source(&self, ii: u32) -> Option<Vec<i64>> {
        let mut dist = Vec::new();
        self.is_feasible_with(ii, &mut dist).then_some(dist)
    }

    /// Longest-path matrix under a candidate II, or `None` if a positive
    /// cycle exists (II infeasible).
    ///
    /// Floyd–Warshall, O(n³) time and O(n²) space — use only when the
    /// all-pairs matrix is genuinely needed; per-II feasibility probes
    /// should call the O(V·E) [`Ddg::is_feasible`] instead. Allocates a
    /// fresh matrix; reuse one across calls via [`Ddg::longest_paths_into`].
    pub fn longest_paths(&self, ii: u32) -> Option<PathMatrix> {
        let mut m = PathMatrix::new();
        self.longest_paths_into(ii, &mut m).then_some(m)
    }

    /// Fill `m` with the all-pairs longest paths under `ii`, reusing its
    /// buffer. Returns `false` (matrix contents unspecified) if a positive
    /// cycle exists.
    pub fn longest_paths_into(&self, ii: u32, m: &mut PathMatrix) -> bool {
        let n = self.n;
        m.reset(n);
        let d = &mut m.d;
        for e in &self.edges {
            let w = e.latency - (ii as i64) * (e.distance as i64);
            let cur = &mut d[e.from.index() * n + e.to.index()];
            *cur = (*cur).max(w);
        }
        for k in 0..n {
            for i in 0..n {
                let dik = d[i * n + k];
                // Relaxing through k == i is a no-op whenever d[i][i] ≤ 0,
                // and a positive d[i][i] is caught below.
                if dik <= NO_PATH || i == k {
                    if d[i * n + i] > 0 {
                        return false;
                    }
                    continue;
                }
                // Split borrows: row k is read while row i is written.
                let (row_k, row_i) = if i < k {
                    let (lo, hi) = d.split_at_mut(k * n);
                    (&hi[..n], &mut lo[i * n..(i + 1) * n])
                } else {
                    let (lo, hi) = d.split_at_mut(i * n);
                    (&lo[k * n..(k + 1) * n], &mut hi[..n])
                };
                for (dij, &dkj) in row_i.iter_mut().zip(row_k.iter()) {
                    if dkj > NO_PATH {
                        let w = dik + dkj;
                        if w > *dij {
                            *dij = w;
                        }
                    }
                }
                // A positive self-loop through k means a positive cycle.
                if d[i * n + i] > 0 {
                    return false;
                }
            }
        }
        for i in 0..n {
            if d[i * n + i] > 0 {
                return false;
            }
        }
        true
    }

    /// True if some dependence cycle exists (i.e. the loop has a recurrence).
    ///
    /// Plain iterative DFS over the full graph — O(V+E), no matrix.
    pub fn has_recurrence(&self) -> bool {
        // 0 = unvisited, 1 = on the current DFS path, 2 = done.
        let mut color = vec![0u8; self.n];
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for s in 0..self.n {
            if color[s] != 0 {
                continue;
            }
            color[s] = 1;
            stack.push((s, 0));
            while let Some((u, i)) = stack.last_mut() {
                if let Some(&edge_idx) = self.succ[*u].get(*i) {
                    *i += 1;
                    let v = self.edges[edge_idx].to.index();
                    match color[v] {
                        0 => {
                            color[v] = 1;
                            stack.push((v, 0));
                        }
                        1 => return true, // back edge, including self-loops
                        _ => {}
                    }
                } else {
                    color[*u] = 2;
                    stack.pop();
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(from: u32, to: u32, lat: i64, dist: u32) -> DepEdge {
        DepEdge {
            from: OpId(from),
            to: OpId(to),
            latency: lat,
            distance: dist,
            kind: DepKind::Flow,
        }
    }

    #[test]
    fn duplicate_edges_keep_max_latency() {
        let mut g = Ddg::new(2);
        g.add_edge(edge(0, 1, 2, 0));
        g.add_edge(edge(0, 1, 5, 0));
        g.add_edge(edge(0, 1, 3, 0));
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.edges()[0].latency, 5);
    }

    #[test]
    fn adjacency_lists() {
        let mut g = Ddg::new(3);
        g.add_edge(edge(0, 1, 1, 0));
        g.add_edge(edge(0, 2, 1, 0));
        g.add_edge(edge(1, 2, 1, 0));
        assert_eq!(g.succs(OpId(0)).count(), 2);
        assert_eq!(g.preds(OpId(2)).count(), 2);
        assert_eq!(g.preds(OpId(0)).count(), 0);
    }

    #[test]
    fn positive_cycle_detected_below_recii() {
        // Cycle 0→1→0: total latency 5, total distance 1 ⇒ RecII = 5.
        let mut g = Ddg::new(2);
        g.add_edge(edge(0, 1, 3, 0));
        g.add_edge(edge(1, 0, 2, 1));
        assert!(g.longest_paths(4).is_none());
        assert!(g.longest_paths(5).is_some());
        assert!(!g.is_feasible(4));
        assert!(g.is_feasible(5));
        assert!(g.has_recurrence());
    }

    #[test]
    fn acyclic_graph_feasible_at_ii_1() {
        let mut g = Ddg::new(3);
        g.add_edge(edge(0, 1, 10, 0));
        g.add_edge(edge(1, 2, 10, 0));
        assert!(g.longest_paths(1).is_some());
        assert!(g.is_feasible(1));
        assert!(!g.has_recurrence());
        let d = g.longest_paths(1).unwrap();
        assert_eq!(d[(0, 2)], 20);
        assert!(d.has_path(0, 2));
        assert!(!d.has_path(2, 0));
    }

    #[test]
    fn longest_from_source_matches_matrix_column_max() {
        let mut g = Ddg::new(3);
        g.add_edge(edge(0, 1, 10, 0));
        g.add_edge(edge(1, 2, 7, 0));
        let dist = g.longest_from_source(1).unwrap();
        assert_eq!(dist, vec![0, 10, 17]);
        assert!(g.longest_from_source(0).is_some()); // acyclic: any II works
    }

    #[test]
    fn adjusted_feasibility_lengthens_edges() {
        // Cycle 0→1→0: RecII = 5. Stretching the forward edge by 2 (a copy
        // on the 0→1 value) raises it to 7.
        let mut g = Ddg::new(2);
        g.add_edge(edge(0, 1, 3, 0));
        g.add_edge(edge(1, 0, 2, 1));
        let stretch = |e: &DepEdge| if e.from == OpId(0) { 2 } else { 0 };
        let mut s = Vec::new();
        assert!(g.is_feasible_adjusted(5, |_| 0, &mut s));
        assert!(!g.is_feasible_adjusted(6, stretch, &mut s));
        assert!(g.is_feasible_adjusted(7, stretch, &mut s));
        // Zero adjustment agrees with the plain probe.
        assert_eq!(g.is_feasible(4), g.is_feasible_adjusted(4, |_| 0, &mut s));
    }

    #[test]
    fn self_loop_is_a_recurrence() {
        let mut g = Ddg::new(2);
        g.add_edge(edge(0, 0, 2, 1));
        assert!(g.has_recurrence());
        assert!(!g.is_feasible(1));
        assert!(g.is_feasible(2));
    }

    #[test]
    fn path_matrix_buffer_is_reusable() {
        let mut g = Ddg::new(2);
        g.add_edge(edge(0, 1, 3, 0));
        g.add_edge(edge(1, 0, 2, 1));
        let mut m = PathMatrix::new();
        assert!(!g.longest_paths_into(4, &mut m));
        assert!(g.longest_paths_into(5, &mut m));
        assert_eq!(m.at(0, 1), 3);
        assert_eq!(m.n_ops(), 2);
    }
}
