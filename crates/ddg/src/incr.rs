//! Incremental difference-constraint feasibility.
//!
//! A difference-constraint system `pot[to] ≥ pot[from] + w(e)` over a fixed
//! edge set is satisfiable iff the graph has no positive cycle; the least
//! non-negative solution is the longest-path potential vector from a virtual
//! source (exactly what [`crate::Ddg::is_feasible_with`] computes from
//! scratch in O(V·E) per probe).
//!
//! Branch-and-bound searches re-run that probe at every tree node even
//! though a single decision changes only a handful of edge weights. This
//! module maintains the least fixpoint **incrementally**: a decision opens a
//! frame, raises the weights it commits to, and propagates relaxations only
//! from the changed edges outward; backtracking pops the frame, restoring
//! potentials and weights from a trail in O(work done) — O(1) per entry,
//! with nothing recomputed.
//!
//! Soundness rests on monotonicity: within the lifetime of the structure,
//! weights may only *increase* (decisions commit copies / fix residues,
//! never relax a constraint), so the stored potentials are always a lower
//! bound on the new least fixpoint and worklist relaxation from the changed
//! edges converges to it. A feasible system's potentials never exceed the
//! sum of its positive edge weights (a longest simple path uses each edge
//! at most once), so any potential pushed past that bound proves a positive
//! cycle. On failure the offending cycle is extracted (for conflict
//! learning) and the frame is rolled back automatically.

use crate::graph::Ddg;

/// One edge of the constraint system: `pot[to] − pot[from] ≥ weight`.
#[derive(Debug, Clone, Copy)]
struct CEdge {
    from: u32,
    to: u32,
    weight: i64,
}

/// Incremental longest-path maintainer for a difference-constraint system
/// with monotonically increasing integer edge weights.
///
/// ```text
/// let mut m = IncrementalFeasibility::new(n, edges);
/// assert!(m.root_feasible());
/// m.push_frame();
/// m.set_weight(e, w);                  // w ≥ current weight of e
/// if m.propagate() {
///     // descend; later:
///     m.pop_frame();                   // O(1) per trailed entry
/// } else {
///     // frame already rolled back; m.conflict_cycle() names a positive
///     // cycle of the rejected system
/// }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalFeasibility {
    n: usize,
    edges: Vec<CEdge>,
    /// Outgoing constraint-edge indices per node.
    out: Vec<Vec<u32>>,
    /// Least-fixpoint potentials of the current system (all ≥ 0).
    pot: Vec<i64>,
    /// Σ max(0, weight): cap above which a potential proves a positive cycle.
    bound: i64,
    /// Potential trail: (node, previous value), restored in reverse on pop.
    pot_trail: Vec<(u32, i64)>,
    /// Weight trail: (edge, previous value), restored in reverse on pop.
    weight_trail: Vec<(u32, i64)>,
    /// Frame marks: (pot_trail len, weight_trail len) at `push_frame`.
    frames: Vec<(usize, usize)>,
    /// Edges raised since the last `propagate`.
    dirty: Vec<u32>,
    /// Node worklist scratch for propagation.
    queue: Vec<u32>,
    in_queue: Vec<bool>,
    /// Edges of the positive cycle found by the last failed `propagate`.
    conflict: Vec<u32>,
    root_feasible: bool,
}

impl IncrementalFeasibility {
    /// Build the system over `n` nodes from `(from, to, weight)` constraints
    /// and solve it once from scratch. If the initial system already has a
    /// positive cycle, [`Self::root_feasible`] is `false` and every
    /// `propagate` fails (with the root cycle as conflict).
    pub fn new(n: usize, constraints: impl IntoIterator<Item = (u32, u32, i64)>) -> Self {
        let edges: Vec<CEdge> = constraints
            .into_iter()
            .map(|(from, to, weight)| {
                debug_assert!((from as usize) < n && (to as usize) < n);
                CEdge { from, to, weight }
            })
            .collect();
        let mut out = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            out[e.from as usize].push(i as u32);
        }
        let bound = edges.iter().map(|e| e.weight.max(0)).sum();
        let mut m = IncrementalFeasibility {
            n,
            edges,
            out,
            pot: vec![0; n],
            bound,
            pot_trail: Vec::new(),
            weight_trail: Vec::new(),
            frames: Vec::new(),
            dirty: Vec::new(),
            queue: Vec::new(),
            in_queue: vec![false; n],
            conflict: Vec::new(),
            root_feasible: true,
        };
        // Solve the root system: every edge is dirty, no frame to roll back.
        m.dirty.extend(0..m.edges.len() as u32);
        m.root_feasible = m.relax();
        if !m.root_feasible {
            m.conflict = m.find_positive_cycle();
        }
        m.pot_trail.clear(); // the root solution is the floor, never undone
        m
    }

    /// Build the adjusted-weight system of `ddg` at `ii` — edge weights
    /// `latency + extra(i) − II·distance`, indexed like `ddg.edges()` — and
    /// solve it. The result agrees with [`Ddg::is_feasible_adjusted`] and
    /// then tracks weight increases incrementally.
    pub fn for_ddg(ddg: &Ddg, ii: u32, extra: impl Fn(usize) -> i64) -> Self {
        let iil = ii as i64;
        Self::new(
            ddg.n_ops(),
            ddg.edges().iter().enumerate().map(|(i, e)| {
                let w = e.latency + extra(i) - iil * e.distance as i64;
                (e.from.index() as u32, e.to.index() as u32, w)
            }),
        )
    }

    /// Was the initial (pre-decision) system satisfiable?
    #[inline]
    pub fn root_feasible(&self) -> bool {
        self.root_feasible
    }

    /// Current weight of constraint `e`.
    #[inline]
    pub fn weight(&self, e: usize) -> i64 {
        self.edges[e].weight
    }

    /// The least-fixpoint potentials of the current system (valid only while
    /// the last `propagate` succeeded). `pot[v]` is the longest-path weight
    /// from the virtual source, ≥ 0.
    #[inline]
    pub fn potentials(&self) -> &[i64] {
        &self.pot
    }

    /// Edges (by constraint index) of the positive cycle that made the last
    /// `propagate` fail. Empty if none has failed.
    #[inline]
    pub fn conflict_cycle(&self) -> &[u32] {
        &self.conflict
    }

    /// Open a decision frame. Weight changes and potential updates until the
    /// matching `pop_frame` (or a failed `propagate`) are undone together.
    pub fn push_frame(&mut self) {
        self.frames
            .push((self.pot_trail.len(), self.weight_trail.len()));
    }

    /// Raise constraint `e` to `w` within the current frame. Monotone:
    /// `w` must be ≥ the current weight (equal is a no-op).
    pub fn set_weight(&mut self, e: usize, w: i64) {
        let old = self.edges[e].weight;
        debug_assert!(w >= old, "weights may only increase within a frame");
        if w == old {
            return;
        }
        debug_assert!(!self.frames.is_empty(), "set_weight outside a frame");
        self.weight_trail.push((e as u32, old));
        self.bound += w.max(0) - old.max(0);
        self.edges[e].weight = w;
        self.dirty.push(e as u32);
    }

    /// Re-establish the least fixpoint after the weight raises of this
    /// frame. `true`: the system is still satisfiable and `potentials()` is
    /// its least solution. `false`: a positive cycle exists — it is stored
    /// in [`Self::conflict_cycle`], and **the current frame has been rolled
    /// back and closed** (as if `pop_frame` ran).
    pub fn propagate(&mut self) -> bool {
        if !self.root_feasible {
            self.rollback_frame();
            return false;
        }
        if self.relax() {
            return true;
        }
        self.conflict = self.find_positive_cycle();
        self.rollback_frame();
        false
    }

    /// Undo the top frame: restore every potential and weight it changed.
    pub fn pop_frame(&mut self) {
        self.rollback_frame();
    }

    fn rollback_frame(&mut self) {
        let (pmark, wmark) = self.frames.pop().expect("no frame to pop");
        while self.pot_trail.len() > pmark {
            let (v, old) = self.pot_trail.pop().expect("trail underflow");
            self.pot[v as usize] = old;
        }
        while self.weight_trail.len() > wmark {
            let (e, old) = self.weight_trail.pop().expect("trail underflow");
            self.bound += old.max(0) - self.edges[e as usize].weight.max(0);
            self.edges[e as usize].weight = old;
        }
        self.dirty.clear();
    }

    /// Worklist relaxation from the dirty edges. `false` on positive cycle
    /// (potentials left mid-flight; caller rolls back).
    fn relax(&mut self) -> bool {
        debug_assert!(self.queue.is_empty());
        let mut qhead = 0usize;
        // Seed: relax each raised edge once; enqueue targets that moved.
        while let Some(ei) = self.dirty.pop() {
            let e = self.edges[ei as usize];
            let cand = self.pot[e.from as usize] + e.weight;
            if cand > self.pot[e.to as usize] {
                if cand > self.bound {
                    for &v in &self.queue {
                        self.in_queue[v as usize] = false;
                    }
                    self.queue.clear();
                    return false;
                }
                self.pot_trail.push((e.to, self.pot[e.to as usize]));
                self.pot[e.to as usize] = cand;
                if !self.in_queue[e.to as usize] {
                    self.in_queue[e.to as usize] = true;
                    self.queue.push(e.to);
                }
            }
        }
        while qhead < self.queue.len() {
            let u = self.queue[qhead] as usize;
            qhead += 1;
            self.in_queue[u] = false;
            let pu = self.pot[u];
            for i in 0..self.out[u].len() {
                let ei = self.out[u][i] as usize;
                let e = self.edges[ei];
                let cand = pu + e.weight;
                if cand > self.pot[e.to as usize] {
                    if cand > self.bound {
                        for &v in &self.queue[qhead..] {
                            self.in_queue[v as usize] = false;
                        }
                        self.queue.clear();
                        return false;
                    }
                    self.pot_trail.push((e.to, self.pot[e.to as usize]));
                    self.pot[e.to as usize] = cand;
                    if !self.in_queue[e.to as usize] {
                        self.in_queue[e.to as usize] = true;
                        self.queue.push(e.to);
                    }
                }
            }
        }
        self.queue.clear();
        true
    }

    /// Find one positive cycle of the *current* weights. Only called after a
    /// failed relaxation, so one exists: run a fresh Bellman–Ford with
    /// parent-edge tracking for n passes; any node still relaxing on the
    /// final pass sits on (or downstream of) a positive cycle, and walking n
    /// parents from it must land inside one. O(V·E), failure paths only.
    fn find_positive_cycle(&self) -> Vec<u32> {
        let n = self.n;
        let mut pot = vec![0i64; n];
        let mut parent = vec![u32::MAX; n];
        let mut last = None;
        for _pass in 0..=n {
            let mut changed = None;
            for (i, e) in self.edges.iter().enumerate() {
                let cand = pot[e.from as usize] + e.weight;
                if cand > pot[e.to as usize] {
                    pot[e.to as usize] = cand;
                    parent[e.to as usize] = i as u32;
                    changed = Some(e.to);
                }
            }
            last = changed;
            if changed.is_none() {
                break;
            }
        }
        let Some(mut v) = last else {
            return Vec::new(); // defensive: no cycle after all
        };
        // Walk n parent edges to guarantee we are on the cycle itself.
        for _ in 0..n {
            v = self.edges[parent[v as usize] as usize].from;
        }
        let start = v;
        let mut cycle = Vec::new();
        loop {
            let ei = parent[v as usize];
            cycle.push(ei);
            v = self.edges[ei as usize].from;
            if v == start {
                break;
            }
        }
        cycle.reverse();
        cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepEdge, DepKind};
    use vliw_ir::OpId;

    fn edge(from: u32, to: u32, lat: i64, dist: u32) -> DepEdge {
        DepEdge {
            from: OpId(from),
            to: OpId(to),
            latency: lat,
            distance: dist,
            kind: DepKind::Flow,
        }
    }

    #[test]
    fn matches_scratch_probe_at_root() {
        let mut g = Ddg::new(2);
        g.add_edge(edge(0, 1, 3, 0));
        g.add_edge(edge(1, 0, 2, 1));
        // RecII = 5.
        assert!(!IncrementalFeasibility::for_ddg(&g, 4, |_| 0).root_feasible());
        let m = IncrementalFeasibility::for_ddg(&g, 5, |_| 0);
        assert!(m.root_feasible());
        let mut s = Vec::new();
        assert!(g.is_feasible_with(5, &mut s));
        assert_eq!(m.potentials(), &s[..]);
    }

    #[test]
    fn raise_propagate_rollback_restores_exactly() {
        let mut g = Ddg::new(2);
        g.add_edge(edge(0, 1, 3, 0));
        g.add_edge(edge(1, 0, 2, 1));
        let mut m = IncrementalFeasibility::for_ddg(&g, 6, |_| 0);
        let before = m.potentials().to_vec();
        // +2 on the forward edge keeps the cycle ≤ 0 at II=6 (3+2+2−6=1>0 —
        // actually infeasible); +1 stays feasible (3+1+2−6=0).
        m.push_frame();
        m.set_weight(0, m.weight(0) + 1);
        assert!(m.propagate());
        m.pop_frame();
        assert_eq!(m.potentials(), &before[..]);
        m.push_frame();
        m.set_weight(0, m.weight(0) + 2);
        assert!(!m.propagate()); // frame auto-rolled-back
        assert_eq!(m.potentials(), &before[..]);
        assert!(!m.conflict_cycle().is_empty());
    }

    #[test]
    fn conflict_cycle_is_a_positive_cycle() {
        let mut g = Ddg::new(3);
        g.add_edge(edge(0, 1, 1, 0));
        g.add_edge(edge(1, 2, 1, 0));
        g.add_edge(edge(2, 0, 1, 1));
        let mut m = IncrementalFeasibility::for_ddg(&g, 3, |_| 0);
        assert!(m.root_feasible());
        m.push_frame();
        m.set_weight(0, 2); // cycle weight 2+1+1−3 = 1 > 0
        assert!(!m.propagate());
        let cyc = m.conflict_cycle().to_vec();
        assert!(!cyc.is_empty());
        // The named edges really form a cycle with positive raised weight.
        let total: i64 = cyc
            .iter()
            .map(|&i| {
                let e = g.edges()[i as usize];
                let raised = if i == 0 { 1 } else { 0 };
                e.latency + raised - 3 * e.distance as i64
            })
            .sum();
        assert!(total > 0, "cycle weight {total} not positive");
        for w in cyc.windows(2) {
            assert_eq!(g.edges()[w[0] as usize].to, g.edges()[w[1] as usize].from);
        }
        let (first, last) = (cyc[0], cyc[cyc.len() - 1]);
        assert_eq!(g.edges()[last as usize].to, g.edges()[first as usize].from);
    }

    #[test]
    fn agrees_with_adjusted_oracle_on_random_traces() {
        // Deterministic xorshift; no external randomness.
        let mut state = 0x9E37_79B9_u64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _case in 0..200 {
            let n = 2 + next(6) as usize;
            let mut g = Ddg::new(n);
            let n_edges = 1 + next(2 * n as u64) as usize;
            for _ in 0..n_edges {
                let from = next(n as u64) as u32;
                let to = next(n as u64) as u32;
                let dist = if to <= from {
                    1 + next(2) as u32
                } else {
                    next(2) as u32
                };
                g.add_edge(edge(from, to, 1 + next(4) as i64, dist));
            }
            let ii = 1 + next(8) as u32;
            let mut extra = vec![0i64; g.edges().len()];
            let mut s = Vec::new();
            let oracle_root = g.is_feasible_adjusted(ii, |_| 0, &mut s);
            let mut m = IncrementalFeasibility::for_ddg(&g, ii, |_| 0);
            assert_eq!(
                m.root_feasible(),
                oracle_root,
                "root mismatch n={n} ii={ii}"
            );
            if !oracle_root {
                continue;
            }
            // Random decide/rollback trace: each step raises a few extras in
            // a frame; half the successful frames are popped again.
            for _step in 0..12 {
                // Accumulate raises per edge so set_weight stays monotone.
                let mut raise = vec![0i64; extra.len()];
                for _ in 0..1 + next(3) {
                    raise[next(extra.len() as u64) as usize] += 1 + next(3) as i64;
                }
                let mut trial = extra.clone();
                m.push_frame();
                for (e, &by) in raise.iter().enumerate() {
                    if by == 0 {
                        continue;
                    }
                    trial[e] += by;
                    let ed = g.edges()[e];
                    m.set_weight(e, ed.latency + trial[e] - ii as i64 * ed.distance as i64);
                }
                let ok = g.is_feasible_adjusted(
                    ii,
                    |e| {
                        let idx = g
                            .edges()
                            .iter()
                            .position(|x| std::ptr::eq(x, e))
                            .expect("edge identity");
                        trial[idx]
                    },
                    &mut s,
                );
                assert_eq!(m.propagate(), ok, "trace mismatch n={n} ii={ii}");
                if ok {
                    if next(2) == 0 {
                        m.pop_frame();
                    } else {
                        extra = trial;
                    }
                    // Potentials must match the scratch solve exactly
                    // (both are the least fixpoint).
                    let mut fresh = Vec::new();
                    let extra_now = extra.clone();
                    assert!(g.is_feasible_adjusted(
                        ii,
                        |e| {
                            let idx = g
                                .edges()
                                .iter()
                                .position(|x| std::ptr::eq(x, e))
                                .expect("edge identity");
                            extra_now[idx]
                        },
                        &mut fresh
                    ));
                    assert_eq!(m.potentials(), &fresh[..], "potentials diverged");
                }
            }
        }
    }
}
