//! Lower bounds on the initiation interval: ResII, RecII, MinII.

use crate::graph::Ddg;
use vliw_ir::Loop;
use vliw_machine::MachineDesc;

/// Resource-constrained minimum II on `m` for the (unpartitioned) loop:
/// every operation needs one of the machine's general-purpose functional
/// units, so `ResII = ⌈n_ops / issue_width⌉`.
///
/// (Clustered resource bounds — per-cluster FU pressure, copy busses and
/// ports — are enforced by the modulo reservation table during scheduling,
/// not folded into this a-priori bound.)
pub fn res_ii(l: &Loop, m: &MachineDesc) -> u32 {
    let w = m.issue_width().max(1);
    l.n_ops().div_ceil(w).max(1) as u32
}

/// Recurrence-constrained minimum II: the smallest II such that the
/// dependence graph has no positive cycle under edge weights
/// `latency − II·distance`. Computed by binary search over II with the
/// O(V·E) Bellman–Ford feasibility test ([`Ddg::is_feasible_with`]);
/// monotonicity of feasibility in II makes the search exact. Total cost is
/// O(V·E·log Σlat) with a single O(V) scratch allocation — no n×n matrix
/// is ever materialised.
pub fn rec_ii(g: &Ddg) -> u32 {
    let mut scratch = Vec::new();
    // Upper bound: sum of all positive latencies is always feasible.
    let hi_bound: i64 = g.edges().iter().map(|e| e.latency.max(0)).sum::<i64>() + 1;
    let (mut lo, mut hi) = (1u32, hi_bound.max(1) as u32);
    if g.is_feasible_with(lo, &mut scratch) {
        return lo;
    }
    debug_assert!(
        g.is_feasible_with(hi, &mut scratch),
        "upper bound must be feasible"
    );
    // Invariant: lo infeasible, hi feasible.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if g.is_feasible_with(mid, &mut scratch) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Reference RecII via the dense Floyd–Warshall matrix — the original
/// O(n³·log Σlat) formulation. Kept as the oracle the property tests and
/// the perf baseline pin the fast [`rec_ii`] against; production callers
/// should never need it.
pub fn rec_ii_dense(g: &Ddg) -> u32 {
    let mut m = crate::graph::PathMatrix::new();
    let hi_bound: i64 = g.edges().iter().map(|e| e.latency.max(0)).sum::<i64>() + 1;
    let (mut lo, mut hi) = (1u32, hi_bound.max(1) as u32);
    if g.longest_paths_into(lo, &mut m) {
        return lo;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if g.longest_paths_into(mid, &mut m) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// `MinII = max(ResII, RecII)` — the starting point for iterative modulo
/// scheduling.
pub fn min_ii(l: &Loop, g: &Ddg, m: &MachineDesc) -> u32 {
    res_ii(l, m).max(rec_ii(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_ddg;
    use crate::graph::{DepEdge, DepKind};
    use vliw_ir::{LoopBuilder, OpId, RegClass};
    use vliw_machine::{LatencyTable, MachineDesc};

    #[test]
    fn res_ii_rounds_up() {
        let mut b = LoopBuilder::new("r");
        for _ in 0..17 {
            b.fconst_new(1.0);
        }
        let l = b.finish(1);
        let m = MachineDesc::monolithic(16);
        assert_eq!(res_ii(&l, &m), 2);
        let m4 = MachineDesc::monolithic(4);
        assert_eq!(res_ii(&l, &m4), 5);
    }

    #[test]
    fn rec_ii_of_acyclic_graph_is_1() {
        let mut g = Ddg::new(3);
        g.add_edge(DepEdge {
            from: OpId(0),
            to: OpId(1),
            latency: 12,
            distance: 0,
            kind: DepKind::Flow,
        });
        assert_eq!(rec_ii(&g), 1);
    }

    #[test]
    fn rec_ii_simple_cycle() {
        // latency 7 over distance 2 ⇒ RecII = ⌈7/2⌉ = 4.
        let mut g = Ddg::new(2);
        g.add_edge(DepEdge {
            from: OpId(0),
            to: OpId(1),
            latency: 5,
            distance: 0,
            kind: DepKind::Flow,
        });
        g.add_edge(DepEdge {
            from: OpId(1),
            to: OpId(0),
            latency: 2,
            distance: 2,
            kind: DepKind::Flow,
        });
        assert_eq!(rec_ii(&g), 4);
    }

    #[test]
    fn rec_ii_takes_worst_cycle() {
        let mut g = Ddg::new(4);
        // Cycle A: 3/1 ⇒ 3. Cycle B: 10/2 ⇒ 5.
        for (f, t, lat, d) in [(0, 1, 2, 0), (1, 0, 1, 1), (2, 3, 6, 0), (3, 2, 4, 2)] {
            g.add_edge(DepEdge {
                from: OpId(f),
                to: OpId(t),
                latency: lat,
                distance: d,
                kind: DepKind::Flow,
            });
        }
        assert_eq!(rec_ii(&g), 5);
        assert_eq!(rec_ii_dense(&g), 5);
    }

    #[test]
    fn first_order_recurrence_rec_ii_matches_hand_computation() {
        // s = a*s + x[i]: cycle fmul(2) → fadd(2) → fmul (dist 1) ⇒ RecII 4.
        let mut b = LoopBuilder::new("rec1");
        let x = b.array("x", RegClass::Float, 32);
        let a = b.live_in_float("a");
        let s = b.live_in_float_val("s", 0.0);
        let xv = b.load(x, 0, 1);
        let t = b.fmul(a, s);
        b.fadd_into(s, t, xv);
        b.live_out(s);
        let l = b.finish(32);
        let g = build_ddg(&l, &LatencyTable::paper());
        assert_eq!(rec_ii(&g), 4);
        let m = MachineDesc::monolithic(16);
        assert_eq!(min_ii(&l, &g, &m), 4);
    }
}
