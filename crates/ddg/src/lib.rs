//! # vliw-ddg — data dependence graphs for software pipelining
//!
//! Builds the data dependence graph (DDG, the paper's "DDD") of a
//! single-block innermost loop and provides the analyses modulo scheduling
//! needs:
//!
//! * dependence edges with **latency** and **iteration distance** (ω), for
//!   register flow, intra-iteration anti/output, and memory dependences
//!   derived from affine access metadata;
//! * **ResII** — the resource-constrained lower bound on the initiation
//!   interval;
//! * **RecII** — the recurrence-constrained lower bound, computed by binary
//!   search with an O(V·E) Bellman–Ford positive-cycle feasibility test
//!   ([`Ddg::is_feasible`]); the dense Floyd–Warshall all-pairs matrix
//!   ([`Ddg::longest_paths`]) survives only for callers that genuinely need
//!   every pair, backed by a reusable flat row-major [`PathMatrix`];
//! * **slack** (the paper's *Flexibility*, §5) — the difference between the
//!   earliest and latest cycle an operation can occupy without stretching the
//!   ideal schedule.
//!
//! Cross-iteration anti and output dependences on registers are deliberately
//! omitted: the downstream register allocator performs modulo variable
//! expansion (kernel unrolling with renaming), which removes them — the
//! standard assumption in Rau-style modulo scheduling.

#![warn(missing_docs)]

pub mod build;
pub mod graph;
pub mod incr;
pub mod minii;
pub mod slack;

pub use build::build_ddg;
pub use graph::{Ddg, DepEdge, DepKind, PathMatrix, NO_PATH};
pub use incr::IncrementalFeasibility;
pub use minii::{min_ii, rec_ii, rec_ii_dense, res_ii};
pub use slack::{compute_slack, critical_path_length, SlackInfo};
