//! Dependence-graph construction from a loop body.

use crate::graph::{Ddg, DepEdge, DepKind};
use vliw_machine::LatencyTable;

use vliw_ir::{Loop, OpId, Opcode, VReg};

/// Build the dependence graph of `l` under the latency table `lat`.
///
/// Register dependences follow the program-order semantics of the IR:
///
/// * a use whose latest def precedes it in the body depends on that def with
///   distance 0;
/// * a use with no preceding def but with a def later in the body reads the
///   previous iteration's (program-order-last) def — distance 1;
/// * intra-iteration anti and output dependences are added so the scheduler
///   never reorders a redefinition before a reader within one iteration;
///   their cross-iteration counterparts are resolved by modulo variable
///   expansion in the register allocator and are omitted, following Rau.
///
/// Memory dependences come from the affine access metadata: accesses to the
/// same array with equal strides yield an exact dependence distance; unequal
/// strides yield conservative distance-0/1 edges.
pub fn build_ddg(l: &Loop, lat: &LatencyTable) -> Ddg {
    let mut g = Ddg::new(l.n_ops());
    add_register_deps(l, lat, &mut g);
    add_memory_deps(l, lat, &mut g);
    g
}

fn add_register_deps(l: &Loop, lat: &LatencyTable, g: &mut Ddg) {
    for v in (0..l.n_vregs() as u32).map(VReg) {
        let defs = l.defs_of(v);
        let uses = l.uses_of(v);
        if defs.is_empty() {
            continue; // live-in invariant: no intra-loop producer.
        }
        let last_def = *defs.last().unwrap();

        for &u in &uses {
            // Latest def strictly before the use.
            let prev_def = defs.iter().copied().rfind(|d| d.index() < u.index());
            match prev_def {
                Some(d) => g.add_edge(DepEdge {
                    from: d,
                    to: u,
                    latency: lat.of(l.op(d).opcode) as i64,
                    distance: 0,
                    kind: DepKind::Flow,
                }),
                None => g.add_edge(DepEdge {
                    from: last_def,
                    to: u,
                    latency: lat.of(l.op(last_def).opcode) as i64,
                    distance: 1,
                    kind: DepKind::Flow,
                }),
            }
        }

        // Intra-iteration anti: each use must issue no later than the next
        // def of the same register (same-cycle is fine: reads happen at
        // issue, writes complete later).
        for &u in &uses {
            if let Some(next_def) = defs.iter().copied().find(|d| d.index() > u.index()) {
                g.add_edge(DepEdge {
                    from: u,
                    to: next_def,
                    latency: 0,
                    distance: 0,
                    kind: DepKind::Anti,
                });
            }
        }

        // Intra-iteration output deps between consecutive defs.
        for w in defs.windows(2) {
            g.add_edge(DepEdge {
                from: w[0],
                to: w[1],
                latency: 1,
                distance: 0,
                kind: DepKind::Output,
            });
        }
    }
}

fn add_memory_deps(l: &Loop, lat: &LatencyTable, g: &mut Ddg) {
    let mems: Vec<(OpId, vliw_ir::MemRef, bool)> = l
        .ops
        .iter()
        .filter_map(|o| o.mem.map(|m| (o.id, m, o.opcode == Opcode::Store)))
        .collect();

    for (ai, &(a, ma, a_store)) in mems.iter().enumerate() {
        for &(b, mb, b_store) in &mems[ai..] {
            if ma.array != mb.array || (!a_store && !b_store) {
                continue;
            }
            // Dependence from the earlier op (per program order within an
            // iteration) to the later, and the loop-carried directions.
            add_mem_pair(l, lat, g, (a, ma, a_store), (b, mb, b_store));
            if a != b {
                add_mem_pair(l, lat, g, (b, mb, b_store), (a, ma, a_store));
            }
        }
    }
}

/// Latency of a memory dependence edge from `from` to `to`.
fn mem_latency(lat: &LatencyTable, from_store: bool, to_store: bool) -> i64 {
    match (from_store, to_store) {
        // store → load: the load must issue after the store completes.
        (true, false) => lat.store as i64,
        // load → store (anti) and store → store (output): order only.
        _ => 1,
    }
}

/// Add the dependence (if any) from occurrence of `x` in iteration `i` to the
/// occurrence of `y` in iteration `i + d` that touches the same address.
fn add_mem_pair(
    _l: &Loop,
    lat: &LatencyTable,
    g: &mut Ddg,
    (x, mx, xs): (OpId, vliw_ir::MemRef, bool),
    (y, my, ys): (OpId, vliw_ir::MemRef, bool),
) {
    let latency = mem_latency(lat, xs, ys);
    if mx.stride == my.stride {
        let s = mx.stride;
        if s == 0 {
            // Same scalar cell every iteration.
            if mx.offset != my.offset {
                return;
            }
            if x.index() < y.index() {
                g.add_edge(DepEdge {
                    from: x,
                    to: y,
                    latency,
                    distance: 0,
                    kind: DepKind::Mem,
                });
            }
            // Loop-carried, distance 1 (covers all larger distances by
            // transitivity through consecutive iterations).
            g.add_edge(DepEdge {
                from: x,
                to: y,
                latency,
                distance: 1,
                kind: DepKind::Mem,
            });
            return;
        }
        // offset_x + i·s == offset_y + (i+d)·s  ⇒  d = (offset_x − offset_y)/s
        let num = mx.offset - my.offset;
        if num % s != 0 {
            return; // never the same address.
        }
        let d = num / s;
        if d < 0 || (d == 0 && x.index() >= y.index()) {
            return; // dependence goes the other way; handled symmetrically.
        }
        g.add_edge(DepEdge {
            from: x,
            to: y,
            latency,
            distance: d as u32,
            kind: DepKind::Mem,
        });
    } else {
        // Unequal strides: conservative same-iteration and next-iteration
        // dependences.
        if x.index() < y.index() {
            g.add_edge(DepEdge {
                from: x,
                to: y,
                latency,
                distance: 0,
                kind: DepKind::Mem,
            });
        }
        g.add_edge(DepEdge {
            from: x,
            to: y,
            latency,
            distance: 1,
            kind: DepKind::Mem,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{LoopBuilder, RegClass};

    fn lat() -> LatencyTable {
        LatencyTable::paper()
    }

    #[test]
    fn daxpy_has_no_recurrence() {
        let mut b = LoopBuilder::new("daxpy");
        let x = b.array("x", RegClass::Float, 64);
        let y = b.array("y", RegClass::Float, 64);
        let a = b.live_in_float("a");
        let xv = b.load(x, 0, 1);
        let yv = b.load(y, 0, 1);
        let p = b.fmul(a, xv);
        let s = b.fadd(yv, p);
        b.store(y, 0, 1, s);
        let l = b.finish(64);
        let g = build_ddg(&l, &lat());
        assert!(!g.has_recurrence());
        // load y → store y is a distance-0 mem anti dep; store y → load y is
        // impossible (same offset, would need d == 0 but store is later).
        assert!(g
            .edges()
            .iter()
            .any(|e| e.kind == DepKind::Mem && e.distance == 0));
    }

    #[test]
    fn reduction_has_distance_1_flow() {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", RegClass::Float, 64);
        let s = b.live_in_float_val("s", 0.0);
        let xv = b.load(x, 0, 1);
        b.fadd_into(s, s, xv); // s = s + x[i]
        b.live_out(s);
        let l = b.finish(64);
        let g = build_ddg(&l, &lat());
        assert!(g.has_recurrence());
        let carried: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| e.kind == DepKind::Flow && e.distance == 1)
            .collect();
        assert_eq!(carried.len(), 1);
        // The fadd feeds itself across iterations.
        assert_eq!(carried[0].from, carried[0].to);
        assert_eq!(carried[0].latency, lat().fp_other as i64);
    }

    #[test]
    fn stencil_store_to_load_distance() {
        // y[i] = y[i-2] style: load y[0+i], store y[2+i] ⇒ store in iter i
        // writes the cell load reads in iter i+2.
        let mut b = LoopBuilder::new("st");
        let y = b.array("y", RegClass::Float, 80);
        let v = b.load(y, 0, 1);
        let c = b.fconst_new(0.5);
        let m = b.fmul(v, c);
        b.store(y, 2, 1, m);
        let l = b.finish(64);
        let g = build_ddg(&l, &lat());
        let st_ld: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| e.kind == DepKind::Mem && e.from == OpId(3) && e.to == OpId(0))
            .collect();
        assert_eq!(st_ld.len(), 1);
        assert_eq!(st_ld[0].distance, 2);
        assert_eq!(st_ld[0].latency, lat().store as i64);
        assert!(g.has_recurrence());
    }

    #[test]
    fn disjoint_offsets_no_dep() {
        // load x[0+2i], store x[1+2i]: offsets differ by 1, stride 2 ⇒ no
        // common address ever.
        let mut b = LoopBuilder::new("dis");
        let x = b.array("x", RegClass::Float, 70);
        let v = b.load(x, 0, 2);
        b.store(x, 1, 2, v);
        let l = b.finish(32);
        let g = build_ddg(&l, &lat());
        assert!(g.edges().iter().all(|e| e.kind != DepKind::Mem));
    }

    #[test]
    fn scalar_cell_gets_carried_dep() {
        let mut b = LoopBuilder::new("scalar");
        let x = b.array("x", RegClass::Float, 4);
        let v = b.load(x, 0, 0);
        let c = b.fconst_new(2.0);
        let m = b.fmul(v, c);
        b.store(x, 0, 0, m);
        let l = b.finish(16);
        let g = build_ddg(&l, &lat());
        // store→load carried dep forces a recurrence.
        assert!(g.has_recurrence());
        assert!(g
            .edges()
            .iter()
            .any(|e| e.kind == DepKind::Mem && e.distance == 1));
    }

    #[test]
    fn anti_and_output_deps_within_iteration() {
        let mut b = LoopBuilder::new("ao");
        let t = b.fconst_new(1.0); // def t   (op0)
        let u = b.fadd(t, t); // use t   (op1)
        b.fconst(t, 2.0); // redef t (op2)
        let _ = b.fadd(t, u); // use both (op3)
        let l = b.finish(4);
        let g = build_ddg(&l, &lat());
        assert!(g
            .edges()
            .iter()
            .any(|e| e.kind == DepKind::Anti && e.from == OpId(1) && e.to == OpId(2)));
        assert!(g
            .edges()
            .iter()
            .any(|e| e.kind == DepKind::Output && e.from == OpId(0) && e.to == OpId(2)));
        // op3 must read the *new* t.
        assert!(g
            .edges()
            .iter()
            .any(|e| e.kind == DepKind::Flow && e.from == OpId(2) && e.to == OpId(3)));
    }

    #[test]
    fn use_before_def_reads_previous_iteration() {
        let mut b = LoopBuilder::new("ubd");
        let s = b.live_in_float("s");
        let t = b.fmul(s, s); // reads previous iteration's s (op0)
        b.fadd_into(s, t, t); // defines s                     (op1)
        b.live_out(s);
        let l = b.finish(4);
        let g = build_ddg(&l, &lat());
        let e: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| e.kind == DepKind::Flow && e.from == OpId(1) && e.to == OpId(0))
            .collect();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].distance, 1);
    }
}
