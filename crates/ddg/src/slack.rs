//! Slack analysis over the intra-iteration (distance-0) dependence subgraph.
//!
//! The paper's *Flexibility* heuristic (§5) is `slack + 1`, where slack is
//! "the difference between the earliest time a node could be scheduled …
//! and the latest time that the DDD node could be scheduled without
//! requiring a lengthening of the ideal schedule". We compute it on the
//! acyclic distance-0 subgraph with longest-path passes in both directions.

use crate::graph::Ddg;
use vliw_ir::OpId;

/// Per-operation earliest/latest start times and slack.
#[derive(Debug, Clone)]
pub struct SlackInfo {
    /// Earliest issue cycle consistent with distance-0 dependences.
    pub estart: Vec<i64>,
    /// Latest issue cycle that does not stretch the critical path.
    pub lstart: Vec<i64>,
    /// Critical-path length in cycles (issue of first op → completion of
    /// last, over distance-0 edges).
    pub length: i64,
}

impl SlackInfo {
    /// `lstart − estart` for `op`; 0 on the critical path.
    pub fn slack(&self, op: OpId) -> i64 {
        self.lstart[op.index()] - self.estart[op.index()]
    }

    /// The paper's Flexibility: `slack + 1` ("we add 1 … so that we avoid
    /// divide-by-zero errors").
    pub fn flexibility(&self, op: OpId) -> i64 {
        self.slack(op) + 1
    }

    /// Is `op` on a critical path?
    pub fn is_critical(&self, op: OpId) -> bool {
        self.slack(op) == 0
    }
}

/// Compute estart/lstart/slack over distance-0 edges of `g`.
///
/// Distance-0 edges always form a DAG (they point forward in program order
/// for graphs built by [`crate::build::build_ddg`]); a topological pass in
/// each direction yields longest paths.
pub fn compute_slack(g: &Ddg, latency_of: impl Fn(OpId) -> i64) -> SlackInfo {
    let n = g.n_ops();
    let mut estart = vec![0i64; n];

    // Forward pass in index order: builder guarantees distance-0 edges go
    // from lower to higher op index (program order), so index order is a
    // topological order of the distance-0 subgraph.
    for i in 0..n {
        let op = OpId(i as u32);
        for e in g.preds(op).filter(|e| e.distance == 0) {
            estart[i] = estart[i].max(estart[e.from.index()] + e.latency);
        }
    }
    let length = (0..n)
        .map(|i| estart[i] + latency_of(OpId(i as u32)))
        .max()
        .unwrap_or(0);

    let mut lstart = vec![0i64; n];
    for i in (0..n).rev() {
        let op = OpId(i as u32);
        let succ_bound = g
            .succs(op)
            .filter(|e| e.distance == 0)
            .map(|e| lstart[e.to.index()] - e.latency)
            .min();
        lstart[i] = succ_bound.unwrap_or(length - latency_of(op));
    }

    SlackInfo {
        estart,
        lstart,
        length,
    }
}

/// Critical-path length of the intra-iteration subgraph.
pub fn critical_path_length(g: &Ddg, latency_of: impl Fn(OpId) -> i64) -> i64 {
    compute_slack(g, latency_of).length
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepEdge, DepKind};

    fn chain_graph() -> Ddg {
        // 0 →(3) 1 →(2) 2, plus independent op 3.
        let mut g = Ddg::new(4);
        for (f, t, lat) in [(0u32, 1u32, 3i64), (1, 2, 2)] {
            g.add_edge(DepEdge {
                from: OpId(f),
                to: OpId(t),
                latency: lat,
                distance: 0,
                kind: DepKind::Flow,
            });
        }
        g
    }

    #[test]
    fn chain_slack_zero_on_critical_path() {
        let g = chain_graph();
        let lat = |op: OpId| if op.index() == 2 { 2 } else { 1 };
        let s = compute_slack(&g, lat);
        // estart: 0, 3, 5; length = 5 + 2 = 7.
        assert_eq!(s.estart, vec![0, 3, 5, 0]);
        assert_eq!(s.length, 7);
        assert!(s.is_critical(OpId(0)));
        assert!(s.is_critical(OpId(1)));
        assert!(s.is_critical(OpId(2)));
        // op3 floats: lstart = 7 − 1 = 6.
        assert_eq!(s.slack(OpId(3)), 6);
        assert_eq!(s.flexibility(OpId(3)), 7);
        assert_eq!(s.flexibility(OpId(0)), 1);
    }

    #[test]
    fn carried_edges_ignored() {
        let mut g = chain_graph();
        // Add a distance-1 back edge: must not affect slack.
        g.add_edge(DepEdge {
            from: OpId(2),
            to: OpId(0),
            latency: 100,
            distance: 1,
            kind: DepKind::Flow,
        });
        let s = compute_slack(&g, |_| 1);
        assert_eq!(s.estart[0], 0);
        assert!(s.length < 100);
    }

    #[test]
    fn diamond_slack() {
        // 0 → {1 (lat 5), 2 (lat 1)} → 3; op2 has slack 4.
        let mut g = Ddg::new(4);
        for (f, t, lat) in [(0u32, 1u32, 1i64), (0, 2, 1), (1, 3, 5), (2, 3, 1)] {
            g.add_edge(DepEdge {
                from: OpId(f),
                to: OpId(t),
                latency: lat,
                distance: 0,
                kind: DepKind::Flow,
            });
        }
        let s = compute_slack(&g, |_| 1);
        assert_eq!(s.slack(OpId(2)), 4);
        assert_eq!(s.slack(OpId(1)), 0);
        assert_eq!(s.slack(OpId(3)), 0);
    }
}
