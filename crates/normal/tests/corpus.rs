//! Corpus-scale validation of the canonicalizer: the acceptance criterion
//! for the alpha-equivalence engine.
//!
//! Over the full loopgen corpus and hundreds of generated isomorphic
//! variants (register renaming, commutative swap, legal statement
//! permutation):
//!
//! * canonical hashes collide exactly within equivalence classes and never
//!   across them (any same-hash pair must be provably alpha-equivalent);
//! * canonicalization is idempotent;
//! * the normal form is semantics-preserving under the `vliw-sim`
//!   reference interpreter, with live-outs compared through the witness;
//! * perturbed (genuinely different) loops never collide with their
//!   originals.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::BTreeMap;
use vliw_ir::{verify_loop, Loop, VReg};
use vliw_normal::{
    alpha_equivalent, canonicalize, check_witness, perturb, structural_hash, variant,
};
use vliw_sim::reference::run_reference;

fn corpus() -> Vec<Loop> {
    vliw_loopgen::corpus()
}

/// Reference-run `l` and its canonical form; compare memory directly
/// (array order is preserved) and live-outs through the witness renaming.
fn assert_semantics_preserved(l: &Loop) {
    let c = canonicalize(l);
    verify_loop(&c.body).unwrap_or_else(|e| panic!("{}: canonical body invalid: {e}", l.name));
    let orig = run_reference(l);
    let canon = run_reference(&c.body);
    assert_eq!(orig.memory.len(), canon.memory.len(), "{}", l.name);
    for (k, (a, b)) in orig.memory.iter().zip(&canon.memory).enumerate() {
        assert_eq!(a.len(), b.len(), "{}: array {k} length", l.name);
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(x.bits_eq(*y), "{}: array {k}[{i}]: {x:?} vs {y:?}", l.name);
        }
    }
    for (p, &v) in l.live_out.iter().enumerate() {
        let cv = VReg(c.witness.vreg_to_canon[v.index()]);
        let cp = c
            .body
            .live_out
            .iter()
            .position(|&r| r == cv)
            .unwrap_or_else(|| panic!("{}: live-out {v:?} missing from canonical form", l.name));
        assert!(
            orig.live_out[p].bits_eq(canon.live_out[cp]),
            "{}: live-out {v:?} differs",
            l.name
        );
    }
}

#[test]
fn corpus_canonicalizes_idempotently_and_semantics_hold() {
    for l in corpus() {
        let c = canonicalize(&l);
        let again = canonicalize(&c.body);
        assert_eq!(
            c.body, again.body,
            "{}: canonicalize is not a projection",
            l.name
        );
        assert_eq!(c.hash, again.hash, "{}", l.name);
        assert_semantics_preserved(&l);
    }
}

/// ≥200 isomorphic variants across the corpus: every variant must land on
/// its original's hash, and any cross-loop hash collision must be a real
/// equivalence (checked by witness, both directions).
#[test]
fn variant_corpus_hashes_collide_exactly_within_classes() {
    let loops = corpus();
    let mut by_hash: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut n_variants = 0usize;
    for (idx, l) in loops.iter().enumerate() {
        let h = structural_hash(l);
        by_hash.entry(h.hex()).or_default().push(idx);
        for seed in 0..3u64 {
            let v = variant(l, seed.wrapping_add(idx as u64 * 31));
            verify_loop(&v).unwrap_or_else(|e| panic!("{}: variant invalid: {e}", l.name));
            assert_eq!(
                structural_hash(&v),
                h,
                "{}: variant seed {seed} changed the canonical hash",
                l.name
            );
            n_variants += 1;
        }
    }
    assert!(
        n_variants >= 200,
        "acceptance requires ≥200 variants, generated {n_variants}"
    );
    // Cross-class soundness: same hash ⇒ provable equivalence with a
    // checkable witness.
    for indices in by_hash.values().filter(|v| v.len() > 1) {
        for w in indices.windows(2) {
            let (a, b) = (&loops[w[0]], &loops[w[1]]);
            let wit = alpha_equivalent(a, b).unwrap_or_else(|| {
                panic!(
                    "hash collision between non-equivalent {} and {}",
                    a.name, b.name
                )
            });
            check_witness(a, b, &wit)
                .unwrap_or_else(|e| panic!("{} ≅ {}: bad witness: {e}", a.name, b.name));
        }
    }
}

#[test]
fn perturbed_loops_never_collide_with_their_original() {
    for (idx, l) in corpus().iter().enumerate() {
        let Some(p) = perturb(l, idx as u64) else {
            continue;
        };
        assert_ne!(
            structural_hash(&p),
            structural_hash(l),
            "{}: perturbation must change the hash",
            l.name
        );
        assert!(alpha_equivalent(l, &p).is_none(), "{}", l.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random seeds over a rotating corpus slice: variants keep the hash,
    /// canonical forms match exactly, and variant semantics survive the
    /// round trip through the normal form.
    #[test]
    fn random_variants_share_the_canonical_form(seed in 0u64..1_000_000, pick in 0usize..1_000) {
        let loops = corpus();
        let l = &loops[pick % loops.len()];
        let v = variant(l, seed);
        let cl = canonicalize(l);
        let cv = canonicalize(&v);
        prop_assert_eq!(&cl.body, &cv.body);
        prop_assert_eq!(cl.hash, cv.hash);
        let wit = alpha_equivalent(l, &v)
            .ok_or_else(|| TestCaseError::fail(format!("{}: variant not equivalent", l.name)))?;
        check_witness(l, &v, &wit)
            .map_err(|e| TestCaseError::fail(format!("{}: {e}", l.name)))?;
        assert_semantics_preserved(&v);
    }
}
