//! Deterministic isomorphic-variant generators.
//!
//! Each generator applies one semantics-invisible transformation with a
//! seeded xorshift PRNG, so the same `(loop, seed)` pair always yields the
//! same variant. They are the adversaries the canonicalizer is tested
//! against: `canonicalize(variant(l, seed))` must equal `canonicalize(l)`
//! for every seed, and [`perturb`] produces a *non*-equivalent mutation for
//! the negative direction.

use crate::canon::{constraint_graph, is_commutative};
use vliw_ir::{InitVal, Loop, OpId, Opcode, VReg};

/// Small deterministic PRNG (xorshift64*), seeded per call site.
pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn new(seed: u64) -> Rng {
        // Avoid the all-zero fixed point.
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    pub(crate) fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn shuffle<T>(items: &mut [T], rng: &mut Rng) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.below(i + 1));
    }
}

/// Apply a random permutation to the virtual-register numbering (classes,
/// operands and liveness move with their registers) and shuffle the
/// live-in/live-out list orders, which are presentational.
pub fn rename_vregs(l: &Loop, seed: u64) -> Loop {
    let mut rng = Rng::new(seed ^ 0x7265_6e61);
    let n = l.n_vregs();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    shuffle(&mut perm, &mut rng);
    let map = |v: VReg| VReg(perm[v.index()]);

    let mut out = l.clone();
    out.vreg_classes = vec![vliw_ir::RegClass::Int; n];
    for (orig, &new) in perm.iter().enumerate() {
        out.vreg_classes[new as usize] = l.vreg_classes[orig];
    }
    for op in &mut out.ops {
        op.def = op.def.map(map);
        for u in &mut op.uses {
            *u = map(*u);
        }
    }
    let mut live_in: Vec<(VReg, InitVal)> = l
        .live_in
        .iter()
        .zip(&l.live_in_vals)
        .map(|(&v, &init)| (map(v), init))
        .collect();
    shuffle(&mut live_in, &mut rng);
    out.live_in = live_in.iter().map(|&(v, _)| v).collect();
    out.live_in_vals = live_in.iter().map(|&(_, init)| init).collect();
    out.live_out = l.live_out.iter().map(|&v| map(v)).collect();
    shuffle(&mut out.live_out, &mut rng);
    out
}

/// Rename the loop and its arrays (names only — array order is semantic and
/// untouched).
pub fn rename_arrays(l: &Loop, seed: u64) -> Loop {
    let mut out = l.clone();
    out.name = format!("variant_{seed:x}");
    for (k, a) in out.arrays.iter_mut().enumerate() {
        a.name = format!("arr{k}_{seed:x}");
    }
    out
}

/// Swap the operands of each commutative operation with probability ½.
pub fn swap_commutative(l: &Loop, seed: u64) -> Loop {
    let mut rng = Rng::new(seed ^ 0x7377_6170);
    let mut out = l.clone();
    for op in &mut out.ops {
        if is_commutative(op) && rng.flip() {
            op.uses.swap(0, 1);
        }
    }
    out
}

/// Reorder the body along a random *legal* topological order of the
/// order-constraint graph (dependence-respecting statement permutation),
/// renumbering op ids densely.
pub fn permute_statements(l: &Loop, seed: u64) -> Loop {
    let mut rng = Rng::new(seed ^ 0x7065_726d);
    let (preds, _) = constraint_graph(l);
    let n = l.ops.len();
    let mut remaining = vec![true; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let ready: Vec<usize> = (0..n)
            .filter(|&i| remaining[i] && preds[i].iter().all(|&p| !remaining[p]))
            .collect();
        let pick = ready[rng.below(ready.len())];
        remaining[pick] = false;
        order.push(pick);
    }
    let mut out = l.clone();
    out.ops = order
        .iter()
        .enumerate()
        .map(|(p, &i)| {
            let mut op = l.ops[i].clone();
            op.id = OpId(p as u32);
            op
        })
        .collect();
    out
}

/// Compose every invisible transformation: rename registers and names,
/// swap commutative operands, permute statements.
pub fn variant(l: &Loop, seed: u64) -> Loop {
    let renamed = rename_vregs(l, seed);
    let renamed = rename_arrays(&renamed, seed);
    let swapped = swap_commutative(&renamed, seed.wrapping_add(1));
    permute_statements(&swapped, seed.wrapping_add(2))
}

/// A deliberately *non*-equivalent mutation of `l`, for negative tests:
/// nudges one semantic attribute (an immediate, a memory offset, the trip
/// count, or an ALU kind) chosen by the seed. Returns `None` for bodies
/// with nothing safely mutable.
pub fn perturb(l: &Loop, seed: u64) -> Option<Loop> {
    let mut rng = Rng::new(seed ^ 0x6d75_7461);
    let mut out = l.clone();
    // Candidate mutations, tried in a seed-dependent rotation.
    let mut kinds: Vec<u32> = (0..4).collect();
    shuffle(&mut kinds, &mut rng);
    for kind in kinds {
        match kind {
            0 => {
                // Flip an ALU add to sub: changes the computed value.
                if let Some(op) = out.ops.iter_mut().find(|o| {
                    matches!(o.opcode, Opcode::IntAlu | Opcode::FAlu)
                        && matches!(o.alu, vliw_ir::AluKind::Add)
                        && o.uses.len() == 2
                }) {
                    op.alu = vliw_ir::AluKind::Sub;
                    return Some(out);
                }
            }
            1 => {
                // Perturb a load-immediate payload.
                if let Some(op) = out
                    .ops
                    .iter_mut()
                    .find(|o| matches!(o.opcode, Opcode::LoadImmInt))
                {
                    op.imm = Some(op.imm.unwrap_or(0) + 1);
                    return Some(out);
                }
                if let Some(op) = out
                    .ops
                    .iter_mut()
                    .find(|o| matches!(o.opcode, Opcode::LoadImmFloat))
                {
                    let f = f64::from_bits(op.fimm_bits.unwrap_or(0)) + 1.0;
                    op.fimm_bits = Some(f.to_bits());
                    return Some(out);
                }
            }
            2 => {
                // Change a live-in initial value.
                if !out.live_in_vals.is_empty() {
                    let i = rng.below(out.live_in_vals.len());
                    out.live_in_vals[i] = match out.live_in_vals[i] {
                        InitVal::Int(v) => InitVal::Int(v + 1),
                        InitVal::Float(b) => InitVal::float(f64::from_bits(b) + 1.0),
                    };
                    return Some(out);
                }
            }
            _ => {
                // Trip count is always mutable (observable through memory
                // and live-out state whenever the body does anything).
                if !out.ops.is_empty() {
                    out.trip_count += 1;
                    return Some(out);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::{alpha_equivalent, canonicalize, structural_hash};
    use vliw_ir::{verify_loop, LoopBuilder, RegClass};

    fn sample() -> Loop {
        let mut b = LoopBuilder::new("sample");
        let x = b.array("x", RegClass::Float, 16);
        let y = b.array("y", RegClass::Float, 16);
        let s = b.live_in_float_val("s", 0.25);
        let xv = b.load(x, 0, 1);
        let yv = b.load(y, 0, 1);
        let p = b.fmul(xv, yv);
        b.fadd_into(s, s, p);
        b.store(y, 0, 1, p);
        b.live_out(s);
        b.finish(8)
    }

    #[test]
    fn variants_verify_and_stay_equivalent() {
        let l = sample();
        let h = structural_hash(&l);
        for seed in 0..24u64 {
            let v = variant(&l, seed);
            verify_loop(&v).expect("variant verifies");
            assert_eq!(structural_hash(&v), h, "seed {seed}");
            assert!(alpha_equivalent(&l, &v).is_some(), "seed {seed}");
        }
    }

    #[test]
    fn variants_are_deterministic() {
        let l = sample();
        assert_eq!(variant(&l, 7), variant(&l, 7));
    }

    #[test]
    fn perturbation_breaks_equivalence() {
        let l = sample();
        for seed in 0..8u64 {
            let p = perturb(&l, seed).expect("sample is mutable");
            assert_ne!(
                structural_hash(&p),
                structural_hash(&l),
                "seed {seed} perturbation must change the hash"
            );
            assert!(alpha_equivalent(&l, &p).is_none());
        }
    }

    #[test]
    fn statement_permutation_preserves_canonical_form() {
        let l = sample();
        let c = canonicalize(&l);
        for seed in 0..8u64 {
            let p = permute_statements(&l, seed);
            assert_eq!(canonicalize(&p).body, c.body);
        }
    }
}
