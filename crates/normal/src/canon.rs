//! The canonicalization pass: alpha-normal form, witness, equivalence.
//!
//! ## Algorithm
//!
//! 1. **Constraint graph.** For each ordered pair `i < j` of body
//!    operations, an edge `i → j` is added when swapping them could change
//!    semantics: they touch a common register in a def/def, def/use or
//!    use/def pair, or both touch the same array and at least one is a
//!    store. Any permutation of the body that preserves the relative order
//!    of every constrained pair executes identically under the reference
//!    interpreter (each use still reads the same reaching def, each array
//!    cell still sees the same store sequence).
//! 2. **Flow resolution.** Every use slot is resolved to its reaching
//!    source: the last def of that register before the op (distance 0), the
//!    last def in the whole body (distance 1 — the previous iteration's
//!    value, with the live-in/zero value on iteration 0), or the live-in
//!    (or default-zero) value when the body never defines it.
//! 3. **Colour refinement** (Weisfeiler–Leman style). Operations and
//!    registers get initial colours from their isomorphism-invariant
//!    attributes (opcode, immediates, memory metadata with its *semantic*
//!    array index, register class, initial values, liveness), then rounds
//!    of refinement mix in reaching-def sources, constraint-graph
//!    neighbourhood colours and def/use contexts until the partition stops
//!    splitting. Commutative operand pairs are mixed order-insensitively.
//! 4. **Canonical order.** A greedy topological order of the constraint
//!    graph: among ready operations, pick the one with the smallest
//!    (colour rank, emitted-predecessor positions, original index) key.
//! 5. **Normalisation.** Commutative operands are sorted by their resolved
//!    flow (feeding op's canonical position, distance, initial value,
//!    colour); virtual registers are renamed densely in first-mention order
//!    over the canonical trace; array names become positional (`a0`, `a1`,
//!    … — array *order* is semantic and preserved); the loop name becomes
//!    [`CANONICAL_LOOP_NAME`]; live-in/live-out lists are sorted by
//!    canonical register id; the unused `alu` field of non-ALU opcodes is
//!    reset to the parser's default.
//! 6. **Hash.** A Merkle-style fold of per-section leaf hashes of the
//!    normal form (header, arrays, register classes, live-ins, one leaf per
//!    operation, live-outs).
//!
//! Ties broken by original index are harmless when the tied entities are
//! automorphic images of each other (either choice yields the same normal
//! form) and cost only a missed equivalence otherwise — never a false
//! positive, since [`alpha_equivalent`] compares whole normal forms.

use crate::hash::{Hasher128, StructuralHash};
use std::collections::BTreeMap;
use vliw_ir::{AluKind, ArrayInfo, InitVal, Loop, OpId, Opcode, Operation, VReg};

/// Name given to every canonical loop body (the original name lives in the
/// witness).
pub const CANONICAL_LOOP_NAME: &str = "canon";

/// The renaming that maps a loop onto its normal form and back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The original loop's name.
    pub original_name: String,
    /// `vreg_to_canon[v]` is the canonical id of original register `v`.
    pub vreg_to_canon: Vec<u32>,
    /// `vreg_from_canon[c]` is the original register behind canonical `c`.
    pub vreg_from_canon: Vec<u32>,
    /// `op_to_canon[i]` is the canonical position of original op `i`.
    pub op_to_canon: Vec<u32>,
    /// `op_from_canon[p]` is the original index of canonical position `p`.
    pub op_from_canon: Vec<u32>,
    /// Original array names, index-aligned (array order is semantic, so the
    /// index map is the identity and only names are rewritten).
    pub array_names: Vec<String>,
}

/// A loop's normal form: the rewritten body, the witness renaming and the
/// structural hash of the body.
#[derive(Debug, Clone, PartialEq)]
pub struct Canonical {
    /// The alpha-normal body (passes `verify_loop`).
    pub body: Loop,
    /// Maps between the original and the normal form.
    pub witness: Witness,
    /// Merkle-style hash of `body`; equal for alpha-equivalent loops that
    /// canonicalize identically.
    pub hash: StructuralHash,
}

/// A witness that two loops are alpha-equivalent: maps from the first onto
/// the second.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivWitness {
    /// `vreg_map[v]` is the register of the second loop matching `v`.
    pub vreg_map: Vec<u32>,
    /// `op_map[i]` is the op index of the second loop matching op `i`.
    pub op_map: Vec<u32>,
}

/// Is this operation commutative in its two register operands? Mirrors
/// `vliw_sim::value::eval_op`: `fmul`/`imul` always, `falu`/`ialu` for the
/// `+` and `*` kinds in two-register form. The one-register immediate form
/// of `ialu` is *not* swappable.
pub fn is_commutative(op: &Operation) -> bool {
    if op.uses.len() != 2 {
        return false;
    }
    match op.opcode {
        Opcode::IntMul | Opcode::FMul => true,
        Opcode::IntAlu | Opcode::FAlu => matches!(op.alu, AluKind::Add | AluKind::Mul),
        _ => false,
    }
}

/// The parser's default `alu` kind for opcodes that never consult it, so
/// the normal form round-trips through the text format unchanged.
fn canonical_alu(op: &Operation) -> AluKind {
    match op.opcode {
        Opcode::IntAlu | Opcode::FAlu => op.alu,
        Opcode::IntMul | Opcode::FMul => AluKind::Mul,
        Opcode::IntDiv | Opcode::FDiv => AluKind::Div,
        _ => AluKind::Add,
    }
}

/// Could swapping `a` and `b` change the loop's semantics?
fn conflicts(a: &Operation, b: &Operation) -> bool {
    if let Some(d) = a.def {
        if b.defines(d) || b.uses_reg(d) {
            return true;
        }
    }
    if let Some(d) = b.def {
        if a.uses_reg(d) {
            return true;
        }
    }
    if let (Some(ma), Some(mb)) = (a.mem, b.mem) {
        if ma.array == mb.array && (a.opcode == Opcode::Store || b.opcode == Opcode::Store) {
            return true;
        }
    }
    false
}

/// Order-constraint graph over the body: `preds[j]` lists every `i < j`
/// whose relative order with `j` is semantically meaningful.
pub(crate) fn constraint_graph(l: &Loop) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let n = l.ops.len();
    let mut preds = vec![Vec::new(); n];
    let mut succs = vec![Vec::new(); n];
    #[allow(clippy::needless_range_loop)] // indexes two vecs symmetrically
    for j in 0..n {
        for i in 0..j {
            if conflicts(&l.ops[i], &l.ops[j]) {
                preds[j].push(i);
                succs[i].push(j);
            }
        }
    }
    (preds, succs)
}

/// Where one use slot gets its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    /// Fed by the def at original op index `src`; `dist` 0 for the same
    /// iteration, 1 for the previous (use textually precedes every def).
    Def { src: usize, dist: u32 },
    /// Never defined in the body: reads the live-in (or default-zero)
    /// value every iteration.
    LiveIn,
}

/// The register's iteration-0 / live-in value as a mixable word.
fn init_word(l: &Loop, v: VReg) -> u64 {
    match l.live_in.iter().position(|&r| r == v) {
        Some(p) => match l.live_in_vals[p] {
            InitVal::Int(i) => Hasher128::combine(&[2, i as u64]),
            InitVal::Float(b) => Hasher128::combine(&[3, b]),
        },
        None => Hasher128::combine(&[1]),
    }
}

/// Resolve every use slot of every op to its reaching source.
pub(crate) fn resolve_flows(l: &Loop) -> Vec<Vec<Flow>> {
    let mut defs: Vec<Vec<usize>> = vec![Vec::new(); l.n_vregs()];
    for (i, op) in l.ops.iter().enumerate() {
        if let Some(d) = op.def {
            defs[d.index()].push(i);
        }
    }
    l.ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            op.uses
                .iter()
                .map(|u| {
                    let ds = &defs[u.index()];
                    match ds.iter().rev().find(|&&d| d < i) {
                        Some(&d) => Flow::Def { src: d, dist: 0 },
                        None => match ds.last() {
                            Some(&d) => Flow::Def { src: d, dist: 1 },
                            None => Flow::LiveIn,
                        },
                    }
                })
                .collect()
        })
        .collect()
}

/// Map each colour to its rank among the distinct colours present. Ranks
/// are isomorphism-invariant: isomorphic loops produce the same colour
/// multiset, hence the same sorted order.
fn ranks(colors: &[u64]) -> (Vec<u64>, usize) {
    let mut distinct: Vec<u64> = colors.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let index: BTreeMap<u64, u64> = distinct
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i as u64))
        .collect();
    (colors.iter().map(|c| index[c]).collect(), distinct.len())
}

/// Colour refinement until the (op ∪ reg) partition stops splitting.
/// Returns final op and reg colour ranks.
fn refine(
    l: &Loop,
    preds: &[Vec<usize>],
    succs: &[Vec<usize>],
    flows: &[Vec<Flow>],
) -> (Vec<u64>, Vec<u64>) {
    let n_ops = l.ops.len();
    let n_regs = l.n_vregs();

    let mut op_c: Vec<u64> = l
        .ops
        .iter()
        .map(|op| {
            let mem = match op.mem {
                Some(m) => {
                    Hasher128::combine(&[5, m.array.0 as u64, m.offset as u64, m.stride as u64])
                }
                None => 4,
            };
            Hasher128::combine(&[
                11,
                op.opcode as u64,
                canonical_alu(op) as u64,
                op.imm
                    .map(|i| Hasher128::combine(&[6, i as u64]))
                    .unwrap_or(7),
                op.fimm_bits
                    .map(|b| Hasher128::combine(&[8, b]))
                    .unwrap_or(9),
                mem,
                op.uses.len() as u64,
                op.def.is_some() as u64,
            ])
        })
        .collect();
    let mut reg_c: Vec<u64> = (0..n_regs)
        .map(|v| {
            let v = VReg(v as u32);
            Hasher128::combine(&[
                12,
                l.class_of(v) as u64,
                init_word(l, v),
                l.live_out.contains(&v) as u64,
            ])
        })
        .collect();

    let mut prev_count = 0usize;
    for _ in 0..(n_ops + n_regs + 2) {
        let (op_r, n1) = ranks(&op_c);
        let (reg_r, n2) = ranks(&reg_c);
        if n1 + n2 == prev_count {
            return (op_r, reg_r);
        }
        prev_count = n1 + n2;

        let use_sig = |i: usize, s: usize, v: VReg| -> u64 {
            match flows[i][s] {
                Flow::Def { src, dist } => Hasher128::combine(&[
                    21,
                    op_r[src],
                    dist as u64,
                    if dist == 1 { init_word(l, v) } else { 0 },
                    reg_r[v.index()],
                ]),
                Flow::LiveIn => Hasher128::combine(&[22, init_word(l, v), reg_r[v.index()]]),
            }
        };

        let op_next: Vec<u64> = l
            .ops
            .iter()
            .enumerate()
            .map(|(i, op)| {
                let mut ws = vec![31, op_r[i]];
                ws.push(op.def.map(|d| 1 + reg_r[d.index()]).unwrap_or(0));
                let mut sigs: Vec<u64> = op
                    .uses
                    .iter()
                    .enumerate()
                    .map(|(s, &v)| use_sig(i, s, v))
                    .collect();
                if is_commutative(op) {
                    sigs.sort_unstable();
                }
                ws.extend(sigs);
                for group in [&preds[i], &succs[i]] {
                    let mut ns: Vec<u64> = group.iter().map(|&k| op_r[k]).collect();
                    ns.sort_unstable();
                    ws.push(Hasher128::combine(&ns));
                }
                Hasher128::combine(&ws)
            })
            .collect();

        let mut touches: Vec<Vec<u64>> = vec![Vec::new(); n_regs];
        for (i, op) in l.ops.iter().enumerate() {
            if let Some(d) = op.def {
                touches[d.index()].push(Hasher128::combine(&[41, op_r[i]]));
            }
            let commutative = is_commutative(op);
            for (s, &v) in op.uses.iter().enumerate() {
                let role = if commutative { 42 } else { 43 + s as u64 };
                touches[v.index()].push(Hasher128::combine(&[role, op_r[i]]));
            }
        }
        let reg_next: Vec<u64> = (0..n_regs)
            .map(|v| {
                let mut ts = std::mem::take(&mut touches[v]);
                ts.sort_unstable();
                ts.insert(0, reg_r[v]);
                ts.insert(0, 51);
                Hasher128::combine(&ts)
            })
            .collect();

        op_c = op_next;
        reg_c = reg_next;
    }
    let (op_r, _) = ranks(&op_c);
    let (reg_r, _) = ranks(&reg_c);
    (op_r, reg_r)
}

/// Greedy canonical topological order of the constraint graph. Returns the
/// original index at each canonical position.
fn canonical_order(l: &Loop, preds: &[Vec<usize>], op_rank: &[u64]) -> Vec<usize> {
    let n = l.ops.len();
    let mut remaining: Vec<bool> = vec![true; n];
    let mut pos: Vec<usize> = vec![usize::MAX; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let mut best: Option<(u64, Vec<usize>, usize)> = None;
        for i in 0..n {
            if !remaining[i] || preds[i].iter().any(|&p| remaining[p]) {
                continue;
            }
            let mut pred_pos: Vec<usize> = preds[i].iter().map(|&p| pos[p]).collect();
            pred_pos.sort_unstable();
            let key = (op_rank[i], pred_pos, i);
            if best.as_ref().map(|b| key < *b).unwrap_or(true) {
                best = Some(key);
            }
        }
        let (_, _, i) = best.expect("constraint graph is acyclic (edges only run forward)");
        remaining[i] = false;
        pos[i] = order.len();
        order.push(i);
    }
    order
}

/// Sort key for one use slot of a commutative op, computed once the full
/// canonical order is fixed (every feeder's canonical position is known).
fn use_key(
    l: &Loop,
    flow: Flow,
    v: VReg,
    op_pos: &[usize],
    reg_rank: &[u64],
) -> (u64, u64, u64, u64, u64, u64) {
    match flow {
        Flow::Def { src, dist } => (
            0,
            op_pos[src] as u64,
            dist as u64,
            if dist == 1 { init_word(l, v) } else { 0 },
            reg_rank[v.index()],
            v.0 as u64,
        ),
        Flow::LiveIn => (1, 0, 0, init_word(l, v), reg_rank[v.index()], v.0 as u64),
    }
}

/// Merkle-style structural hash of an (already canonical) body. Names are
/// excluded — the normal form's names are positional by construction.
fn hash_canonical_body(l: &Loop) -> StructuralHash {
    let mut header = Hasher128::new(0x6865_6164); // "head"
    header
        .word(l.trip_count as u64)
        .word(l.nesting_depth as u64)
        .word(l.ops.len() as u64)
        .word(l.n_vregs() as u64)
        .word(l.arrays.len() as u64);

    let mut arrays = Hasher128::new(0x61_72_72_73); // "arrs"
    for a in &l.arrays {
        arrays.word(a.class as u64).word(a.len as u64);
    }

    let mut regs = Hasher128::new(0x72_65_67_73); // "regs"
    for &c in &l.vreg_classes {
        regs.word(c as u64);
    }

    let mut live_in = Hasher128::new(0x6c_69_76_69); // "livi"
    for (&v, &init) in l.live_in.iter().zip(&l.live_in_vals) {
        live_in.word(v.0 as u64);
        match init {
            InitVal::Int(i) => live_in.word(2).iword(i),
            InitVal::Float(b) => live_in.word(3).word(b),
        };
    }

    let mut ops = Hasher128::new(0x6f_70_73_21); // "ops!"
    for op in &l.ops {
        let mut leaf = Hasher128::new(0x6f_70_00_00 | op.id.0 as u64);
        leaf.word(op.opcode as u64).word(canonical_alu(op) as u64);
        leaf.word(op.def.map(|d| 1 + d.0 as u64).unwrap_or(0));
        leaf.word(op.uses.len() as u64);
        for &u in &op.uses {
            leaf.word(u.0 as u64);
        }
        match op.imm {
            Some(i) => leaf.word(1).iword(i),
            None => leaf.word(0),
        };
        match op.fimm_bits {
            Some(b) => leaf.word(1).word(b),
            None => leaf.word(0),
        };
        match op.mem {
            Some(m) => leaf
                .word(1)
                .word(m.array.0 as u64)
                .iword(m.offset)
                .iword(m.stride),
            None => leaf.word(0),
        };
        ops.hash(leaf.finish());
    }

    let mut live_out = Hasher128::new(0x6c_69_76_6f); // "livo"
    for &v in &l.live_out {
        live_out.word(v.0 as u64);
    }

    let mut root = Hasher128::new(0x726f_6f74); // "root"
    for leaf in [header, arrays, regs, live_in, ops, live_out] {
        root.hash(leaf.finish());
    }
    root.finish()
}

/// Canonicalize `l` into its alpha-normal form.
pub fn canonicalize(l: &Loop) -> Canonical {
    let (preds, succs) = constraint_graph(l);
    let flows = resolve_flows(l);
    let (op_rank, reg_rank) = refine(l, &preds, &succs, &flows);
    let order = canonical_order(l, &preds, &op_rank);

    let mut op_pos = vec![usize::MAX; l.ops.len()];
    for (p, &i) in order.iter().enumerate() {
        op_pos[i] = p;
    }

    // Per original op: its use slots in canonical operand order.
    let slot_order: Vec<Vec<usize>> = l
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let mut slots: Vec<usize> = (0..op.uses.len()).collect();
            if is_commutative(op) {
                slots.sort_by_key(|&s| use_key(l, flows[i][s], op.uses[s], &op_pos, &reg_rank));
            }
            slots
        })
        .collect();

    // Dense renaming in first-mention order over the canonical trace.
    let n_regs = l.n_vregs();
    let mut to_canon: Vec<Option<u32>> = vec![None; n_regs];
    let mut from_canon: Vec<u32> = Vec::with_capacity(n_regs);
    let mention = |v: VReg, to: &mut Vec<Option<u32>>, from: &mut Vec<u32>| {
        if to[v.index()].is_none() {
            to[v.index()] = Some(from.len() as u32);
            from.push(v.0);
        }
    };
    for &i in &order {
        let op = &l.ops[i];
        for &s in &slot_order[i] {
            mention(op.uses[s], &mut to_canon, &mut from_canon);
        }
        if let Some(d) = op.def {
            mention(d, &mut to_canon, &mut from_canon);
        }
    }
    // Registers never mentioned by any op (unused live-ins, dead live-outs):
    // appended by colour, original index as the (symmetric) tiebreak.
    let mut leftovers: Vec<u32> = (0..n_regs as u32)
        .filter(|&v| to_canon[v as usize].is_none())
        .collect();
    leftovers.sort_by_key(|&v| (reg_rank[v as usize], v));
    for v in leftovers {
        mention(VReg(v), &mut to_canon, &mut from_canon);
    }
    let to_canon: Vec<u32> = to_canon
        .into_iter()
        .map(|c| c.expect("all assigned"))
        .collect();
    let map = |v: VReg| VReg(to_canon[v.index()]);

    // Rebuild the body.
    let ops: Vec<Operation> = order
        .iter()
        .enumerate()
        .map(|(p, &i)| {
            let op = &l.ops[i];
            Operation {
                id: OpId(p as u32),
                opcode: op.opcode,
                alu: canonical_alu(op),
                def: op.def.map(map),
                uses: slot_order[i].iter().map(|&s| map(op.uses[s])).collect(),
                imm: op.imm,
                fimm_bits: op.fimm_bits,
                mem: op.mem,
            }
        })
        .collect();

    let mut vreg_classes = vec![vliw_ir::RegClass::Int; n_regs];
    for (orig, &canon) in to_canon.iter().enumerate() {
        vreg_classes[canon as usize] = l.vreg_classes[orig];
    }

    let mut live_in: Vec<(VReg, InitVal)> = l
        .live_in
        .iter()
        .zip(&l.live_in_vals)
        .map(|(&v, &init)| (map(v), init))
        .collect();
    live_in.sort_by_key(|&(v, _)| v);
    let mut live_out: Vec<VReg> = l.live_out.iter().map(|&v| map(v)).collect();
    live_out.sort_unstable();

    let arrays: Vec<ArrayInfo> = l
        .arrays
        .iter()
        .enumerate()
        .map(|(k, a)| ArrayInfo {
            name: format!("a{k}"),
            class: a.class,
            len: a.len,
        })
        .collect();

    let body = Loop {
        name: CANONICAL_LOOP_NAME.to_string(),
        ops,
        vreg_classes,
        live_in: live_in.iter().map(|&(v, _)| v).collect(),
        live_in_vals: live_in.iter().map(|&(_, init)| init).collect(),
        live_out,
        arrays,
        trip_count: l.trip_count,
        nesting_depth: l.nesting_depth,
    };
    let hash = hash_canonical_body(&body);
    let witness = Witness {
        original_name: l.name.clone(),
        vreg_from_canon: from_canon,
        vreg_to_canon: to_canon,
        op_to_canon: op_pos.iter().map(|&p| p as u32).collect(),
        op_from_canon: order.iter().map(|&i| i as u32).collect(),
        array_names: l.arrays.iter().map(|a| a.name.clone()).collect(),
    };
    Canonical {
        body,
        witness,
        hash,
    }
}

/// The structural hash of `l`'s normal form.
pub fn structural_hash(l: &Loop) -> StructuralHash {
    canonicalize(l).hash
}

/// Decide alpha-equivalence of `a` and `b`; on success the witness maps
/// `a`'s registers and ops onto `b`'s. Equality of normal forms is the
/// decision procedure, so a `Some` answer is always sound.
pub fn alpha_equivalent(a: &Loop, b: &Loop) -> Option<EquivWitness> {
    let ca = canonicalize(a);
    let cb = canonicalize(b);
    if ca.body != cb.body {
        return None;
    }
    Some(EquivWitness {
        vreg_map: ca
            .witness
            .vreg_to_canon
            .iter()
            .map(|&c| cb.witness.vreg_from_canon[c as usize])
            .collect(),
        op_map: ca
            .witness
            .op_to_canon
            .iter()
            .map(|&p| cb.witness.op_from_canon[p as usize])
            .collect(),
    })
}

/// Validate an equivalence witness structurally: bijective maps that
/// preserve classes, opcodes, immediates, memory metadata, operand wiring
/// (up to commutative swap), liveness and initial values. Returns a
/// human-readable reason on failure.
pub fn check_witness(a: &Loop, b: &Loop, w: &EquivWitness) -> Result<(), String> {
    if a.n_vregs() != b.n_vregs() || a.ops.len() != b.ops.len() {
        return Err("size mismatch".into());
    }
    if a.trip_count != b.trip_count || a.nesting_depth != b.nesting_depth {
        return Err("trip/nesting mismatch".into());
    }
    if w.vreg_map.len() != a.n_vregs() || w.op_map.len() != a.ops.len() {
        return Err("witness arity mismatch".into());
    }
    let mut seen_v = vec![false; b.n_vregs()];
    for (v, &m) in w.vreg_map.iter().enumerate() {
        let m = m as usize;
        if m >= b.n_vregs() || std::mem::replace(&mut seen_v[m], true) {
            return Err(format!("vreg map not a bijection at v{v}"));
        }
        if a.vreg_classes[v] != b.vreg_classes[m] {
            return Err(format!("class mismatch at v{v}"));
        }
        if init_word(a, VReg(v as u32)) != init_word(b, VReg(m as u32)) {
            return Err(format!("live-in value mismatch at v{v}"));
        }
        if a.live_out.contains(&VReg(v as u32)) != b.live_out.contains(&VReg(m as u32)) {
            return Err(format!("live-out mismatch at v{v}"));
        }
    }
    let mut seen_o = vec![false; b.ops.len()];
    for (i, &j) in w.op_map.iter().enumerate() {
        let (oa, j) = (&a.ops[i], j as usize);
        if j >= b.ops.len() || std::mem::replace(&mut seen_o[j], true) {
            return Err(format!("op map not a bijection at op{i}"));
        }
        let ob = &b.ops[j];
        if oa.opcode != ob.opcode
            || canonical_alu(oa) != canonical_alu(ob)
            || oa.imm != ob.imm
            || oa.fimm_bits != ob.fimm_bits
            || oa.mem != ob.mem
            || oa.uses.len() != ob.uses.len()
        {
            return Err(format!("op attribute mismatch at op{i}"));
        }
        if oa.def.map(|d| VReg(w.vreg_map[d.index()])) != ob.def {
            return Err(format!("def mismatch at op{i}"));
        }
        let mapped: Vec<VReg> = oa
            .uses
            .iter()
            .map(|u| VReg(w.vreg_map[u.index()]))
            .collect();
        let matches_direct = mapped == ob.uses;
        let matches_swapped = is_commutative(oa)
            && mapped.len() == 2
            && mapped[0] == ob.uses[1]
            && mapped[1] == ob.uses[0];
        if !matches_direct && !matches_swapped {
            return Err(format!("use wiring mismatch at op{i}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{format_loop_full, parse_loop, verify_loop, LoopBuilder, RegClass};

    fn sample() -> Loop {
        let mut b = LoopBuilder::new("sample");
        let x = b.array("x", RegClass::Float, 16);
        let y = b.array("y", RegClass::Float, 16);
        let s = b.live_in_float_val("s", 0.25);
        let xv = b.load(x, 0, 1);
        let yv = b.load(y, 0, 1);
        let p = b.fmul(xv, yv);
        b.fadd_into(s, s, p);
        b.store(y, 0, 1, p);
        b.live_out(s);
        b.finish(8)
    }

    #[test]
    fn canonical_form_is_valid_and_idempotent() {
        let l = sample();
        let c1 = canonicalize(&l);
        verify_loop(&c1.body).expect("canonical body verifies");
        let c2 = canonicalize(&c1.body);
        assert_eq!(c1.body, c2.body, "canonicalize is a projection");
        assert_eq!(c1.hash, c2.hash);
    }

    #[test]
    fn canonical_form_round_trips_through_text() {
        let c = canonicalize(&sample());
        let text = format_loop_full(&c.body);
        let parsed = parse_loop(&text).expect("canonical text parses");
        assert_eq!(parsed, c.body);
    }

    #[test]
    fn renaming_is_invisible() {
        let l = sample();
        let mut renamed = l.clone();
        renamed.name = "other".into();
        renamed.arrays[0].name = "zzz".into();
        let ca = canonicalize(&l);
        let cb = canonicalize(&renamed);
        assert_eq!(ca.body, cb.body);
        assert_eq!(ca.hash, cb.hash);
        let w = alpha_equivalent(&l, &renamed).expect("isomorphic");
        check_witness(&l, &renamed, &w).expect("witness checks");
    }

    #[test]
    fn commutative_swap_is_invisible_but_subtraction_is_not() {
        let mut b = LoopBuilder::new("c");
        let u = b.live_in_float_val("u", 1.0);
        let v = b.live_in_float_val("v", 2.0);
        let s = b.fadd(u, v);
        b.live_out(s);
        let add = b.finish(4);

        let mut swapped = add.clone();
        swapped.ops[0].uses.swap(0, 1);
        assert_eq!(structural_hash(&add), structural_hash(&swapped));

        let mut sub = add.clone();
        sub.ops[0].alu = AluKind::Sub;
        assert_ne!(structural_hash(&add), structural_hash(&sub));
        assert!(alpha_equivalent(&add, &sub).is_none());
    }

    #[test]
    fn trip_count_and_offsets_feed_the_hash() {
        let l = sample();
        let mut trip = l.clone();
        trip.trip_count += 1;
        assert_ne!(structural_hash(&l), structural_hash(&trip));
        let mut off = l.clone();
        off.ops[0].mem.as_mut().unwrap().offset += 1;
        assert_ne!(structural_hash(&l), structural_hash(&off));
    }

    #[test]
    fn array_order_is_semantic() {
        // Same shape, but the two loads hit arrays 0/1 in swapped order:
        // the simulator seeds contents by array index, so these must NOT
        // collide.
        let build = |flip: bool| {
            let mut b = LoopBuilder::new("ao");
            let x = b.array("x", RegClass::Float, 8);
            let y = b.array("y", RegClass::Float, 8);
            let (first, second) = if flip { (y, x) } else { (x, y) };
            let a = b.load(first, 0, 1);
            let c = b.load(second, 0, 1);
            let s = b.fsub(a, c);
            b.live_out(s);
            b.finish(4)
        };
        assert_ne!(
            structural_hash(&build(false)),
            structural_hash(&build(true))
        );
    }

    #[test]
    fn independent_statements_reorder_to_one_form() {
        // Two independent load→scale→store chains over different arrays,
        // written in interleaved vs. grouped order.
        let build = |grouped: bool| {
            let mut b = LoopBuilder::new("ind");
            let x = b.array("x", RegClass::Float, 8);
            let y = b.array("y", RegClass::Float, 8);
            let cst = b.fconst_new(2.0);
            if grouped {
                let xv = b.load(x, 0, 1);
                let xs = b.fmul(xv, cst);
                b.store(x, 0, 1, xs);
                let yv = b.load(y, 0, 1);
                let ys = b.fmul(yv, cst);
                b.store(y, 0, 1, ys);
            } else {
                let xv = b.load(x, 0, 1);
                let yv = b.load(y, 0, 1);
                let xs = b.fmul(xv, cst);
                let ys = b.fmul(yv, cst);
                b.store(x, 0, 1, xs);
                b.store(y, 0, 1, ys);
            }
            b.finish(4)
        };
        let a = build(true);
        let b = build(false);
        assert_eq!(structural_hash(&a), structural_hash(&b));
        let w = alpha_equivalent(&a, &b).expect("isomorphic");
        check_witness(&a, &b, &w).expect("witness checks");
    }

    #[test]
    fn conflicting_stores_keep_their_order() {
        let build = |flip: bool| {
            let mut b = LoopBuilder::new("st");
            let x = b.array("x", RegClass::Float, 8);
            let u = b.live_in_float_val("u", 1.0);
            let v = b.live_in_float_val("v", 2.0);
            if flip {
                b.store(x, 0, 1, v);
                b.store(x, 0, 1, u);
            } else {
                b.store(x, 0, 1, u);
                b.store(x, 0, 1, v);
            }
            b.finish(4)
        };
        // Different final memory ⇒ must not be equivalent.
        assert!(alpha_equivalent(&build(false), &build(true)).is_none());
    }

    #[test]
    fn recurrence_distance_matters() {
        // s = s + p (use-before-def recurrence) vs a fresh def first: the
        // reaching-def distances differ, so the hashes must too.
        let mut b1 = LoopBuilder::new("r1");
        let s1 = b1.live_in_float_val("s", 0.0);
        let one1 = b1.fconst_new(1.0);
        b1.fadd_into(s1, s1, one1);
        b1.live_out(s1);
        let rec = b1.finish(4);

        let mut b2 = LoopBuilder::new("r2");
        let s2 = b2.live_in_float_val("s", 0.0);
        let one2 = b2.fconst_new(1.0);
        let t = b2.fadd(s2, one2);
        b2.live_out(t);
        let straight = b2.finish(4);

        assert_ne!(structural_hash(&rec), structural_hash(&straight));
    }

    #[test]
    fn live_in_value_feeds_the_hash() {
        let build = |init: f64| {
            let mut b = LoopBuilder::new("li");
            let s = b.live_in_float_val("s", init);
            let one = b.fconst_new(1.0);
            b.fadd_into(s, s, one);
            b.live_out(s);
            b.finish(4)
        };
        assert_ne!(structural_hash(&build(0.0)), structural_hash(&build(1.0)));
    }

    #[test]
    fn empty_loop_canonicalizes() {
        let b = LoopBuilder::new("empty");
        let l = b.finish(0);
        let c = canonicalize(&l);
        assert_eq!(c.body.ops.len(), 0);
        assert_eq!(canonicalize(&c.body).hash, c.hash);
    }
}
