//! A 128-bit structural hasher for canonical forms.
//!
//! The serve tier's SHA-256 lives in `vliw-serve`, which sits *above* this
//! crate in the dependency order, so the normal form carries its own hash: a
//! two-lane xor-multiply sponge (splitmix64 finalisation per absorbed word,
//! distinct round constants per lane). It is not cryptographic — it guards
//! against accidental collision between canonical forms, where 2×64 bits of
//! state is ample — and it is deterministic across platforms and runs.
//!
//! [`canonicalize`](crate::canon::canonicalize) uses it Merkle-style: one
//! leaf hash per section of the loop (header, arrays, registers, live-ins,
//! one per operation, live-outs), folded left-to-right into a root. Two
//! loops with equal roots had equal section encodings; any structural
//! difference perturbs its leaf and therefore the root.

/// A 128-bit structural hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructuralHash(pub [u64; 2]);

impl StructuralHash {
    /// Lower-case hex rendering, 32 characters.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }
}

impl std::fmt::Display for StructuralHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// splitmix64 finaliser: a full-avalanche 64-bit mixer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Streaming two-lane hasher over 64-bit words.
#[derive(Debug, Clone)]
pub struct Hasher128 {
    a: u64,
    b: u64,
    len: u64,
}

impl Hasher128 {
    /// A fresh hasher whose initial state is derived from `tag`, so hashes
    /// of different kinds of object never collide by construction.
    pub fn new(tag: u64) -> Hasher128 {
        Hasher128 {
            a: mix64(tag ^ 0x243f_6a88_85a3_08d3),
            b: mix64(tag ^ 0x1319_8a2e_0370_7344),
            len: 0,
        }
    }

    /// Absorb one word.
    pub fn word(&mut self, w: u64) -> &mut Self {
        self.a = mix64(self.a ^ w).rotate_left(23) ^ self.b;
        self.b = mix64(self.b.wrapping_add(w ^ 0xa409_3822_299f_31d0));
        self.len += 1;
        self
    }

    /// Absorb a signed word (common for immediates and offsets).
    pub fn iword(&mut self, w: i64) -> &mut Self {
        self.word(w as u64)
    }

    /// Absorb raw bytes (length-prefixed, so `"ab","c"` ≠ `"a","bc"`).
    pub fn bytes(&mut self, bs: &[u8]) -> &mut Self {
        self.word(bs.len() as u64);
        for chunk in bs.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.word(u64::from_le_bytes(w));
        }
        self
    }

    /// Absorb another hash (for Merkle folding).
    pub fn hash(&mut self, h: StructuralHash) -> &mut Self {
        self.word(h.0[0]).word(h.0[1])
    }

    /// Finalise: the absorbed length is folded in, so a prefix never
    /// collides with its extension.
    pub fn finish(&self) -> StructuralHash {
        let a = mix64(self.a ^ self.len);
        let b = mix64(self.b ^ a);
        StructuralHash([a ^ mix64(b), b])
    }

    /// One-word convenience mixer for colour refinement: not a full hash,
    /// just `mix64` over the xor-fold of the inputs' running combination.
    pub fn combine(words: &[u64]) -> u64 {
        let mut acc = 0x51ed_270b_7a1c_c581u64;
        for &w in words {
            acc = mix64(acc ^ w).wrapping_mul(0x0001_0000_01b3);
        }
        mix64(acc ^ words.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_tag_separated() {
        let h = |tag: u64, words: &[u64]| {
            let mut hs = Hasher128::new(tag);
            for &w in words {
                hs.word(w);
            }
            hs.finish()
        };
        assert_eq!(h(1, &[1, 2, 3]), h(1, &[1, 2, 3]));
        assert_ne!(h(1, &[1, 2, 3]), h(2, &[1, 2, 3]));
        assert_ne!(h(1, &[1, 2, 3]), h(1, &[1, 2]));
        assert_ne!(h(1, &[1, 2, 3]), h(1, &[3, 2, 1]));
    }

    #[test]
    fn bytes_are_length_prefixed() {
        let h = |parts: &[&str]| {
            let mut hs = Hasher128::new(7);
            for p in parts {
                hs.bytes(p.as_bytes());
            }
            hs.finish()
        };
        assert_ne!(h(&["ab", "c"]), h(&["a", "bc"]));
        assert_ne!(h(&["abc"]), h(&["abc", ""]));
    }

    #[test]
    fn hex_is_32_chars() {
        let mut hs = Hasher128::new(0);
        hs.word(42);
        let hx = hs.finish().hex();
        assert_eq!(hx.len(), 32);
        assert!(hx.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn combine_orders_and_lengths_matter() {
        assert_eq!(Hasher128::combine(&[1, 2]), Hasher128::combine(&[1, 2]));
        assert_ne!(Hasher128::combine(&[1, 2]), Hasher128::combine(&[2, 1]));
        assert_ne!(Hasher128::combine(&[0]), Hasher128::combine(&[0, 0]));
    }
}
