//! # vliw-normal — alpha-canonicalization of loop bodies
//!
//! The serve tier keys its content cache on canonical *text*, so two loops
//! that differ only in virtual-register numbering, commutative-operand
//! order, or (dependence-respecting) statement order never share a cache
//! entry. This crate closes that gap with a *static* equivalence engine:
//!
//! * [`canonicalize`] — rewrite a [`Loop`] into a deterministic
//!   **alpha-normal form**: statements in a canonical order chosen among the
//!   dependence-legal permutations, commutative operands sorted
//!   structurally, virtual registers densely renamed from the canonical
//!   trace, array and loop names normalised. Returns the normal form, a
//!   [`Witness`] renaming (both directions), and a Merkle-style
//!   [`StructuralHash`] over the normal form.
//! * [`alpha_equivalent`] — decide whether two loops are isomorphic (equal
//!   normal forms) and return the witness mapping one onto the other.
//! * [`variants`] — deterministic generators for renamed /
//!   commutative-swapped / statement-permuted variants, used by the lint
//!   passes, the proptest corpus, and `bench_serve`'s variant phase.
//!
//! What the normal form is allowed to change is exactly what the semantics
//! (the `vliw-sim` reference interpreter) cannot observe:
//!
//! * virtual-register numbers (renamed densely in first-mention order),
//! * the two operands of a commutative operation (`falu +`/`*`, `ialu`
//!   `+`/`*` in register form, `fmul`, `imul` — mirroring `eval_op`),
//! * the relative order of two statements with no dependence between them
//!   (no shared register in a def/def, def/use or use/def pair; no shared
//!   array where either access is a store),
//! * the loop name, array *names* (array order is semantic: the simulator
//!   seeds array contents by index) and the order of the live-in/live-out
//!   lists.
//!
//! Everything else — opcodes, immediates, memory offsets and strides, trip
//! count, nesting depth, live-in initial values, the live-out *set* — is
//! preserved verbatim and feeds the hash.
//!
//! Equivalence is decided by equality of normal forms, so false positives
//! are impossible. False negatives (two isomorphic loops with different
//! normal forms) are theoretically possible when colour refinement leaves a
//! non-automorphic tie; the cost is a missed cache hit, never a wrong
//! result, and the proptest corpus keeps the generators honest.

#![warn(missing_docs)]

pub mod canon;
pub mod hash;
pub mod variants;

pub use canon::{
    alpha_equivalent, canonicalize, check_witness, is_commutative, structural_hash, Canonical,
    EquivWitness, Witness, CANONICAL_LOOP_NAME,
};
pub use hash::{Hasher128, StructuralHash};
pub use variants::{
    permute_statements, perturb, rename_arrays, rename_vregs, swap_commutative, variant,
};
