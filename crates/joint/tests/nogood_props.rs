//! Property tests for conflict (no-good) learning and the incremental
//! recurrence maintainer.
//!
//! Two contracts keep the ladder honest:
//!
//! * every recorded no-good, replayed at any II below its threshold (in
//!   particular at rungs *above* the one it was learned on), must still be
//!   refuted by the full, non-incremental oracle of its kind;
//! * the incremental copy-adjusted feasibility the bank search maintains
//!   must agree with `Ddg::is_feasible_adjusted` on arbitrary
//!   decision/rollback traces, and its potentials must match the scratch
//!   solve exactly.

use vliw_ddg::{build_ddg, DepKind, IncrementalFeasibility};
use vliw_exact::bound::UNASSIGNED;
use vliw_ir::{Loop, LoopBuilder, RegClass};
use vliw_joint::propagate::{
    capacity_conflict, copy_extras, deciding_vregs, recurrence_feasible, variant_mask,
};
use vliw_joint::{solve_joint_traced, JointConfig, NoGoodKind};
use vliw_machine::MachineDesc;

fn daxpy(unroll: usize) -> Loop {
    let mut b = LoopBuilder::new("daxpy");
    let x = b.array("x", RegClass::Float, 1024);
    let y = b.array("y", RegClass::Float, 1024);
    let a = b.live_in_float("a");
    for u in 0..unroll {
        let xv = b.load(x, u as i64, unroll as i64);
        let yv = b.load(y, u as i64, unroll as i64);
        let p = b.fmul(a, xv);
        let s = b.fadd(yv, p);
        b.store(y, u as i64, unroll as i64, s);
    }
    b.finish(128)
}

/// A recurrence-dense pressured loop: `unroll` independent accumulator
/// chains plus a daxpy body, enough vregs to force real bank search.
fn pressured(unroll: usize) -> Loop {
    let mut b = LoopBuilder::new("pressured");
    let x = b.array("x", RegClass::Float, 1024);
    let a = b.live_in_float("a");
    for u in 0..unroll {
        let s = b.live_in_float_val("s", 0.0);
        let xv = b.load(x, u as i64, unroll as i64);
        let t = b.fmul(a, s);
        b.fadd_into(s, t, xv);
        b.live_out(s);
    }
    b.finish(64)
}

fn test_corpus() -> Vec<Loop> {
    let mut loops = vec![daxpy(4), daxpy(6), pressured(3), pressured(5)];
    loops.extend(
        vliw_loopgen::corpus()
            .into_iter()
            .filter(|l| (10..=20).contains(&l.n_vregs()))
            .take(6),
    );
    loops
}

#[test]
fn recorded_nogoods_replay_infeasible_under_full_oracle() {
    let machines = [MachineDesc::embedded(4, 4), MachineDesc::copy_unit(4, 4)];
    let mut total = 0usize;
    for l in test_corpus() {
        let deciding = deciding_vregs(&l);
        let variant = variant_mask(&l);
        for m in &machines {
            let copy_extra = copy_extras(&l, m);
            let ddg = build_ddg(&l, &m.latencies);
            let n_banks = m.n_clusters();
            let (_, store) = solve_joint_traced(
                &l,
                m,
                &vliw_core::PartitionConfig::default(),
                &JointConfig { budget_ms: 300 },
            );
            let mut marks = vec![false; l.n_vregs() * n_banks];
            let mut scratch = Vec::new();
            for ng in store.items() {
                total += 1;
                // Apply exactly the literals, nothing else.
                let mut assigned = vec![UNASSIGNED; l.n_vregs()];
                for &(v, b) in &ng.literals {
                    assigned[v as usize] = b;
                }
                // The claim: infeasible at every II below the threshold.
                // Sample the range (it can be wide) including both ends.
                let lo = 1u32;
                let hi = ng.min_ii - 1;
                let probes = [lo, (lo + hi) / 2, hi, hi.saturating_sub(1).max(lo)];
                for &ii in &probes {
                    match ng.kind {
                        NoGoodKind::Resource => {
                            assert!(
                                capacity_conflict(
                                    &l, m, ii, &assigned, &deciding, &variant, &mut marks
                                )
                                .is_some(),
                                "resource no-good {:?} not refuted at II={} on {} ({})",
                                ng,
                                ii,
                                m.name,
                                l.name
                            );
                        }
                        NoGoodKind::Dependence => {
                            assert!(
                                !recurrence_feasible(
                                    &l,
                                    &ddg,
                                    ii,
                                    &assigned,
                                    &deciding,
                                    &copy_extra,
                                    &mut scratch
                                ),
                                "dependence no-good {:?} not refuted at II={} on {} ({})",
                                ng,
                                ii,
                                m.name,
                                l.name
                            );
                        }
                    }
                }
            }
        }
    }
    assert!(
        total > 0,
        "no conflicts recorded: the property test is vacuous"
    );
}

#[test]
fn incremental_recurrence_agrees_with_full_oracle_on_random_traces() {
    let mut state = 0xC0FF_EE11_u64;
    let mut next = move |m: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % m.max(1)
    };
    let machines = [MachineDesc::embedded(4, 4), MachineDesc::copy_unit(2, 8)];
    for l in test_corpus() {
        if l.n_vregs() == 0 {
            continue;
        }
        let deciding = deciding_vregs(&l);
        let copy_extra_by_machine: Vec<Vec<i64>> =
            machines.iter().map(|m| copy_extras(&l, m)).collect();
        for (mi, m) in machines.iter().enumerate() {
            let copy_extra = &copy_extra_by_machine[mi];
            let ddg = build_ddg(&l, &m.latencies);
            let n_banks = m.n_clusters() as u8;
            // Smallest feasible II of the unadjusted graph.
            let mut scratch = Vec::new();
            let mut target = 1u32;
            while !ddg.is_feasible_with(target, &mut scratch) {
                target += 1;
            }
            target += next(3) as u32; // also probe slacker IIs
                                      // The solver's affected-edge lists.
            let mut affected: Vec<Vec<u32>> = vec![Vec::new(); l.n_vregs()];
            for (i, e) in ddg.edges().iter().enumerate() {
                if e.kind != DepKind::Flow {
                    continue;
                }
                let Some(d) = l.op(e.from).def else { continue };
                affected[d.index()].push(i as u32);
                if let Some(t) = deciding[e.to.index()] {
                    if t != d.index() {
                        affected[t].push(i as u32);
                    }
                }
            }
            let edge_extra = |assigned: &[u8], ei: usize| -> i64 {
                let e = &ddg.edges()[ei];
                let Some(v) = l.op(e.from).def else { return 0 };
                let bv = assigned[v.index()];
                if bv == UNASSIGNED {
                    return 0;
                }
                let bt = match deciding[e.to.index()] {
                    Some(dv) => assigned[dv],
                    None => 0,
                };
                if bt == UNASSIGNED || bt == bv {
                    return 0;
                }
                copy_extra[v.index()]
            };

            let mut incr = IncrementalFeasibility::for_ddg(&ddg, target, |_| 0);
            assert!(incr.root_feasible(), "root must be feasible at {target}");
            let mut assigned = vec![UNASSIGNED; l.n_vregs()];
            let mut decided: Vec<usize> = Vec::new();
            for _step in 0..3 * l.n_vregs() {
                let undo = !decided.is_empty() && next(4) == 0;
                if undo {
                    // Random rollback of the most recent decision.
                    let v = decided.pop().expect("nonempty");
                    assigned[v] = UNASSIGNED;
                    incr.pop_frame();
                    continue;
                }
                let v = next(l.n_vregs() as u64) as usize;
                if assigned[v] != UNASSIGNED {
                    continue;
                }
                let b = next(n_banks as u64) as u8;
                assigned[v] = b;
                incr.push_frame();
                for &ei in &affected[v] {
                    let extra = edge_extra(&assigned, ei as usize);
                    if extra > 0 {
                        let e = &ddg.edges()[ei as usize];
                        let w = e.latency + extra - target as i64 * e.distance as i64;
                        incr.set_weight(ei as usize, w);
                    }
                }
                let got = incr.propagate();
                let want = recurrence_feasible(
                    &l,
                    &ddg,
                    target,
                    &assigned,
                    &deciding,
                    copy_extra,
                    &mut scratch,
                );
                assert_eq!(
                    got, want,
                    "incremental/oracle disagreement on {} ({}) at II={target}",
                    l.name, m.name
                );
                if got {
                    // Potentials must equal the scratch solve (both compute
                    // the least fixpoint of the same system).
                    assert_eq!(
                        incr.potentials(),
                        &scratch[..],
                        "potentials diverged on {} ({})",
                        l.name,
                        m.name
                    );
                    decided.push(v);
                } else {
                    // Frame was rolled back by the failed propagate.
                    assigned[v] = UNASSIGNED;
                }
            }
        }
    }
}
