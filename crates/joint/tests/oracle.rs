//! Brute-force oracle for the joint solver on tiny loops.
//!
//! For every loop with ≤ 6 ops and ≤ 6 vregs, enumerate *all* `banks^vregs`
//! partitions, find each one's minimum feasible II with the complete
//! fixed-II scheduler (itself exhaustive), and check that [`solve_joint`]
//! with an unlimited budget lands on exactly the global minimum and claims
//! optimality. A small corpus slice then checks the solver's invariants on
//! machine-generated loops.

use vliw_core::{insert_copies, Partition, PartitionConfig};
use vliw_ddg::build_ddg;
use vliw_ir::{Loop, LoopBuilder, RegClass};
use vliw_joint::{schedule_fixed_ii, solve_joint, FixedIiOutcome, FixedIiStats, JointConfig};
use vliw_machine::{ClusterId, MachineDesc};
use vliw_sched::{verify_schedule, SchedProblem};

/// Minimum feasible II of `body` under `part`, by ascending exhaustive
/// fixed-II searches (capped; every tiny loop here closes far below it).
fn min_ii_of_partition(body: &Loop, machine: &MachineDesc, part: &Partition) -> u32 {
    let cl = insert_copies(body, part);
    let cddg = build_ddg(&cl.body, &machine.latencies);
    let problem = SchedProblem::clustered(&cl.body, machine, &cl.cluster_of);
    let mut stats = FixedIiStats::default();
    for ii in 1..=64 {
        match schedule_fixed_ii(&problem, &cddg, ii, None, &mut stats) {
            FixedIiOutcome::Found(s) => {
                verify_schedule(&problem, &cddg, &s).unwrap();
                return ii;
            }
            FixedIiOutcome::Infeasible => continue,
            FixedIiOutcome::TimedOut => unreachable!("no deadline was set"),
        }
    }
    panic!("no II up to 64 for {}", body.name);
}

/// Global minimum II over every complete bank assignment.
fn brute_force_min_ii(body: &Loop, machine: &MachineDesc) -> u32 {
    let n_banks = machine.n_clusters();
    let n_vregs = body.n_vregs();
    assert!(n_vregs <= 6, "oracle is exponential in vregs");
    let mut best = u32::MAX;
    for mask in 0..n_banks.pow(n_vregs as u32) {
        let mut m = mask;
        let bank_of: Vec<ClusterId> = (0..n_vregs)
            .map(|_| {
                let b = ClusterId((m % n_banks) as u32);
                m /= n_banks;
                b
            })
            .collect();
        let part = Partition { bank_of, n_banks };
        best = best.min(min_ii_of_partition(body, machine, &part));
    }
    best
}

fn tiny_loops() -> Vec<Loop> {
    let mut out = Vec::new();

    // daxpy, unroll 1: 5 ops, 5 vregs.
    let mut b = LoopBuilder::new("tiny_daxpy");
    let x = b.array("x", RegClass::Float, 64);
    let y = b.array("y", RegClass::Float, 64);
    let a = b.live_in_float("a");
    let xv = b.load(x, 0, 1);
    let yv = b.load(y, 0, 1);
    let p = b.fmul(a, xv);
    let s = b.fadd(yv, p);
    b.store(y, 0, 1, s);
    out.push(b.finish(64));

    // Square-and-store chain: 3 ops, 2 vregs.
    let mut b = LoopBuilder::new("tiny_square");
    let x = b.array("x", RegClass::Float, 64);
    let v = b.load(x, 0, 1);
    let sq = b.fmul(v, v);
    b.store(x, 0, 1, sq);
    out.push(b.finish(64));

    // Recurrence s = a*s + x[i]: 3 ops, 4 vregs.
    let mut b = LoopBuilder::new("tiny_rec");
    let x = b.array("x", RegClass::Float, 64);
    let a = b.live_in_float("a");
    let s = b.live_in_float_val("s", 0.0);
    let xv = b.load(x, 0, 1);
    let t = b.fmul(a, s);
    b.fadd_into(s, t, xv);
    b.live_out(s);
    out.push(b.finish(64));

    // Two independent chains that want separate banks: 6 ops, 4 vregs.
    let mut b = LoopBuilder::new("tiny_twochain");
    let x = b.array("x", RegClass::Float, 64);
    let y = b.array("y", RegClass::Float, 64);
    let v1 = b.load(x, 0, 1);
    let m1 = b.fmul(v1, v1);
    b.store(x, 0, 1, m1);
    let v2 = b.load(y, 0, 1);
    let m2 = b.fadd(v2, v2);
    b.store(y, 0, 1, m2);
    out.push(b.finish(64));

    out
}

#[test]
fn joint_matches_brute_force_on_tiny_loops() {
    let machines = [
        MachineDesc::embedded(2, 1),
        MachineDesc::embedded(2, 2),
        MachineDesc::copy_unit(2, 1),
        MachineDesc::copy_unit(2, 2),
    ];
    for l in tiny_loops() {
        for machine in &machines {
            let oracle = brute_force_min_ii(&l, machine);
            let r = solve_joint(
                &l,
                machine,
                &PartitionConfig::default(),
                &JointConfig::default(),
            );
            assert!(
                r.optimal,
                "{} on {}: unlimited budget must close",
                l.name, machine.name
            );
            assert_eq!(
                r.ii, oracle,
                "{} on {}: joint said II={} but brute force found II={}",
                l.name, machine.name, r.ii, oracle
            );
            // The witness really schedules the copy-inserted body at that II.
            let cl = insert_copies(&l, &r.partition);
            let cddg = build_ddg(&cl.body, &machine.latencies);
            let problem = SchedProblem::clustered(&cl.body, machine, &cl.cluster_of);
            verify_schedule(&problem, &cddg, &r.schedule).unwrap();
        }
    }
}

#[test]
fn corpus_slice_invariants_hold() {
    // Machine-generated loops, tight budget: whatever happens, the contract
    // holds — witness verifies, II never loses to greedy, bounds are honest.
    let corpus = vliw_loopgen::corpus_with(&vliw_loopgen::CorpusSpec {
        n: 24,
        ..Default::default()
    });
    let machine = MachineDesc::embedded(4, 4);
    let cfg = JointConfig { budget_ms: 250 };
    for l in &corpus {
        let r = solve_joint(l, &machine, &PartitionConfig::default(), &cfg);
        assert!(r.ii <= r.greedy_ii, "{}: joint II regressed", l.name);
        assert!(r.lower_bound_ii <= r.ii, "{}: bound above answer", l.name);
        if r.optimal {
            assert_eq!(r.lower_bound_ii, r.ii, "{}: optimal but gapped", l.name);
        }
        let cl = insert_copies(l, &r.partition);
        let cddg = build_ddg(&cl.body, &machine.latencies);
        let problem = SchedProblem::clustered(&cl.body, &machine, &cl.cluster_of);
        assert_eq!(r.schedule.times.len(), cl.body.n_ops(), "{}", l.name);
        verify_schedule(&problem, &cddg, &r.schedule).unwrap();
    }
}
