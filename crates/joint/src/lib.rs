//! # vliw-joint — joint (II, slot, bank) scheduling by constraint propagation
//!
//! The paper's pipeline — and `vliw-exact` on top of it — decides the bank
//! partition *given* a schedule: the RCG is built from the ideal schedule,
//! the partition is chosen to minimise a copy-cost proxy, and only then does
//! the modulo scheduler see the clustered loop. That ordering can lose whole
//! II cycles: a partition that looks more expensive on the RCG objective may
//! admit a schedule at a smaller initiation interval, and a schedule the
//! heuristic scheduler misses may exist for the very partition it was given.
//!
//! This crate searches the joint space. [`solve_joint`] runs an outer loop
//! over candidate IIs from a machine-independent lower bound up to the greedy
//! pipeline's achieved II (the incumbent), and for each target II runs a
//! branch-and-bound over **bank assignments** whose leaves invoke a
//! **complete fixed-II modulo scheduler** ([`schedule_fixed_ii`]). Three
//! propagators prune the bank tree:
//!
//! * **capacity** — every op pinned (by the decided banks of its operands)
//!   to a cluster occupies one of that cluster's `II·n_fus` kernel slots,
//!   and every forced cross-bank copy of a loop-variant value occupies a
//!   slot (embedded model) or a bus/port transfer (copy-unit model); any
//!   overflow kills the subtree;
//! * **recurrence** — cross-bank flow edges between decided endpoints are
//!   lengthened by the copy latency and the DDG is probed for a positive
//!   cycle at the target II ([`vliw_ddg::Ddg::is_feasible_adjusted`]);
//! * **modulo resources** — at each leaf (and inside the fixed-II search
//!   itself) the modulo reservation table rejects residue assignments that
//!   oversubscribe a functional unit, bus, or port.
//!
//! Value ordering reuses `vliw-exact`'s admissible edge-cost bound
//! (cheapest-copy-first), branch ordering its most-constrained-first
//! register order, and bank-permutation symmetry is broken on homogeneous
//! machines exactly as in the exact partitioner. The greedy pipeline seeds
//! the incumbent twice over: its II is the upper bound the outer loop walks
//! down from, and its partition is probed first at every target II (the
//! heuristic scheduler may simply have missed a schedule for it).
//!
//! The search is **anytime**: a wall-clock budget cuts it off, the greedy
//! incumbent is returned, and `optimal` is reported `false` with the lowest
//! *unproven* II as the honest bound — `optimal: true` is only ever claimed
//! when every II below the returned one was exhausted.
//!
//! Scope: "optimal" is with respect to the pipeline's copy-insertion policy
//! (`vliw_core::insert_copies` — shared copies placed after the reaching
//! def, invariant operands hoisted). The solver proves the best II over all
//! partitions and all modulo schedules of the resulting clustered bodies.

#![warn(missing_docs)]

pub mod fixed_ii;
pub mod solver;

pub use fixed_ii::{schedule_fixed_ii, FixedIiOutcome, FixedIiStats};
pub use solver::{solve_joint, JointConfig, JointResult, JointStats};
