//! # vliw-joint — joint (II, slot, bank) scheduling by constraint propagation
//!
//! The paper's pipeline — and `vliw-exact` on top of it — decides the bank
//! partition *given* a schedule: the RCG is built from the ideal schedule,
//! the partition is chosen to minimise a copy-cost proxy, and only then does
//! the modulo scheduler see the clustered loop. That ordering can lose whole
//! II cycles: a partition that looks more expensive on the RCG objective may
//! admit a schedule at a smaller initiation interval, and a schedule the
//! heuristic scheduler misses may exist for the very partition it was given.
//!
//! This crate searches the joint space. [`solve_joint`] runs an outer loop
//! over candidate IIs from a machine-independent lower bound up to the greedy
//! pipeline's achieved II (the incumbent), and for each target II runs a
//! branch-and-bound over **bank assignments** whose leaves invoke a
//! **complete fixed-II modulo scheduler** ([`schedule_fixed_ii`]). Three
//! propagators prune the bank tree:
//!
//! * **capacity** — every op pinned (by the decided banks of its operands)
//!   to a cluster occupies one of that cluster's `II·n_fus` kernel slots,
//!   and every forced cross-bank copy of a loop-variant value occupies a
//!   slot (embedded model) or a bus/port transfer (copy-unit model); any
//!   overflow kills the subtree;
//! * **recurrence** — cross-bank flow edges between decided endpoints are
//!   lengthened by the copy latency, and feasibility at the target II is
//!   maintained *incrementally* ([`vliw_ddg::IncrementalFeasibility`]):
//!   each decision re-relaxes only from the edges it adjusted, with
//!   trail-based O(changes) rollback on backtrack, instead of a full
//!   Bellman–Ford per node;
//! * **modulo resources** — at each leaf (and inside the fixed-II search
//!   itself) the modulo reservation table rejects residue assignments that
//!   oversubscribe a functional unit, bus, or port.
//!
//! Refuted decisions are **learned**: both conflict kinds carry an exact
//! `min_ii` threshold below which they stay infeasible (a positive cycle of
//! latency `L`/distance `D` up to `⌈L/D⌉`, a resource overflow up to its
//! water-fill II), so each is recorded as a `(vreg, bank)` no-good in a
//! [`NoGoodStore`] shared across the II ladder and replayed as a unit veto
//! at every later rung still under the threshold.
//!
//! Value ordering reuses `vliw-exact`'s admissible edge-cost bound
//! (cheapest-copy-first), branch ordering its most-constrained-first
//! register order, and bank-permutation symmetry is broken on homogeneous
//! machines exactly as in the exact partitioner. Two heuristics seed the
//! incumbent: the greedy pipeline's partition and a load-balance-aware
//! variant; the better II is the upper bound the ladder stops at, the
//! winning partition is probed first at every target II (the heuristic
//! scheduler may simply have missed a schedule for it), and the analytic
//! floor is sharpened by the water-fill forced-copy bound
//! ([`forced_copy_floor`]) so a seed sitting on the floor closes with zero
//! search.
//!
//! The search is **anytime**: a wall-clock budget cuts it off, the best
//! incumbent is returned, and `optimal` is reported `false` with the lowest
//! *unproven* II as the honest bound — `optimal: true` is only ever claimed
//! when every II below the returned one was exhausted. The result's
//! `seed_lb` records the pre-search analytic floor, so callers can tell a
//! truncated solve whose ladder certified rungs beyond analysis
//! (`lower_bound_ii > seed_lb`) from one that exceeded its budget before
//! finishing a single rung.
//!
//! Scope: "optimal" is with respect to the pipeline's copy-insertion policy
//! (`vliw_core::insert_copies` — shared copies placed after the reaching
//! def, invariant operands hoisted). The solver proves the best II over all
//! partitions and all modulo schedules of the resulting clustered bodies.

#![warn(missing_docs)]

pub mod fixed_ii;
pub mod propagate;
pub mod solver;

pub use fixed_ii::{schedule_fixed_ii, FixedIiOutcome, FixedIiStats};
pub use propagate::{
    capacity_conflict, forced_copy_floor, recurrence_feasible, NoGood, NoGoodKind, NoGoodStore,
};
pub use solver::{
    solve_joint, solve_joint_governed, solve_joint_traced, solve_joint_traced_governed,
    JointConfig, JointResult, JointStats,
};
