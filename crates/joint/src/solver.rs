//! The joint solver: an II outer loop over a bank-assignment
//! branch-and-bound whose leaves run the complete fixed-II scheduler.
//!
//! See the crate docs for the model. The division of labour:
//!
//! * [`solve_joint`] — two heuristic incumbents (the pipeline's greedy
//!   partition and a load-balance-aware seed), machine-level II lower bound
//!   sharpened by the water-fill forced-copy floor, ascending II loop with
//!   honest anytime semantics and a conflict store shared across the ladder;
//! * [`BankSearcher`](struct@self) (private) — DFS over bank assignments in
//!   `vliw-exact`'s most-constrained-first order. Decisions are checked
//!   before the child is expanded: replayed no-goods veto branches outright,
//!   the capacity propagator and an admissible future-copy bound price the
//!   committed demand, and recurrence feasibility is maintained
//!   *incrementally* ([`vliw_ddg::IncrementalFeasibility`]) — only edges
//!   whose copy-adjusted weight the decision changed are re-relaxed, with
//!   trail-based O(1) rollback on backtrack. Refuted decisions are recorded
//!   as `(vreg, bank)` no-goods with exact II thresholds and replayed as
//!   unit propagations at higher rungs of the ladder.

use crate::fixed_ii::{schedule_fixed_ii, FixedIiOutcome, FixedIiStats};
use crate::propagate::{
    capacity_conflict, capacity_counts, copy_extras, deciding_vregs, forced_copy_floor,
    future_copy_bound, variant_mask, NoGoodKind, NoGoodStore,
};
use std::time::{Duration, Instant};
use vliw_core::{
    assign_banks_caps, build_rcg, insert_copies, LoopContext, Partition, PartitionConfig,
};
use vliw_ddg::{build_ddg, Ddg, DepKind, IncrementalFeasibility};
use vliw_exact::bound::{assign_edge_cost, UNASSIGNED};
use vliw_governor::TrackedBudget;
use vliw_ir::Loop;
use vliw_machine::{ClusterId, CopyModel, MachineDesc};
use vliw_sched::{schedule_loop, ImsConfig, SchedProblem, Schedule};

/// Knobs for [`solve_joint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JointConfig {
    /// Wall-clock budget in milliseconds; `0` (the default) means unlimited
    /// (the search runs to proven optimality, however long that takes).
    pub budget_ms: u64,
}

/// Search effort counters, reported alongside every solve.
///
/// Prune attribution is split so regressions in one mechanism cannot hide
/// behind another: `pruned_propagation` counts refutations by the
/// capacity/recurrence propagators, `pruned_bound` counts refutations by the
/// admissible future-copy bound, and `nogood_hits` counts branches vetoed by
/// replayed conflicts before any propagator ran.
#[derive(Debug, Clone, Copy, Default)]
pub struct JointStats {
    /// Bank-assignment tree nodes expanded.
    pub bank_nodes: u64,
    /// Residue tree nodes expanded across all fixed-II leaf searches.
    pub sched_nodes: u64,
    /// Propagator invocations (capacity + recurrence at bank decisions,
    /// stage-count checks at schedule nodes).
    pub propagations: u64,
    /// Bank decisions refuted by a propagator (capacity overflow or a
    /// positive copy-adjusted recurrence cycle).
    pub pruned_propagation: u64,
    /// Bank decisions refuted by the admissible future-copy lower bound.
    pub pruned_bound: u64,
    /// Branches vetoed by a no-good replayed from an earlier conflict
    /// (same or lower II rung).
    pub nogood_hits: u64,
    /// Conflicts recorded into the ladder's no-good store.
    pub nogoods_recorded: u64,
    /// Wall-clock time of the whole solve.
    pub elapsed: Duration,
}

/// Outcome of [`solve_joint`].
#[derive(Debug, Clone)]
pub struct JointResult {
    /// Bank assignment of the witness (the greedy partition when the search
    /// never improved on it).
    pub partition: Partition,
    /// Modulo schedule of the **copy-inserted** body
    /// `insert_copies(body, &partition)` — re-derive the clustered loop from
    /// the partition (copy insertion is deterministic) to interpret it.
    pub schedule: Schedule,
    /// Achieved initiation interval (`schedule.ii`).
    pub ii: u32,
    /// The greedy partition-then-schedule pipeline's II on the same loop;
    /// `ii ≤ greedy_ii` always.
    pub greedy_ii: u32,
    /// Largest II proven unachievable plus one — i.e. every II below this
    /// was exhausted. Equals `ii` when `optimal`; below it, the honest gap
    /// a budget-truncated search leaves open.
    pub lower_bound_ii: u32,
    /// The pre-search analytic floor (machine bound ∨ RecII ∨ water-fill
    /// forced-copy floor). `lower_bound_ii > seed_lb` on a truncated solve
    /// means the ladder certified rungs beyond what analysis alone proved.
    pub seed_lb: u32,
    /// Whether `ii` is provably minimal over all partitions and modulo
    /// schedules (under the pipeline's copy-insertion policy), rather than
    /// the search having been cut off by the budget.
    pub optimal: bool,
    /// Effort counters.
    pub stats: JointStats,
}

/// Machine-level II lower bound independent of any partition: recurrence
/// circuits (copies only lengthen them) and total issue width (copies only
/// add ops).
fn lower_bound_ii(body: &Loop, machine: &MachineDesc, rec_ii: u32) -> u32 {
    let width = machine.issue_width().max(1);
    let res = body.n_ops().div_ceil(width) as u32;
    rec_ii.max(res).max(1)
}

/// Schedule `body` under `part` exactly as the pipeline does: insert copies,
/// rebuild the DDG, pin ops to clusters, run IMS.
fn pipeline_schedule(body: &Loop, machine: &MachineDesc, part: &Partition) -> Schedule {
    let cl = insert_copies(body, part);
    let cddg = build_ddg(&cl.body, &machine.latencies);
    let problem = SchedProblem::clustered(&cl.body, machine, &cl.cluster_of);
    schedule_loop(&problem, &cddg, &ImsConfig::default())
        .expect("IMS with sequential fallback schedules every clustered loop")
}

/// A load-balance-aware seed partition: vregs in most-constrained-first
/// order, each to the bank with the lowest committed issue load (normalised
/// by FU count), ties broken by RCG cut cost. The greedy partitioner
/// optimises locality and routinely piles connected lanes onto one bank; on
/// wide low-pressure loops the resulting issue imbalance alone costs an II.
/// This seed trades a few copies for balance, and when its IMS schedule
/// already sits on the analytic floor the solve closes with zero search.
fn balanced_partition(body: &Loop, machine: &MachineDesc, rcg: &vliw_core::RcgGraph) -> Partition {
    let n_banks = machine.n_clusters();
    let n_vregs = body.n_vregs();
    let deciding = deciding_vregs(body);
    let mut pinned = vec![0u64; n_vregs];
    let mut load = vec![0u64; n_banks];
    for d in &deciding {
        match d {
            Some(v) => pinned[*v] += 1,
            // Ops no vreg decides pin to bank 0, exactly as in `leaf`.
            None => load[0] += 1,
        }
    }
    let adj = vliw_exact::dense_adjacency(rcg);
    let order = vliw_exact::branch_order(rcg);
    let mut assigned = vec![UNASSIGNED; n_vregs];
    for &v in &order {
        let mut best = 0u8;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for b in 0..n_banks as u8 {
            let fus = machine.clusters[b as usize].n_fus.max(1) as f64;
            let key = (
                (load[b as usize] + pinned[v]) as f64 / fus,
                assign_edge_cost(&adj[v], &assigned, b),
            );
            if key < best_key {
                best_key = key;
                best = b;
            }
        }
        assigned[v] = best;
        load[best as usize] += pinned[v];
    }
    Partition {
        bank_of: assigned
            .iter()
            .map(|&b| ClusterId(if b == UNASSIGNED { 0 } else { u32::from(b) }))
            .collect(),
        n_banks,
    }
}

/// Solve the joint (II, slot, bank) problem for `body` on `machine`.
///
/// `part_cfg` parameterises the RCG the greedy incumbent and the value
/// ordering are built from (the driver passes its partition config, so the
/// incumbent is exactly the pipeline's greedy result).
pub fn solve_joint(
    body: &Loop,
    machine: &MachineDesc,
    part_cfg: &PartitionConfig,
    cfg: &JointConfig,
) -> JointResult {
    solve_joint_traced_governed(body, machine, part_cfg, cfg, None).0
}

/// [`solve_joint`] under a server-granted [`TrackedBudget`]: the ladder
/// charges its working sets against the pool and polls the budget at the
/// same cadence as the wall-clock deadline, so pool exhaustion degrades to
/// the ordinary anytime truncation (best incumbent, `optimal = false`).
pub fn solve_joint_governed(
    body: &Loop,
    machine: &MachineDesc,
    part_cfg: &PartitionConfig,
    cfg: &JointConfig,
    budget: Option<&TrackedBudget>,
) -> JointResult {
    solve_joint_traced_governed(body, machine, part_cfg, cfg, budget).0
}

/// [`solve_joint`], additionally returning the no-good store the ladder
/// accumulated — property tests audit every recorded conflict against the
/// full (non-incremental) oracles.
pub fn solve_joint_traced(
    body: &Loop,
    machine: &MachineDesc,
    part_cfg: &PartitionConfig,
    cfg: &JointConfig,
) -> (JointResult, NoGoodStore) {
    solve_joint_traced_governed(body, machine, part_cfg, cfg, None)
}

/// [`solve_joint_traced`] with an optional resource budget (see
/// [`solve_joint_governed`]).
pub fn solve_joint_traced_governed(
    body: &Loop,
    machine: &MachineDesc,
    part_cfg: &PartitionConfig,
    cfg: &JointConfig,
    budget: Option<&TrackedBudget>,
) -> (JointResult, NoGoodStore) {
    let start = Instant::now();
    let deadline = (cfg.budget_ms > 0).then(|| start + Duration::from_millis(cfg.budget_ms));
    let mut stats = JointStats::default();
    let mut store = NoGoodStore::new(body.n_vregs(), machine.n_clusters());

    // Charge the ladder's base working set (DDG mirror, RCG, incumbents,
    // per-rung searcher state) before any of it is built. A pool refusal
    // here trips the budget; the dfs/probe polls below then truncate.
    if let Some(b) = budget {
        let base = (body.n_ops() * 128 + body.n_vregs() * 64) as u64;
        let _ = b.charge(base);
    }

    // Greedy incumbent: the paper's partition-then-schedule pipeline.
    let ctx = LoopContext::new(body, machine);
    let rcg = build_rcg(body, &ctx.ideal, &ctx.slack, part_cfg);
    let caps: Vec<usize> = machine.clusters.iter().map(|c| c.n_fus).collect();
    let greedy_part = assign_banks_caps(&rcg, &caps, part_cfg);
    let greedy_sched = pipeline_schedule(body, machine, &greedy_part);
    let greedy_ii = greedy_sched.ii;

    // Second incumbent: the balance-aware seed. Both are heuristic
    // schedules, so the better one caps the ladder; the `greedy_ii` the
    // result reports stays the pipeline's own number.
    let bal_part = balanced_partition(body, machine, &rcg);
    let bal_sched = pipeline_schedule(body, machine, &bal_part);
    let (inc_part, inc_sched) = if bal_sched.ii < greedy_ii {
        (bal_part, bal_sched)
    } else {
        (greedy_part, greedy_sched)
    };
    let inc_ii = inc_sched.ii;

    // Machine bound, then the water-fill forced-copy floor: IIs it refutes
    // are proven unachievable before any search runs.
    let lb = lower_bound_ii(body, machine, ctx.rec_ii);
    let lb = forced_copy_floor(body, machine, lb, greedy_ii);
    let finish = |partition: Partition,
                  schedule: Schedule,
                  lower_bound_ii: u32,
                  optimal: bool,
                  mut stats: JointStats| {
        stats.elapsed = start.elapsed();
        let ii = schedule.ii;
        JointResult {
            partition,
            schedule,
            ii,
            greedy_ii,
            lower_bound_ii,
            seed_lb: lb,
            optimal,
            stats,
        }
    };
    if inc_ii <= lb {
        // A heuristic already sits on the proven lower bound: optimal with
        // zero search.
        return (finish(inc_part, inc_sched, inc_ii, true, stats), store);
    }

    // Ascending targets: reaching `target` means every smaller II was
    // exhausted, so the first hit is optimal by construction. Conflicts
    // recorded at one rung replay as unit propagations at the next.
    for target in lb..inc_ii {
        if budget.is_some_and(|b| b.exceeded()) {
            return (finish(inc_part, inc_sched, target, false, stats), store);
        }
        store.activate(target);
        match search_ii(
            body, machine, &rcg, &ctx.ddg, &inc_part, target, deadline, budget, &mut stats,
            &mut store,
        ) {
            IiOutcome::Found(part, sched) => {
                return (finish(part, sched, target, true, stats), store);
            }
            IiOutcome::Infeasible => continue,
            IiOutcome::TimedOut => {
                // `target` was neither achieved nor refuted: report the
                // best incumbent with the gap left open.
                return (finish(inc_part, inc_sched, target, false, stats), store);
            }
        }
    }
    // Every II below the incumbent's is proven infeasible.
    (finish(inc_part, inc_sched, inc_ii, true, stats), store)
}

enum IiOutcome {
    Found(Partition, Schedule),
    Infeasible,
    TimedOut,
}

/// Exhaustive (mod bank symmetry) search for any partition that admits a
/// modulo schedule at exactly `target`.
#[allow(clippy::too_many_arguments)]
fn search_ii(
    body: &Loop,
    machine: &MachineDesc,
    rcg: &vliw_core::RcgGraph,
    ddg: &Ddg,
    seed_part: &Partition,
    target: u32,
    deadline: Option<Instant>,
    budget: Option<&TrackedBudget>,
    stats: &mut JointStats,
    store: &mut NoGoodStore,
) -> IiOutcome {
    // Per-rung working set: the searcher's marks/affected tables plus the
    // incremental maintainer's edge state. Charged for this rung only and
    // released when the rung's searcher is dropped — otherwise a long II
    // ladder accumulates dead rungs' charges and trips the budget on
    // solves that actually fit. The ladder's only persistent memory is
    // the no-good store, whose clauses are charged separately as they are
    // recorded.
    let rung_bytes = {
        let n_banks = machine.n_clusters();
        let n_vregs = body.n_vregs();
        (n_vregs * n_banks + ddg.edges().len() * 32 + n_vregs * 16) as u64
    };
    if let Some(b) = budget {
        if !b.charge(rung_bytes) {
            return IiOutcome::TimedOut;
        }
    }
    let out = search_ii_rung(
        body, machine, rcg, ddg, seed_part, target, deadline, budget, stats, store,
    );
    if let Some(b) = budget {
        b.uncharge(rung_bytes);
    }
    out
}

/// One rung of [`search_ii`], run entirely under that rung's charge.
#[allow(clippy::too_many_arguments)]
fn search_ii_rung(
    body: &Loop,
    machine: &MachineDesc,
    rcg: &vliw_core::RcgGraph,
    ddg: &Ddg,
    seed_part: &Partition,
    target: u32,
    deadline: Option<Instant>,
    budget: Option<&TrackedBudget>,
    stats: &mut JointStats,
    store: &mut NoGoodStore,
) -> IiOutcome {
    let n_banks = machine.n_clusters();
    let n_vregs = body.n_vregs();
    let copy_extra = copy_extras(body, machine);
    let deciding = deciding_vregs(body);
    let variant = variant_mask(body);
    let homogeneous = machine.clusters.windows(2).all(|w| {
        (w[0].n_fus, w[0].int_regs, w[0].float_regs) == (w[1].n_fus, w[1].int_regs, w[1].float_regs)
    });

    // The incremental recurrence maintainer starts from the unadjusted
    // system; each bank decision raises only the flow edges it commits a
    // copy on. `affected[v]` lists the edges whose adjustment can change
    // when `v` is decided (its defs' out-flows and the flows into ops it
    // decides).
    let incr = IncrementalFeasibility::for_ddg(ddg, target, |_| 0);
    let mut affected: Vec<Vec<u32>> = vec![Vec::new(); n_vregs];
    for (i, e) in ddg.edges().iter().enumerate() {
        if e.kind != DepKind::Flow {
            continue;
        }
        let Some(d) = body.op(e.from).def else {
            continue;
        };
        affected[d.index()].push(i as u32);
        if let Some(t) = deciding[e.to.index()] {
            if t != d.index() {
                affected[t].push(i as u32);
            }
        }
    }

    let mut s = BankSearcher {
        body,
        machine,
        target,
        n_banks,
        adj: vliw_exact::dense_adjacency(rcg),
        order: vliw_exact::branch_order(rcg),
        assigned: vec![UNASSIGNED; n_vregs],
        used: 0,
        homogeneous,
        deciding,
        variant,
        copy_extra,
        ddg,
        incr,
        affected,
        deadline,
        budget,
        timed_out: false,
        stats,
        store,
        copy_marks: vec![false; n_vregs * n_banks],
        found: None,
    };

    // Root checks: an empty assignment can already overflow (ops with no
    // operands pin to cluster 0) or carry an intrinsic positive cycle.
    if !s.incr.root_feasible()
        || capacity_conflict(
            body,
            machine,
            target,
            &s.assigned,
            &s.deciding,
            &s.variant,
            &mut s.copy_marks,
        )
        .is_some()
    {
        return IiOutcome::Infeasible;
    }

    // Incumbent seeding: probe the incumbent's partition first — the
    // heuristic scheduler may simply have missed a schedule at this II
    // for it.
    if s.try_partition(seed_part.clone()) {
        let (p, sched) = s.found.take().expect("probe succeeded");
        return IiOutcome::Found(p, sched);
    }
    if !s.timed_out && s.dfs(0) {
        let (p, sched) = s.found.take().expect("dfs succeeded");
        return IiOutcome::Found(p, sched);
    }
    if s.timed_out {
        IiOutcome::TimedOut
    } else {
        IiOutcome::Infeasible
    }
}

struct BankSearcher<'a> {
    body: &'a Loop,
    machine: &'a MachineDesc,
    target: u32,
    n_banks: usize,
    /// RCG adjacency, dense indices (`vliw_exact::dense_adjacency`).
    adj: Vec<Vec<(usize, f64)>>,
    /// Most-constrained-first vreg order (`vliw_exact::branch_order`).
    order: Vec<usize>,
    assigned: Vec<u8>,
    /// Occupied banks are always the prefix `0..used` (symmetry breaking).
    used: usize,
    /// All clusters identical ⇒ bank permutations are true symmetries.
    homogeneous: bool,
    /// See [`deciding_vregs`].
    deciding: Vec<Option<usize>>,
    /// See [`variant_mask`].
    variant: Vec<bool>,
    /// See [`copy_extras`].
    copy_extra: Vec<i64>,
    /// The *original* body's DDG (pre-copy-insertion).
    ddg: &'a Ddg,
    /// Incremental copy-adjusted recurrence feasibility at `target`.
    incr: IncrementalFeasibility,
    /// Per vreg: DDG edge indices whose adjustment its decision can change.
    affected: Vec<Vec<u32>>,
    deadline: Option<Instant>,
    /// Server-granted resource budget; polled with the deadline and charged
    /// for every conflict recorded into the no-good store.
    budget: Option<&'a TrackedBudget>,
    timed_out: bool,
    stats: &'a mut JointStats,
    store: &'a mut NoGoodStore,
    /// Dense `(vreg, bank)` dedup marks for forced-copy counting.
    copy_marks: Vec<bool>,
    found: Option<(Partition, Schedule)>,
}

impl BankSearcher<'_> {
    /// Copy adjustment the current assignment commits on DDG edge `ei`.
    fn edge_extra(&self, ei: usize) -> i64 {
        let e = &self.ddg.edges()[ei];
        debug_assert_eq!(e.kind, DepKind::Flow);
        let v = self
            .body
            .op(e.from)
            .def
            .expect("affected edges have a defining source");
        let bv = self.assigned[v.index()];
        if bv == UNASSIGNED {
            return 0;
        }
        let bt = match self.deciding[e.to.index()] {
            Some(dv) => self.assigned[dv],
            None => 0,
        };
        if bt == UNASSIGNED || bt == bv {
            return 0;
        }
        self.copy_extra[v.index()]
    }

    /// Check the decision `v → assigned[v]` just made: capacity propagation,
    /// the admissible future-copy bound, then incremental recurrence
    /// propagation. `true` leaves an open maintainer frame the caller must
    /// pop after exploring the child; `false` means the child is refuted
    /// (and the refutation recorded as a no-good) with no frame left open.
    fn decide_ok(&mut self, v: usize) -> bool {
        // Capacity: only forced consumption is counted, so a conflict here
        // refutes every completion.
        self.stats.propagations += 1;
        if let Some(conf) = capacity_conflict(
            self.body,
            self.machine,
            self.target,
            &self.assigned,
            &self.deciding,
            &self.variant,
            &mut self.copy_marks,
        ) {
            let lits = conf.literals.len() as u64;
            if self
                .store
                .record(conf.literals, conf.min_ii, NoGoodKind::Resource)
            {
                self.stats.nogoods_recorded += 1;
                self.charge_nogood(lits);
            }
            self.stats.pruned_propagation += 1;
            return false;
        }
        // Admissible bound: copies the undecided vregs must still pay, on
        // top of the committed demand.
        let fut = future_copy_bound(
            self.body,
            self.n_banks,
            &self.assigned,
            &self.deciding,
            &self.variant,
            &mut self.copy_marks,
        );
        if fut > 0 {
            let c = capacity_counts(
                self.body,
                self.n_banks,
                &self.assigned,
                &self.deciding,
                &self.variant,
                &mut self.copy_marks,
            );
            let ii = self.target as usize;
            let fits = match self.machine.copy_model {
                CopyModel::Embedded => {
                    self.body.n_ops() + c.total_copies + fut <= ii * self.machine.issue_width()
                }
                CopyModel::CopyUnit { busses, .. } => c.total_copies + fut <= ii * busses,
            };
            if !fits {
                self.stats.pruned_bound += 1;
                return false;
            }
        }
        // Recurrence: raise exactly the edges this decision adjusted and
        // re-relax from them.
        self.stats.propagations += 1;
        self.incr.push_frame();
        for i in 0..self.affected[v].len() {
            let ei = self.affected[v][i] as usize;
            let extra = self.edge_extra(ei);
            if extra > 0 {
                let e = &self.ddg.edges()[ei];
                let w = e.latency + extra - self.target as i64 * e.distance as i64;
                self.incr.set_weight(ei, w);
            }
        }
        if self.incr.propagate() {
            return true;
        }
        // The maintainer rolled the frame back and named a positive cycle:
        // record it with its exact II threshold.
        self.record_cycle_nogood();
        self.stats.pruned_propagation += 1;
        false
    }

    /// Turn the maintainer's conflict cycle into a dependence no-good:
    /// literals are the cross-bank decisions carrying copies on the cycle,
    /// and the threshold is the first II the cycle fits under.
    fn record_cycle_nogood(&mut self) {
        let mut lits: Vec<(u32, u8)> = Vec::new();
        let (mut lat, mut dist) = (0i64, 0u64);
        for i in 0..self.incr.conflict_cycle().len() {
            let ei = self.incr.conflict_cycle()[i] as usize;
            let e = self.ddg.edges()[ei];
            lat += e.latency;
            dist += e.distance as u64;
            if e.kind != DepKind::Flow {
                continue;
            }
            let Some(dv) = self.body.op(e.from).def else {
                continue;
            };
            let extra = self.edge_extra(ei);
            if extra > 0 {
                lat += extra;
                lits.push((dv.index() as u32, self.assigned[dv.index()]));
                if let Some(t) = self.deciding[e.to.index()] {
                    lits.push((t as u32, self.assigned[t]));
                }
            }
        }
        if dist == 0 || lat <= 0 {
            return; // defensive: not a replayable recurrence conflict
        }
        let min_ii = (lat as u64).div_ceil(dist).min(u32::MAX as u64) as u32;
        let n_lits = lits.len() as u64;
        if self.store.record(lits, min_ii, NoGoodKind::Dependence) {
            self.stats.nogoods_recorded += 1;
            self.charge_nogood(n_lits);
        }
    }

    /// Charge a freshly-recorded no-good against the pool: the store keeps
    /// it for the rest of the ladder, so learned state is the one search
    /// structure that genuinely accumulates. A refused charge trips the
    /// budget; the next `dfs` poll unwinds.
    fn charge_nogood(&mut self, n_lits: u64) {
        if let Some(b) = self.budget {
            if !b.charge(48 + 8 * n_lits) {
                self.timed_out = true;
            }
        }
    }

    /// Evaluate one complete partition: insert copies, rebuild the DDG, and
    /// run the complete fixed-II scheduler. `true` iff a schedule was found
    /// (stored in `self.found`).
    fn try_partition(&mut self, part: Partition) -> bool {
        let cl = insert_copies(self.body, &part);
        let cddg = build_ddg(&cl.body, &self.machine.latencies);
        let problem = SchedProblem::clustered(&cl.body, self.machine, &cl.cluster_of);
        let mut fstats = FixedIiStats::default();
        let out = schedule_fixed_ii(&problem, &cddg, self.target, self.deadline, &mut fstats);
        self.stats.sched_nodes += fstats.nodes;
        self.stats.propagations += fstats.q_checks;
        match out {
            FixedIiOutcome::Found(sched) => {
                self.found = Some((part, sched));
                true
            }
            FixedIiOutcome::Infeasible => false,
            FixedIiOutcome::TimedOut => {
                self.timed_out = true;
                false
            }
        }
    }

    fn leaf(&mut self) -> bool {
        let part = Partition {
            bank_of: self
                .assigned
                .iter()
                .map(|&b| ClusterId(u32::from(b)))
                .collect(),
            n_banks: self.n_banks,
        };
        self.try_partition(part)
    }

    fn dfs(&mut self, depth: usize) -> bool {
        if self.timed_out {
            return false;
        }
        self.stats.bank_nodes += 1;
        if self.stats.bank_nodes & 63 == 0 {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.timed_out = true;
                    return false;
                }
            }
            if self.budget.is_some_and(|b| b.exceeded()) {
                self.timed_out = true;
                return false;
            }
        }
        if depth == self.order.len() {
            return self.leaf();
        }
        let v = self.order[depth];
        let cand = if self.homogeneous {
            (self.used + 1).min(self.n_banks)
        } else {
            self.n_banks
        } as u8;
        // Cheapest committed copy-cost first: feasible leaves (which tend to
        // need few copies) surface early.
        let mut branches: Vec<(f64, u8)> = (0..cand)
            .map(|b| (assign_edge_cost(&self.adj[v], &self.assigned, b), b))
            .collect();
        branches.sort_by(|x, y| {
            x.0.partial_cmp(&y.0)
                .expect("edge costs are finite")
                .then(x.1.cmp(&y.1))
        });
        for (_, b) in branches {
            if self.store.forbids(&self.assigned, v, b) {
                self.stats.nogood_hits += 1;
                continue;
            }
            let prev_used = self.used;
            self.assigned[v] = b;
            if b as usize == self.used {
                self.used += 1;
            }
            let ok = self.decide_ok(v);
            let hit = ok && self.dfs(depth + 1);
            if hit {
                return true;
            }
            if ok {
                self.incr.pop_frame();
            }
            self.assigned[v] = UNASSIGNED;
            self.used = prev_used;
            if self.timed_out {
                return false;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{LoopBuilder, RegClass};
    use vliw_sched::verify_schedule;

    fn daxpy(unroll: usize) -> Loop {
        let mut b = LoopBuilder::new("daxpy");
        let x = b.array("x", RegClass::Float, 1024);
        let y = b.array("y", RegClass::Float, 1024);
        let a = b.live_in_float("a");
        for u in 0..unroll {
            let xv = b.load(x, u as i64, unroll as i64);
            let yv = b.load(y, u as i64, unroll as i64);
            let p = b.fmul(a, xv);
            let s = b.fadd(yv, p);
            b.store(y, u as i64, unroll as i64, s);
        }
        b.finish(128)
    }

    fn check_witness(body: &Loop, machine: &MachineDesc, r: &JointResult) {
        // The witness must be a legal schedule of the copy-inserted body.
        let cl = insert_copies(body, &r.partition);
        let cddg = build_ddg(&cl.body, &machine.latencies);
        let problem = SchedProblem::clustered(&cl.body, machine, &cl.cluster_of);
        assert_eq!(r.schedule.times.len(), cl.body.n_ops());
        verify_schedule(&problem, &cddg, &r.schedule).unwrap();
        assert_eq!(r.schedule.ii, r.ii);
        assert!(r.ii <= r.greedy_ii);
        assert!(r.lower_bound_ii <= r.ii);
        if r.optimal {
            assert_eq!(r.lower_bound_ii, r.ii);
        }
    }

    #[test]
    fn unlimited_budget_closes_and_never_loses_to_greedy() {
        for machine in [
            MachineDesc::embedded(2, 8),
            MachineDesc::embedded(4, 4),
            MachineDesc::copy_unit(2, 8),
            MachineDesc::copy_unit(4, 4),
        ] {
            let l = daxpy(3);
            let r = solve_joint(
                &l,
                &machine,
                &PartitionConfig::default(),
                &JointConfig::default(),
            );
            assert!(r.optimal, "unlimited budget must close ({})", machine.name);
            check_witness(&l, &machine, &r);
        }
    }

    #[test]
    fn monolithic_machine_degenerates_to_pure_scheduling() {
        let l = daxpy(2);
        let m = MachineDesc::monolithic(4);
        let r = solve_joint(&l, &m, &PartitionConfig::default(), &JointConfig::default());
        assert!(r.optimal);
        // 10 ops, width 4, no recurrence: II = 3 is the resource bound.
        assert_eq!(r.ii, 3);
        check_witness(&l, &m, &r);
    }

    #[test]
    fn recurrence_loop_closes_at_rec_ii() {
        // s = a*s + x[i] on a clustered machine: RecII dominates and the
        // greedy pipeline should already sit on it — proven, not assumed.
        let mut b = LoopBuilder::new("rec1");
        let x = b.array("x", RegClass::Float, 64);
        let a = b.live_in_float("a");
        let s = b.live_in_float_val("s", 0.0);
        let xv = b.load(x, 0, 1);
        let t = b.fmul(a, s);
        b.fadd_into(s, t, xv);
        b.live_out(s);
        let l = b.finish(64);
        let m = MachineDesc::embedded(2, 8);
        let r = solve_joint(&l, &m, &PartitionConfig::default(), &JointConfig::default());
        assert!(r.optimal);
        check_witness(&l, &m, &r);
    }

    #[test]
    fn result_is_deterministic() {
        let l = daxpy(3);
        let m = MachineDesc::embedded(4, 4);
        let cfg = JointConfig::default();
        let r1 = solve_joint(&l, &m, &PartitionConfig::default(), &cfg);
        let r2 = solve_joint(&l, &m, &PartitionConfig::default(), &cfg);
        assert_eq!(r1.ii, r2.ii);
        assert_eq!(r1.partition, r2.partition);
        assert_eq!(r1.schedule.times, r2.schedule.times);
    }

    #[test]
    fn empty_loop_is_trivially_optimal() {
        let l = LoopBuilder::new("empty").finish(1);
        let m = MachineDesc::embedded(2, 8);
        let r = solve_joint(&l, &m, &PartitionConfig::default(), &JointConfig::default());
        assert!(r.optimal);
        assert_eq!(r.ii, r.greedy_ii);
    }

    #[test]
    fn prune_attribution_is_split_not_lumped() {
        // A pressured loop on a narrow machine must exercise the search; the
        // counters the bench floors rely on must attribute its prunes. The
        // II=2 rung of this instance is a deep refutation (closing it takes
        // minutes in debug), so the test budgets the solve and checks the
        // anytime contract instead of optimality.
        let l = daxpy(6);
        let m = MachineDesc::embedded(4, 4);
        let r = solve_joint(
            &l,
            &m,
            &PartitionConfig::default(),
            &JointConfig { budget_ms: 50 },
        );
        check_witness(&l, &m, &r);
        let s = &r.stats;
        assert!(
            s.pruned_propagation + s.pruned_bound > 0,
            "a pressured search must attribute at least one prune: {s:?}"
        );
        assert!(
            s.pruned_propagation + s.pruned_bound + s.nogood_hits <= s.bank_nodes * 8 + 64,
            "prune counters out of range: {s:?}"
        );
    }
}
