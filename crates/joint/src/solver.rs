//! The joint solver: an II outer loop over a bank-assignment
//! branch-and-bound whose leaves run the complete fixed-II scheduler.
//!
//! See the crate docs for the model. The division of labour:
//!
//! * [`solve_joint`] — greedy incumbent, machine-level II lower bound,
//!   ascending II loop with honest anytime semantics;
//! * [`BankSearcher`](struct@self) (private) — DFS over bank assignments in
//!   `vliw-exact`'s most-constrained-first order with capacity and
//!   recurrence propagation, symmetry breaking on homogeneous machines, and
//!   cheapest-copy-first value ordering via the exact partitioner's
//!   admissible edge bound.

use crate::fixed_ii::{schedule_fixed_ii, FixedIiOutcome, FixedIiStats};
use std::time::{Duration, Instant};
use vliw_core::{
    assign_banks_caps, build_rcg, insert_copies, LoopContext, Partition, PartitionConfig,
};
use vliw_ddg::{build_ddg, Ddg, DepKind};
use vliw_exact::bound::{assign_edge_cost, UNASSIGNED};
use vliw_ir::{Loop, Opcode};
use vliw_machine::{ClusterId, CopyModel, MachineDesc};
use vliw_sched::{schedule_loop, ImsConfig, SchedProblem, Schedule};

/// Knobs for [`solve_joint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JointConfig {
    /// Wall-clock budget in milliseconds; `0` (the default) means unlimited
    /// (the search runs to proven optimality, however long that takes).
    pub budget_ms: u64,
}

/// Search effort counters, reported alongside every solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct JointStats {
    /// Bank-assignment tree nodes expanded.
    pub bank_nodes: u64,
    /// Residue tree nodes expanded across all fixed-II leaf searches.
    pub sched_nodes: u64,
    /// Propagator invocations (capacity + recurrence at bank nodes,
    /// stage-count checks at schedule nodes).
    pub propagations: u64,
    /// Wall-clock time of the whole solve.
    pub elapsed: Duration,
}

/// Outcome of [`solve_joint`].
#[derive(Debug, Clone)]
pub struct JointResult {
    /// Bank assignment of the witness (the greedy partition when the search
    /// never improved on it).
    pub partition: Partition,
    /// Modulo schedule of the **copy-inserted** body
    /// `insert_copies(body, &partition)` — re-derive the clustered loop from
    /// the partition (copy insertion is deterministic) to interpret it.
    pub schedule: Schedule,
    /// Achieved initiation interval (`schedule.ii`).
    pub ii: u32,
    /// The greedy partition-then-schedule pipeline's II on the same loop;
    /// `ii ≤ greedy_ii` always.
    pub greedy_ii: u32,
    /// Largest II proven unachievable plus one — i.e. every II below this
    /// was exhausted. Equals `ii` when `optimal`; below it, the honest gap
    /// a budget-truncated search leaves open.
    pub lower_bound_ii: u32,
    /// Whether `ii` is provably minimal over all partitions and modulo
    /// schedules (under the pipeline's copy-insertion policy), rather than
    /// the search having been cut off by the budget.
    pub optimal: bool,
    /// Effort counters.
    pub stats: JointStats,
}

/// Machine-level II lower bound independent of any partition: recurrence
/// circuits (copies only lengthen them) and total issue width (copies only
/// add ops).
fn lower_bound_ii(body: &Loop, machine: &MachineDesc, rec_ii: u32) -> u32 {
    let width = machine.issue_width().max(1);
    let res = body.n_ops().div_ceil(width) as u32;
    rec_ii.max(res).max(1)
}

/// Schedule `body` under `part` exactly as the pipeline does: insert copies,
/// rebuild the DDG, pin ops to clusters, run IMS.
fn pipeline_schedule(body: &Loop, machine: &MachineDesc, part: &Partition) -> Schedule {
    let cl = insert_copies(body, part);
    let cddg = build_ddg(&cl.body, &machine.latencies);
    let problem = SchedProblem::clustered(&cl.body, machine, &cl.cluster_of);
    schedule_loop(&problem, &cddg, &ImsConfig::default())
        .expect("IMS with sequential fallback schedules every clustered loop")
}

/// Solve the joint (II, slot, bank) problem for `body` on `machine`.
///
/// `part_cfg` parameterises the RCG the greedy incumbent and the value
/// ordering are built from (the driver passes its partition config, so the
/// incumbent is exactly the pipeline's greedy result).
pub fn solve_joint(
    body: &Loop,
    machine: &MachineDesc,
    part_cfg: &PartitionConfig,
    cfg: &JointConfig,
) -> JointResult {
    let start = Instant::now();
    let deadline = (cfg.budget_ms > 0).then(|| start + Duration::from_millis(cfg.budget_ms));
    let mut stats = JointStats::default();

    // Greedy incumbent: the paper's partition-then-schedule pipeline.
    let ctx = LoopContext::new(body, machine);
    let rcg = build_rcg(body, &ctx.ideal, &ctx.slack, part_cfg);
    let caps: Vec<usize> = machine.clusters.iter().map(|c| c.n_fus).collect();
    let greedy_part = assign_banks_caps(&rcg, &caps, part_cfg);
    let greedy_sched = pipeline_schedule(body, machine, &greedy_part);
    let greedy_ii = greedy_sched.ii;

    let lb = lower_bound_ii(body, machine, ctx.rec_ii);
    let finish = |partition: Partition,
                  schedule: Schedule,
                  lower_bound_ii: u32,
                  optimal: bool,
                  mut stats: JointStats| {
        stats.elapsed = start.elapsed();
        let ii = schedule.ii;
        JointResult {
            partition,
            schedule,
            ii,
            greedy_ii,
            lower_bound_ii,
            optimal,
            stats,
        }
    };
    if greedy_ii <= lb {
        // The heuristic already sits on the machine lower bound: proven
        // optimal with zero search.
        return finish(greedy_part, greedy_sched, greedy_ii, true, stats);
    }

    // Ascending targets: reaching `target` means every smaller II was
    // exhausted, so the first hit is optimal by construction.
    for target in lb..greedy_ii {
        match search_ii(
            body,
            machine,
            &rcg,
            &ctx.ddg,
            &greedy_part,
            target,
            deadline,
            &mut stats,
        ) {
            IiOutcome::Found(part, sched) => {
                return finish(part, sched, target, true, stats);
            }
            IiOutcome::Infeasible => continue,
            IiOutcome::TimedOut => {
                // `target` was neither achieved nor refuted: report the
                // greedy incumbent with the gap left open.
                return finish(greedy_part, greedy_sched, target, false, stats);
            }
        }
    }
    // Every II below the greedy one is proven infeasible.
    finish(greedy_part, greedy_sched, greedy_ii, true, stats)
}

enum IiOutcome {
    Found(Partition, Schedule),
    Infeasible,
    TimedOut,
}

/// Exhaustive (mod bank symmetry) search for any partition that admits a
/// modulo schedule at exactly `target`.
#[allow(clippy::too_many_arguments)]
fn search_ii(
    body: &Loop,
    machine: &MachineDesc,
    rcg: &vliw_core::RcgGraph,
    ddg: &Ddg,
    greedy_part: &Partition,
    target: u32,
    deadline: Option<Instant>,
    stats: &mut JointStats,
) -> IiOutcome {
    let n_banks = machine.n_clusters();
    let n_vregs = body.n_vregs();
    let copy_extra: Vec<i64> = (0..n_vregs)
        .map(|v| {
            let class = body.class_of(vliw_ir::VReg(v as u32));
            machine.latencies.of(Opcode::copy_for(class)) as i64
        })
        .collect();
    let deciding: Vec<Option<usize>> = body
        .ops
        .iter()
        .map(|o| o.def.or_else(|| o.uses.first().copied()).map(|v| v.index()))
        .collect();
    let variant: Vec<bool> = (0..n_vregs)
        .map(|v| !body.is_invariant(vliw_ir::VReg(v as u32)))
        .collect();
    let homogeneous = machine.clusters.windows(2).all(|w| {
        (w[0].n_fus, w[0].int_regs, w[0].float_regs) == (w[1].n_fus, w[1].int_regs, w[1].float_regs)
    });

    let mut s = BankSearcher {
        body,
        machine,
        target,
        n_banks,
        adj: vliw_exact::dense_adjacency(rcg),
        order: vliw_exact::branch_order(rcg),
        assigned: vec![UNASSIGNED; n_vregs],
        used: 0,
        homogeneous,
        deciding,
        variant,
        copy_extra,
        ddg,
        deadline,
        timed_out: false,
        stats,
        scratch: Vec::new(),
        copy_marks: vec![false; n_vregs * n_banks],
        found: None,
    };

    // Incumbent seeding: probe the greedy partition first — the heuristic
    // scheduler may simply have missed a schedule at this II for it.
    if s.try_partition(greedy_part.clone()) {
        let (p, sched) = s.found.take().expect("probe succeeded");
        return IiOutcome::Found(p, sched);
    }
    if !s.timed_out && s.dfs(0) {
        let (p, sched) = s.found.take().expect("dfs succeeded");
        return IiOutcome::Found(p, sched);
    }
    if s.timed_out {
        IiOutcome::TimedOut
    } else {
        IiOutcome::Infeasible
    }
}

struct BankSearcher<'a> {
    body: &'a Loop,
    machine: &'a MachineDesc,
    target: u32,
    n_banks: usize,
    /// RCG adjacency, dense indices (`vliw_exact::dense_adjacency`).
    adj: Vec<Vec<(usize, f64)>>,
    /// Most-constrained-first vreg order (`vliw_exact::branch_order`).
    order: Vec<usize>,
    assigned: Vec<u8>,
    /// Occupied banks are always the prefix `0..used` (symmetry breaking).
    used: usize,
    /// All clusters identical ⇒ bank permutations are true symmetries.
    homogeneous: bool,
    /// Per op: the vreg whose bank decides the op's cluster (its def, or —
    /// for stores — its first use), mirroring `vliw_core::copyins`.
    deciding: Vec<Option<usize>>,
    /// Per vreg: defined in the body (invariant operands hoist their copies
    /// out of the kernel and cost nothing here).
    variant: Vec<bool>,
    /// Per vreg: kernel copy latency of its register class.
    copy_extra: Vec<i64>,
    /// The *original* body's DDG (pre-copy-insertion).
    ddg: &'a Ddg,
    deadline: Option<Instant>,
    timed_out: bool,
    stats: &'a mut JointStats,
    scratch: Vec<i64>,
    /// Dense `(vreg, bank)` dedup marks for forced-copy counting.
    copy_marks: Vec<bool>,
    found: Option<(Partition, Schedule)>,
}

impl BankSearcher<'_> {
    /// Bank of op `o` under the current partial assignment, if decided.
    #[inline]
    fn op_bank(&self, o: usize) -> u8 {
        match self.deciding[o] {
            Some(v) => self.assigned[v],
            None => 0, // no operands at all: copyins pins to cluster 0
        }
    }

    /// Kernel-slot capacity propagation. Sound: only *forced* consumption is
    /// counted — ops pinned by decided operands, plus one shared kernel copy
    /// per decided `(variant def, consuming bank)` pair that crosses banks.
    fn capacity_ok(&mut self) -> bool {
        self.stats.propagations += 1;
        let ii = self.target as usize;
        let mut pinned = vec![0usize; self.n_banks];
        for o in 0..self.body.n_ops() {
            let b = self.op_bank(o);
            if b != UNASSIGNED {
                pinned[b as usize] += 1;
            }
        }
        // Forced copies, deduplicated per (def vreg, destination bank):
        // copyins emits one shared copy per reaching def and consuming
        // cluster, so this undercounts (multi-def vregs) — never over.
        let mut marked: Vec<usize> = Vec::new();
        let mut copies_into = vec![0usize; self.n_banks];
        let mut total_copies = 0usize;
        for op in &self.body.ops {
            let bo = self.op_bank(op.id.index());
            if bo == UNASSIGNED {
                continue;
            }
            for &u in &op.uses {
                let bu = self.assigned[u.index()];
                if bu == UNASSIGNED || bu == bo || !self.variant[u.index()] {
                    continue;
                }
                let mark = u.index() * self.n_banks + bo as usize;
                if !self.copy_marks[mark] {
                    self.copy_marks[mark] = true;
                    marked.push(mark);
                    copies_into[bo as usize] += 1;
                    total_copies += 1;
                }
            }
        }
        for m in marked {
            self.copy_marks[m] = false;
        }
        match self.machine.copy_model {
            CopyModel::Embedded => {
                // Copies occupy FU slots on their destination cluster.
                self.body.n_ops() + total_copies <= ii * self.machine.issue_width()
                    && (0..self.n_banks).all(|b| {
                        pinned[b] + copies_into[b] <= ii * self.machine.fus_in(ClusterId(b as u32))
                    })
            }
            CopyModel::CopyUnit {
                busses,
                ports_per_cluster,
            } => {
                total_copies <= ii * busses
                    && (0..self.n_banks).all(|b| {
                        pinned[b] <= ii * self.machine.fus_in(ClusterId(b as u32))
                            && copies_into[b] <= ii * ports_per_cluster
                    })
            }
        }
    }

    /// Recurrence propagation: cross-bank flow edges between decided
    /// endpoints carry a copy, lengthening their circuits. A relaxation of
    /// the true clustered DDG (undecided edges keep their base latency), so
    /// infeasibility here refutes every completion.
    fn rec_ok(&mut self) -> bool {
        self.stats.propagations += 1;
        let assigned = &self.assigned;
        let deciding = &self.deciding;
        let body = self.body;
        let copy_extra = &self.copy_extra;
        self.ddg.is_feasible_adjusted(
            self.target,
            |e| {
                if e.kind != DepKind::Flow {
                    return 0;
                }
                // A flow edge runs def → use; the def op's (unique) def
                // register is the value that would need copying.
                let Some(v) = body.op(e.from).def else {
                    return 0;
                };
                let bv = assigned[v.index()];
                if bv == UNASSIGNED {
                    return 0;
                }
                let bt = match deciding[e.to.index()] {
                    Some(dv) => assigned[dv],
                    None => 0,
                };
                if bt == UNASSIGNED || bt == bv {
                    return 0;
                }
                copy_extra[v.index()]
            },
            &mut self.scratch,
        )
    }

    /// Evaluate one complete partition: insert copies, rebuild the DDG, and
    /// run the complete fixed-II scheduler. `true` iff a schedule was found
    /// (stored in `self.found`).
    fn try_partition(&mut self, part: Partition) -> bool {
        let cl = insert_copies(self.body, &part);
        let cddg = build_ddg(&cl.body, &self.machine.latencies);
        let problem = SchedProblem::clustered(&cl.body, self.machine, &cl.cluster_of);
        let mut fstats = FixedIiStats::default();
        let out = schedule_fixed_ii(&problem, &cddg, self.target, self.deadline, &mut fstats);
        self.stats.sched_nodes += fstats.nodes;
        self.stats.propagations += fstats.q_checks;
        match out {
            FixedIiOutcome::Found(sched) => {
                self.found = Some((part, sched));
                true
            }
            FixedIiOutcome::Infeasible => false,
            FixedIiOutcome::TimedOut => {
                self.timed_out = true;
                false
            }
        }
    }

    fn leaf(&mut self) -> bool {
        let part = Partition {
            bank_of: self
                .assigned
                .iter()
                .map(|&b| ClusterId(u32::from(b)))
                .collect(),
            n_banks: self.n_banks,
        };
        self.try_partition(part)
    }

    fn dfs(&mut self, depth: usize) -> bool {
        if self.timed_out {
            return false;
        }
        self.stats.bank_nodes += 1;
        if self.stats.bank_nodes & 63 == 0 {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.timed_out = true;
                    return false;
                }
            }
        }
        if !self.capacity_ok() || !self.rec_ok() {
            return false;
        }
        if depth == self.order.len() {
            return self.leaf();
        }
        let v = self.order[depth];
        let cand = if self.homogeneous {
            (self.used + 1).min(self.n_banks)
        } else {
            self.n_banks
        } as u8;
        // Cheapest committed copy-cost first: feasible leaves (which tend to
        // need few copies) surface early.
        let mut branches: Vec<(f64, u8)> = (0..cand)
            .map(|b| (assign_edge_cost(&self.adj[v], &self.assigned, b), b))
            .collect();
        branches.sort_by(|x, y| {
            x.0.partial_cmp(&y.0)
                .expect("edge costs are finite")
                .then(x.1.cmp(&y.1))
        });
        for (_, b) in branches {
            let prev_used = self.used;
            self.assigned[v] = b;
            if b as usize == self.used {
                self.used += 1;
            }
            let hit = self.dfs(depth + 1);
            self.assigned[v] = UNASSIGNED;
            self.used = prev_used;
            if hit {
                return true;
            }
            if self.timed_out {
                return false;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{LoopBuilder, RegClass};
    use vliw_sched::verify_schedule;

    fn daxpy(unroll: usize) -> Loop {
        let mut b = LoopBuilder::new("daxpy");
        let x = b.array("x", RegClass::Float, 1024);
        let y = b.array("y", RegClass::Float, 1024);
        let a = b.live_in_float("a");
        for u in 0..unroll {
            let xv = b.load(x, u as i64, unroll as i64);
            let yv = b.load(y, u as i64, unroll as i64);
            let p = b.fmul(a, xv);
            let s = b.fadd(yv, p);
            b.store(y, u as i64, unroll as i64, s);
        }
        b.finish(128)
    }

    fn check_witness(body: &Loop, machine: &MachineDesc, r: &JointResult) {
        // The witness must be a legal schedule of the copy-inserted body.
        let cl = insert_copies(body, &r.partition);
        let cddg = build_ddg(&cl.body, &machine.latencies);
        let problem = SchedProblem::clustered(&cl.body, machine, &cl.cluster_of);
        assert_eq!(r.schedule.times.len(), cl.body.n_ops());
        verify_schedule(&problem, &cddg, &r.schedule).unwrap();
        assert_eq!(r.schedule.ii, r.ii);
        assert!(r.ii <= r.greedy_ii);
        assert!(r.lower_bound_ii <= r.ii);
        if r.optimal {
            assert_eq!(r.lower_bound_ii, r.ii);
        }
    }

    #[test]
    fn unlimited_budget_closes_and_never_loses_to_greedy() {
        for machine in [
            MachineDesc::embedded(2, 8),
            MachineDesc::embedded(4, 4),
            MachineDesc::copy_unit(2, 8),
            MachineDesc::copy_unit(4, 4),
        ] {
            let l = daxpy(3);
            let r = solve_joint(
                &l,
                &machine,
                &PartitionConfig::default(),
                &JointConfig::default(),
            );
            assert!(r.optimal, "unlimited budget must close ({})", machine.name);
            check_witness(&l, &machine, &r);
        }
    }

    #[test]
    fn monolithic_machine_degenerates_to_pure_scheduling() {
        let l = daxpy(2);
        let m = MachineDesc::monolithic(4);
        let r = solve_joint(&l, &m, &PartitionConfig::default(), &JointConfig::default());
        assert!(r.optimal);
        // 10 ops, width 4, no recurrence: II = 3 is the resource bound.
        assert_eq!(r.ii, 3);
        check_witness(&l, &m, &r);
    }

    #[test]
    fn recurrence_loop_closes_at_rec_ii() {
        // s = a*s + x[i] on a clustered machine: RecII dominates and the
        // greedy pipeline should already sit on it — proven, not assumed.
        let mut b = LoopBuilder::new("rec1");
        let x = b.array("x", RegClass::Float, 64);
        let a = b.live_in_float("a");
        let s = b.live_in_float_val("s", 0.0);
        let xv = b.load(x, 0, 1);
        let t = b.fmul(a, s);
        b.fadd_into(s, t, xv);
        b.live_out(s);
        let l = b.finish(64);
        let m = MachineDesc::embedded(2, 8);
        let r = solve_joint(&l, &m, &PartitionConfig::default(), &JointConfig::default());
        assert!(r.optimal);
        check_witness(&l, &m, &r);
    }

    #[test]
    fn result_is_deterministic() {
        let l = daxpy(3);
        let m = MachineDesc::embedded(4, 4);
        let cfg = JointConfig::default();
        let r1 = solve_joint(&l, &m, &PartitionConfig::default(), &cfg);
        let r2 = solve_joint(&l, &m, &PartitionConfig::default(), &cfg);
        assert_eq!(r1.ii, r2.ii);
        assert_eq!(r1.partition, r2.partition);
        assert_eq!(r1.schedule.times, r2.schedule.times);
    }

    #[test]
    fn empty_loop_is_trivially_optimal() {
        let l = LoopBuilder::new("empty").finish(1);
        let m = MachineDesc::embedded(2, 8);
        let r = solve_joint(&l, &m, &PartitionConfig::default(), &JointConfig::default());
        assert!(r.optimal);
        assert_eq!(r.ii, r.greedy_ii);
    }
}
