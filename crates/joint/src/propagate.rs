//! Propagation oracles, conflict (no-good) learning, and admissible
//! forced-copy bounds for the bank search.
//!
//! The bank DFS prunes a partial assignment when it can *prove* no
//! completion schedules at the target II. Each proof names a reason, and
//! every reason here is of the same shape: a set of `(vreg, bank)` literals
//! plus the smallest II at which the conflict dissolves. That uniform shape
//! is what lets conflicts learned at `II = k` replay as unit propagations at
//! `II = k + 1` (and beyond) without re-derivation:
//!
//! * **dependence conflicts** come from a positive cycle in the copy-
//!   adjusted dependence graph. A cycle with total latency `L` (copies
//!   included) and total distance `D` is violated at every `II < ceil(L/D)`
//!   — the literals are the cross-bank decisions that committed the copies,
//!   and the threshold is exact, so replay needs no re-validation;
//! * **resource conflicts** come from a kernel-slot or copy-bus capacity
//!   overflow. A constraint demanding `C` slots of a resource with `S`
//!   copies per cycle is violated at every `II < ceil(C/S)` — the
//!   re-validation the II ladder needs is folded into the recorded
//!   threshold at learning time.
//!
//! The module also hosts the non-incremental oracles ([`capacity_conflict`],
//! [`recurrence_feasible`]) shared between the searcher and the property
//! tests that audit recorded no-goods, and the water-fill lower bound
//! ([`forced_copy_floor`]) that prices the copies *any* partition must pay.

use vliw_ddg::Ddg;
use vliw_exact::bound::UNASSIGNED;
use vliw_ir::Loop;
use vliw_machine::{ClusterId, CopyModel, MachineDesc};

/// Why a recorded conflict holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoGoodKind {
    /// A copy-lengthened recurrence cycle exceeds the II.
    Dependence,
    /// Pinned ops plus forced copies overflow a kernel-slot or bus budget.
    Resource,
}

/// A learned conflict: any assignment containing all `literals` is
/// infeasible at every target `II < min_ii`.
#[derive(Debug, Clone)]
pub struct NoGood {
    /// `(vreg, bank)` decisions that jointly force the conflict, sorted by
    /// vreg index.
    pub literals: Vec<(u32, u8)>,
    /// First II at which the conflicting resource fits / cycle relaxes.
    pub min_ii: u32,
    /// What proved it.
    pub kind: NoGoodKind,
}

/// Conflicts recorded across the ascending-II ladder, indexed for unit
/// propagation: before branching `v → b`, [`NoGoodStore::forbids`] asks
/// whether that decision would complete a still-live conflict.
#[derive(Debug)]
pub struct NoGoodStore {
    items: Vec<NoGood>,
    /// Item ids containing literal `(v, b)`, at `v * n_banks + b`.
    index: Vec<Vec<u32>>,
    n_banks: usize,
    /// Current ladder target; items with `min_ii <= target` are spent.
    target: u32,
}

/// Conflicts with more literals than this are not worth indexing: they
/// almost never re-fire and bloat the store.
const MAX_LITERALS: usize = 20;

/// Hard cap on stored conflicts (droppable: no-goods are an optimisation,
/// never required for soundness).
const MAX_ITEMS: usize = 8192;

impl NoGoodStore {
    /// An empty store for a loop with `n_vregs` values on `n_banks` banks.
    pub fn new(n_vregs: usize, n_banks: usize) -> Self {
        NoGoodStore {
            items: Vec::new(),
            index: vec![Vec::new(); n_vregs * n_banks],
            n_banks,
            target: 0,
        }
    }

    /// All recorded conflicts (property tests audit these).
    pub fn items(&self) -> &[NoGood] {
        &self.items
    }

    /// Point the store at the ladder's current target. Items proved spent
    /// (`min_ii <= target`) can never fire again — the ladder only ascends —
    /// so they are dropped and the index rebuilt.
    pub fn activate(&mut self, target: u32) {
        self.target = target;
        if self.items.iter().all(|ng| ng.min_ii > target) {
            return;
        }
        self.items.retain(|ng| ng.min_ii > target);
        for slot in &mut self.index {
            slot.clear();
        }
        for (id, ng) in self.items.iter().enumerate() {
            for &(v, b) in &ng.literals {
                self.index[v as usize * self.n_banks + b as usize].push(id as u32);
            }
        }
    }

    /// Record a conflict (literals need not be sorted). Returns `true` if it
    /// was kept — dropped when trivial, oversized, the store is full, or an
    /// identical literal set is already known (keeping the larger `min_ii`).
    pub fn record(&mut self, mut literals: Vec<(u32, u8)>, min_ii: u32, kind: NoGoodKind) -> bool {
        literals.sort_unstable();
        literals.dedup();
        if literals.is_empty() || literals.len() > MAX_LITERALS {
            return false;
        }
        let (v0, b0) = literals[0];
        let slot = v0 as usize * self.n_banks + b0 as usize;
        for &id in &self.index[slot] {
            let old = &mut self.items[id as usize];
            if old.literals == literals {
                old.min_ii = old.min_ii.max(min_ii);
                return false;
            }
        }
        if self.items.len() >= MAX_ITEMS {
            return false;
        }
        let id = self.items.len() as u32;
        for &(v, b) in &literals {
            self.index[v as usize * self.n_banks + b as usize].push(id);
        }
        self.items.push(NoGood {
            literals,
            min_ii,
            kind,
        });
        true
    }

    /// Unit propagation: would deciding `v → b` on top of `assigned`
    /// complete a live conflict? (`assigned[v]` is still [`UNASSIGNED`]
    /// when asked.)
    pub fn forbids(&self, assigned: &[u8], v: usize, b: u8) -> bool {
        for &id in &self.index[v * self.n_banks + b as usize] {
            let ng = &self.items[id as usize];
            if ng.min_ii <= self.target {
                continue;
            }
            let fires = ng
                .literals
                .iter()
                .all(|&(lv, lb)| (lv as usize == v && lb == b) || assigned[lv as usize] == lb);
            if fires {
                return true;
            }
        }
        false
    }
}

/// Per op: the vreg whose bank decides the op's cluster (its def, or — for
/// stores — its first use), mirroring `vliw_core::copyins`.
pub fn deciding_vregs(body: &Loop) -> Vec<Option<usize>> {
    body.ops
        .iter()
        .map(|o| o.def.or_else(|| o.uses.first().copied()).map(|v| v.index()))
        .collect()
}

/// Per vreg: defined in the body (invariant operands hoist their copies out
/// of the kernel and cost nothing here).
pub fn variant_mask(body: &Loop) -> Vec<bool> {
    (0..body.n_vregs())
        .map(|v| !body.is_invariant(vliw_ir::VReg(v as u32)))
        .collect()
}

/// Per vreg: kernel copy latency of its register class.
pub fn copy_extras(body: &Loop, machine: &MachineDesc) -> Vec<i64> {
    (0..body.n_vregs())
        .map(|v| {
            let class = body.class_of(vliw_ir::VReg(v as u32));
            machine.latencies.of(vliw_ir::Opcode::copy_for(class)) as i64
        })
        .collect()
}

/// A violated capacity constraint, expressed as a replayable conflict.
#[derive(Debug, Clone)]
pub struct CapacityConflict {
    /// Decisions forcing the overflow (may exceed [`MAX_LITERALS`]; the
    /// store filters).
    pub literals: Vec<(u32, u8)>,
    /// First II with enough slots for the counted demand.
    pub min_ii: u32,
}

/// Forced-copy and slot demand of a partial assignment, shared between the
/// capacity propagator and the admissible future-copy bound.
#[derive(Debug, Default, Clone)]
pub struct CapacityCounts {
    /// Ops whose deciding vreg is assigned, per bank.
    pub pinned: Vec<usize>,
    /// Distinct forced kernel copies into each bank.
    pub copies_into: Vec<usize>,
    /// Total distinct forced kernel copies.
    pub total_copies: usize,
}

/// Count the slot demand a partial bank assignment already commits to. Only
/// *forced* consumption is counted — ops pinned by decided operands, plus
/// one shared kernel copy per decided `(variant def, consuming bank)` pair
/// that crosses banks — so every count is a lower bound on any completion.
///
/// `marks` is a caller-owned scratch of at least `n_vregs * n_banks` bools,
/// all false on entry and on return.
pub fn capacity_counts(
    body: &Loop,
    n_banks: usize,
    assigned: &[u8],
    deciding: &[Option<usize>],
    variant: &[bool],
    marks: &mut [bool],
) -> CapacityCounts {
    let op_bank = |o: usize| -> u8 {
        match deciding[o] {
            Some(v) => assigned[v],
            None => 0, // no operands at all: copyins pins to cluster 0
        }
    };
    let mut c = CapacityCounts {
        pinned: vec![0; n_banks],
        copies_into: vec![0; n_banks],
        total_copies: 0,
    };
    let mut marked: Vec<usize> = Vec::new();
    for op in &body.ops {
        let bo = op_bank(op.id.index());
        if bo == UNASSIGNED {
            continue;
        }
        c.pinned[bo as usize] += 1;
        for &u in &op.uses {
            let bu = assigned[u.index()];
            if bu == UNASSIGNED || bu == bo || !variant[u.index()] {
                continue;
            }
            let mark = u.index() * n_banks + bo as usize;
            if !marks[mark] {
                marks[mark] = true;
                marked.push(mark);
                c.copies_into[bo as usize] += 1;
                c.total_copies += 1;
            }
        }
    }
    for m in marked {
        marks[m] = false;
    }
    c
}

/// The full (non-incremental) capacity oracle: does the committed demand of
/// `assigned` fit the kernel at `target`? `None` when it fits; otherwise the
/// violated constraint as a replayable conflict (its `min_ii` is the exact
/// re-validation threshold resource conflicts need on the II ladder).
pub fn capacity_conflict(
    body: &Loop,
    machine: &MachineDesc,
    target: u32,
    assigned: &[u8],
    deciding: &[Option<usize>],
    variant: &[bool],
    marks: &mut [bool],
) -> Option<CapacityConflict> {
    let n_banks = machine.n_clusters();
    let c = capacity_counts(body, n_banks, assigned, deciding, variant, marks);
    let ii = target as usize;

    // Literals that force the copies counted into bank `b` (or all banks).
    let copy_literals = |only_bank: Option<u8>, out: &mut Vec<(u32, u8)>| {
        for op in &body.ops {
            let bo = match deciding[op.id.index()] {
                Some(v) => assigned[v],
                None => 0,
            };
            if bo == UNASSIGNED || only_bank.is_some_and(|want| bo != want) {
                continue;
            }
            for &u in &op.uses {
                let bu = assigned[u.index()];
                if bu == UNASSIGNED || bu == bo || !variant[u.index()] {
                    continue;
                }
                out.push((u.index() as u32, bu));
                if let Some(dv) = deciding[op.id.index()] {
                    out.push((dv as u32, bo));
                }
            }
        }
    };
    // Literals pinning ops to bank `b`.
    let pin_literals = |b: u8, out: &mut Vec<(u32, u8)>| {
        for op in &body.ops {
            if let Some(dv) = deciding[op.id.index()] {
                if assigned[dv] == b {
                    out.push((dv as u32, b));
                }
            }
        }
    };

    match machine.copy_model {
        CopyModel::Embedded => {
            // Copies occupy FU slots on their destination cluster.
            let width = machine.issue_width();
            if body.n_ops() + c.total_copies > ii * width {
                let mut lits = Vec::new();
                copy_literals(None, &mut lits);
                return Some(CapacityConflict {
                    literals: lits,
                    min_ii: (body.n_ops() + c.total_copies).div_ceil(width) as u32,
                });
            }
            for b in 0..n_banks {
                let demand = c.pinned[b] + c.copies_into[b];
                let fus = machine.fus_in(ClusterId(b as u32));
                if demand > ii * fus {
                    let mut lits = Vec::new();
                    pin_literals(b as u8, &mut lits);
                    copy_literals(Some(b as u8), &mut lits);
                    return Some(CapacityConflict {
                        literals: lits,
                        min_ii: demand.div_ceil(fus) as u32,
                    });
                }
            }
        }
        CopyModel::CopyUnit {
            busses,
            ports_per_cluster,
        } => {
            if c.total_copies > ii * busses {
                let mut lits = Vec::new();
                copy_literals(None, &mut lits);
                return Some(CapacityConflict {
                    literals: lits,
                    min_ii: c.total_copies.div_ceil(busses) as u32,
                });
            }
            for b in 0..n_banks {
                let fus = machine.fus_in(ClusterId(b as u32));
                if c.pinned[b] > ii * fus {
                    let mut lits = Vec::new();
                    pin_literals(b as u8, &mut lits);
                    return Some(CapacityConflict {
                        literals: lits,
                        min_ii: c.pinned[b].div_ceil(fus) as u32,
                    });
                }
                if c.copies_into[b] > ii * ports_per_cluster {
                    let mut lits = Vec::new();
                    copy_literals(Some(b as u8), &mut lits);
                    return Some(CapacityConflict {
                        literals: lits,
                        min_ii: c.copies_into[b].div_ceil(ports_per_cluster) as u32,
                    });
                }
            }
        }
    }
    None
}

/// The full (non-incremental) recurrence oracle: is the copy-adjusted
/// dependence graph of `assigned` free of positive cycles at `target`?
/// Exactly the relaxation the incremental maintainer tracks — the agreement
/// property tests pit the two against each other.
pub fn recurrence_feasible(
    body: &Loop,
    ddg: &Ddg,
    target: u32,
    assigned: &[u8],
    deciding: &[Option<usize>],
    copy_extra: &[i64],
    scratch: &mut Vec<i64>,
) -> bool {
    ddg.is_feasible_adjusted(
        target,
        |e| {
            if e.kind != vliw_ddg::DepKind::Flow {
                return 0;
            }
            let Some(v) = body.op(e.from).def else {
                return 0;
            };
            let bv = assigned[v.index()];
            if bv == UNASSIGNED {
                return 0;
            }
            let bt = match deciding[e.to.index()] {
                Some(dv) => assigned[dv],
                None => 0,
            };
            if bt == UNASSIGNED || bt == bv {
                return 0;
            }
            copy_extra[v.index()]
        },
        scratch,
    )
}

/// Admissible lower bound on copies *not yet counted* by
/// [`capacity_counts`]: an unassigned variant vreg whose decided consumers
/// already span `d` distinct banks forces at least `d − 1` copies no matter
/// which bank it picks (it can join at most one of them). Disjoint from the
/// committed-copy count, so the two add.
pub fn future_copy_bound(
    body: &Loop,
    n_banks: usize,
    assigned: &[u8],
    deciding: &[Option<usize>],
    variant: &[bool],
    marks: &mut [bool],
) -> usize {
    let mut marked: Vec<usize> = Vec::new();
    let mut spans = vec![0usize; body.n_vregs()];
    for op in &body.ops {
        let bo = match deciding[op.id.index()] {
            Some(v) => assigned[v],
            None => 0,
        };
        if bo == UNASSIGNED {
            continue;
        }
        for &u in &op.uses {
            if assigned[u.index()] != UNASSIGNED || !variant[u.index()] {
                continue;
            }
            let mark = u.index() * n_banks + bo as usize;
            if !marks[mark] {
                marks[mark] = true;
                marked.push(mark);
                spans[u.index()] += 1;
            }
        }
    }
    for &m in &marked {
        marks[m] = false;
    }
    spans.iter().map(|&d| d.saturating_sub(1)).sum()
}

/// Water-fill lower bound on the II forced by copy pressure alone.
///
/// Ops connected through variant values must either share a bank or pay
/// kernel copies: a connected value-component of `s` ops spread over `k`
/// banks forces at least `k − 1` distinct copies (hypergraph connectivity),
/// and a bank holds at most `II · fus_max` ops — so at candidate `II` the
/// component forces at least `ceil(s / (II·fus_max)) − 1` copies. Summed
/// over components and priced against the machine's total slot (embedded
/// copies) or bus (copy-unit) budget, this refutes IIs the plain
/// `max(RecII, ResII)` bound cannot see.
///
/// Returns the smallest `II in [from, cap]` the bound admits (`cap` when
/// none below it is admitted — the caller treats `cap` as already proven
/// achievable, e.g. the greedy incumbent's II).
pub fn forced_copy_floor(body: &Loop, machine: &MachineDesc, from: u32, cap: u32) -> u32 {
    if from >= cap || body.n_ops() == 0 {
        return from.min(cap);
    }
    // Union ops sharing a variant vreg (invariant operands hoist their
    // copies out of the kernel and never force kernel pressure).
    let n = body.n_ops();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut touch: Vec<Option<usize>> = vec![None; body.n_vregs()];
    for op in &body.ops {
        let o = op.id.index();
        for v in op.def.iter().chain(op.uses.iter()) {
            if body.is_invariant(*v) {
                continue;
            }
            match touch[v.index()] {
                Some(first) => {
                    let (a, b) = (find(&mut parent, first), find(&mut parent, o));
                    parent[a] = b;
                }
                None => touch[v.index()] = Some(o),
            }
        }
    }
    let mut size = vec![0usize; n];
    for o in 0..n {
        let r = find(&mut parent, o);
        size[r] += 1;
    }
    let fus_max = machine
        .clusters
        .iter()
        .map(|c| c.n_fus)
        .max()
        .unwrap_or(1)
        .max(1);
    let admits = |ii: u32| -> bool {
        let cap_per_bank = ii as usize * fus_max;
        let forced: usize = size
            .iter()
            .filter(|&&s| s > 0)
            .map(|&s| s.div_ceil(cap_per_bank).saturating_sub(1))
            .sum();
        match machine.copy_model {
            CopyModel::Embedded => body.n_ops() + forced <= ii as usize * machine.issue_width(),
            CopyModel::CopyUnit { busses, .. } => forced <= ii as usize * busses,
        }
    };
    let mut ii = from;
    while ii < cap && !admits(ii) {
        ii += 1;
    }
    ii
}
