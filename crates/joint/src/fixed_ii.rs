//! Complete fixed-II modulo scheduling by residue branching.
//!
//! A modulo schedule at initiation interval `II` splits every issue time as
//! `t_v = q_v·II + r_v` with residue `r_v ∈ [0, II)`. The two halves are
//! separable:
//!
//! * **resources** depend only on the residues — the modulo reservation
//!   table wraps rows mod II, so two ops conflict iff their residues collide
//!   on the same functional unit / bus / port;
//! * **dependences** become a difference system over the stage counts once
//!   the residues are fixed: `t_to ≥ t_from + lat − II·dist` rewrites to
//!
//!   ```text
//!   q_to − q_from ≥ ceil((lat − II·dist + r_from − r_to) / II)
//!   ```
//!
//!   which is solvable iff the constraint graph has no positive cycle —
//!   checkable in O(V·E) by Bellman–Ford from a virtual source, whose
//!   longest-path potentials *are* a valid non-negative `q`.
//!
//! So the search branches only on residues (at most II values per op),
//! placing them in the MRT as it goes, and closes each leaf with a single
//! feasibility check; the stage counts are never enumerated. The same check
//! runs in relaxed form at every internal node: an edge with an undecided
//! endpoint contributes the weakest weight any completion could give it
//! (minimising over the free residues), so the propagation never prunes a
//! subtree containing a schedule, while decided-residue recurrence
//! conflicts cut the tree early.
//!
//! The relaxed check is maintained **incrementally**
//! ([`vliw_ddg::IncrementalFeasibility`]): deciding a residue can only
//! *raise* the relaxed weights of the edges incident to that op (a free
//! residue is minimised over), so each placement re-relaxes just those
//! edges outward from the change, and backtracking restores the potentials
//! from a trail instead of re-running Bellman–Ford over every edge. The
//! search is therefore **complete**: it returns a schedule iff one exists
//! at this II, modulo the wall-clock deadline (reported as
//! [`FixedIiOutcome::TimedOut`], never misreported as infeasibility).

use std::time::Instant;
use vliw_ddg::{Ddg, IncrementalFeasibility};
use vliw_ir::OpId;
use vliw_machine::CopyModel;
use vliw_sched::{ModuloReservationTable, OpPlacement, SchedProblem, Schedule};

/// Outcome of one fixed-II search.
#[derive(Debug, Clone)]
pub enum FixedIiOutcome {
    /// A verified-shape schedule at exactly the requested II.
    Found(Schedule),
    /// Proven: no modulo schedule of this problem exists at this II.
    Infeasible,
    /// The deadline expired before the search closed; nothing is proven.
    TimedOut,
}

/// Effort counters for one or more fixed-II searches.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedIiStats {
    /// Residue-tree nodes expanded.
    pub nodes: u64,
    /// Stage-count feasibility propagations run (one per node).
    pub q_checks: u64,
}

/// `ceil(a / b)` for possibly-negative `a` and positive `b`.
#[inline]
fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    (a + b - 1).div_euclid(b)
}

/// Search for a modulo schedule of `problem` at exactly `ii`.
///
/// Complete up to the deadline: `Infeasible` is a proof, `Found` carries a
/// schedule that satisfies every dependence in `ddg` and every resource in
/// the machine's reservation model. `stats` accumulates across calls so an
/// enclosing search can report total effort.
pub fn schedule_fixed_ii(
    problem: &SchedProblem<'_>,
    ddg: &Ddg,
    ii: u32,
    deadline: Option<Instant>,
    stats: &mut FixedIiStats,
) -> FixedIiOutcome {
    assert_eq!(ddg.n_ops(), problem.n_ops());
    assert!(ii >= 1, "II must be positive");
    let n = problem.n_ops();
    if n == 0 {
        return FixedIiOutcome::Found(Schedule {
            ii: 1,
            times: Vec::new(),
            clusters: Vec::new(),
        });
    }
    if problem.res_ii() > ii {
        return FixedIiOutcome::Infeasible; // some resource is oversubscribed
    }
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return FixedIiOutcome::TimedOut; // nothing searched, nothing claimed
    }
    let mut estart = Vec::new();
    if !ddg.is_feasible_with(ii, &mut estart) {
        return FixedIiOutcome::Infeasible; // positive recurrence cycle
    }

    let iil = ii as i64;
    // Residue hint: the infinite-resource earliest start, wrapped. Scanning
    // each op's residues from its hint keeps dependence chains packed.
    let hint: Vec<i64> = estart.iter().map(|&t| t.rem_euclid(iil)).collect();
    let base: Vec<i64> = ddg
        .edges()
        .iter()
        .map(|e| e.latency - iil * e.distance as i64)
        .collect();
    // Incremental stage-count maintainer, seeded with the all-free
    // relaxation (both residues minimised over). Deciding an op's residue
    // only raises its incident edges.
    let incr = IncrementalFeasibility::new(
        n,
        ddg.edges().iter().enumerate().map(|(i, e)| {
            let w = div_ceil(base[i] - (iil - 1), iil);
            (e.from.index() as u32, e.to.index() as u32, w)
        }),
    );
    stats.q_checks += 1;
    if !incr.root_feasible() {
        return FixedIiOutcome::Infeasible;
    }
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, e) in ddg.edges().iter().enumerate() {
        incident[e.from.index()].push(i as u32);
        if e.to != e.from {
            incident[e.to.index()].push(i as u32);
        }
    }
    let mut s = Searcher {
        problem,
        ddg,
        ii: iil,
        order: branch_order(problem, ii, &estart),
        residue: vec![-1; n],
        hint,
        base,
        mrt: ModuloReservationTable::new(problem.machine, ii, n),
        incr,
        incident,
        deadline,
        timed_out: false,
        stats,
    };
    match s.dfs(0) {
        Some(sched) => FixedIiOutcome::Found(sched),
        None if s.timed_out => FixedIiOutcome::TimedOut,
        None => FixedIiOutcome::Infeasible,
    }
}

/// Most-contended-resource-first branch order: ops whose placement competes
/// for the scarcest kernel slots are decided before flexible ones, so
/// resource dead-ends surface near the root. Ties: earliest ideal start,
/// then index.
fn branch_order(problem: &SchedProblem<'_>, ii: u32, estart: &[i64]) -> Vec<usize> {
    let m = problem.machine;
    let n = problem.n_ops();
    let mut per_cluster = vec![0usize; m.n_clusters()];
    let mut copies_to = vec![0usize; m.n_clusters()];
    let (mut n_any, mut n_copy) = (0usize, 0usize);
    for p in &problem.placement {
        match *p {
            OpPlacement::AnyFu => n_any += 1,
            OpPlacement::FuIn(c) => per_cluster[c.index()] += 1,
            OpPlacement::CopyVia(c) => {
                n_copy += 1;
                copies_to[c.index()] += 1;
            }
        }
    }
    let iif = ii as f64;
    let scarcity = |p: OpPlacement| -> f64 {
        match p {
            OpPlacement::AnyFu => n_any as f64 / (iif * m.issue_width() as f64),
            OpPlacement::FuIn(c) => per_cluster[c.index()] as f64 / (iif * m.fus_in(c) as f64),
            OpPlacement::CopyVia(c) => match m.copy_model {
                CopyModel::CopyUnit {
                    busses,
                    ports_per_cluster,
                } => (n_copy as f64 / (iif * busses as f64))
                    .max(copies_to[c.index()] as f64 / (iif * ports_per_cluster as f64)),
                CopyModel::Embedded => unreachable!("embedded copies are FuIn"),
            },
        }
    };
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scarcity(problem.placement[b])
            .partial_cmp(&scarcity(problem.placement[a]))
            .expect("scarcities are finite")
            .then(estart[a].cmp(&estart[b]))
            .then(a.cmp(&b))
    });
    order
}

struct Searcher<'p, 'a, 's> {
    problem: &'p SchedProblem<'a>,
    ddg: &'p Ddg,
    ii: i64,
    order: Vec<usize>,
    /// Residue per op; `-1` = undecided.
    residue: Vec<i64>,
    hint: Vec<i64>,
    /// Per-edge `latency − II·distance`, parallel to `ddg.edges()`.
    base: Vec<i64>,
    mrt: ModuloReservationTable,
    /// Incremental stage-count difference system: decided endpoints use
    /// their exact weight, a free residue is minimised over (it ranges
    /// `[0, II)`), so the maintained check is a sound relaxation at internal
    /// nodes and exact at leaves; its potentials are the `q` witness.
    incr: IncrementalFeasibility,
    /// Per op: DDG edge indices incident to it (its weights change only
    /// when one of its endpoints is decided).
    incident: Vec<Vec<u32>>,
    deadline: Option<Instant>,
    timed_out: bool,
    stats: &'s mut FixedIiStats,
}

impl Searcher<'_, '_, '_> {
    /// Relaxed stage-count weight of edge `ei` under the current residues.
    fn q_weight(&self, ei: usize) -> i64 {
        let e = &self.ddg.edges()[ei];
        let rf = self.residue[e.from.index()];
        let rt = self.residue[e.to.index()];
        let num = match (rf >= 0, rt >= 0) {
            (true, true) => self.base[ei] + rf - rt,
            (true, false) => self.base[ei] + rf - (self.ii - 1),
            (false, true) => self.base[ei] - rt,
            (false, false) => self.base[ei] - (self.ii - 1),
        };
        div_ceil(num, self.ii)
    }

    fn extract(&self) -> Schedule {
        let n = self.problem.n_ops();
        let pot = self.incr.potentials();
        let times: Vec<i64> = (0..n).map(|v| pot[v] * self.ii + self.residue[v]).collect();
        let clusters = (0..n)
            .map(|v| {
                self.mrt
                    .cluster_of(OpId(v as u32))
                    .expect("every op is placed at a leaf")
            })
            .collect();
        Schedule {
            ii: self.ii as u32,
            times,
            clusters,
        }
    }

    fn dfs(&mut self, depth: usize) -> Option<Schedule> {
        if self.timed_out {
            return None;
        }
        self.stats.nodes += 1;
        if self.stats.nodes & 255 == 0 {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.timed_out = true;
                    return None;
                }
            }
        }
        if depth == self.order.len() {
            // The last decision's propagation already proved the (now exact)
            // system feasible; the maintained potentials are the witness.
            return Some(self.extract());
        }
        let v = self.order[depth];
        let placement = self.problem.placement[v];
        let start = self.hint[v];
        for k in 0..self.ii {
            let r = (start + k) % self.ii;
            if self.mrt.fits(placement, r).is_none() {
                continue;
            }
            self.residue[v] = r;
            self.mrt.place(OpId(v as u32), placement, r);
            // Deciding `r` raises only v's incident edges: re-relax from
            // them; a positive cycle rolls the frame back and vetoes the
            // child before it is ever expanded.
            self.stats.q_checks += 1;
            self.incr.push_frame();
            for i in 0..self.incident[v].len() {
                let ei = self.incident[v][i] as usize;
                self.incr.set_weight(ei, self.q_weight(ei));
            }
            let found = if self.incr.propagate() {
                let f = self.dfs(depth + 1);
                self.incr.pop_frame();
                f
            } else {
                None
            };
            self.mrt.remove(OpId(v as u32));
            self.residue[v] = -1;
            if found.is_some() {
                return found;
            }
            if self.timed_out {
                return None;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::build_ddg;
    use vliw_ir::{LoopBuilder, RegClass};
    use vliw_machine::MachineDesc;
    use vliw_sched::{schedule_loop, verify_schedule, ImsConfig};

    fn daxpy(unroll: usize) -> vliw_ir::Loop {
        let mut b = LoopBuilder::new("daxpy");
        let x = b.array("x", RegClass::Float, 1024);
        let y = b.array("y", RegClass::Float, 1024);
        let a = b.live_in_float("a");
        for u in 0..unroll {
            let xv = b.load(x, u as i64, unroll as i64);
            let yv = b.load(y, u as i64, unroll as i64);
            let p = b.fmul(a, xv);
            let s = b.fadd(yv, p);
            b.store(y, u as i64, unroll as i64, s);
        }
        b.finish(128)
    }

    #[test]
    fn finds_res_ii_schedule_and_verifies() {
        let l = daxpy(4); // 20 ops
        let m = MachineDesc::monolithic(4);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let mut st = FixedIiStats::default();
        // ResII = ceil(20/4) = 5 and there is no recurrence.
        match schedule_fixed_ii(&p, &g, 5, None, &mut st) {
            FixedIiOutcome::Found(s) => {
                assert_eq!(s.ii, 5);
                verify_schedule(&p, &g, &s).unwrap();
            }
            other => panic!("expected a schedule at II=5, got {other:?}"),
        }
        assert!(st.nodes >= 20);
    }

    #[test]
    fn below_res_ii_is_proven_infeasible() {
        let l = daxpy(4);
        let m = MachineDesc::monolithic(4);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let mut st = FixedIiStats::default();
        assert!(matches!(
            schedule_fixed_ii(&p, &g, 4, None, &mut st),
            FixedIiOutcome::Infeasible
        ));
    }

    #[test]
    fn recurrence_bound_is_respected() {
        // s = a*s + x[i]: RecII = 4 (fmul 3 + fadd 1 around the carried s).
        let mut b = LoopBuilder::new("rec1");
        let x = b.array("x", RegClass::Float, 64);
        let a = b.live_in_float("a");
        let s = b.live_in_float_val("s", 0.0);
        let xv = b.load(x, 0, 1);
        let t = b.fmul(a, s);
        b.fadd_into(s, t, xv);
        b.live_out(s);
        let l = b.finish(64);
        let m = MachineDesc::monolithic(16);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let mut st = FixedIiStats::default();
        assert!(matches!(
            schedule_fixed_ii(&p, &g, 3, None, &mut st),
            FixedIiOutcome::Infeasible
        ));
        match schedule_fixed_ii(&p, &g, 4, None, &mut st) {
            FixedIiOutcome::Found(s) => verify_schedule(&p, &g, &s).unwrap(),
            other => panic!("expected a schedule at RecII, got {other:?}"),
        }
    }

    #[test]
    fn matches_ims_on_clustered_problems() {
        // Wherever IMS succeeds, the complete search must too (at the same
        // II or — by trying the II directly — exactly that II).
        let l = daxpy(2);
        let m = MachineDesc::embedded(2, 2);
        let g = build_ddg(&l, &m.latencies);
        let cluster_of: Vec<_> = (0..l.n_ops())
            .map(|i| vliw_machine::ClusterId((i % 2) as u32))
            .collect();
        let p = SchedProblem::clustered(&l, &m, &cluster_of);
        let ims = schedule_loop(&p, &g, &ImsConfig::default()).unwrap();
        let mut st = FixedIiStats::default();
        match schedule_fixed_ii(&p, &g, ims.ii, None, &mut st) {
            FixedIiOutcome::Found(s) => {
                assert_eq!(s.ii, ims.ii);
                verify_schedule(&p, &g, &s).unwrap();
            }
            other => panic!("IMS scheduled at {} but search said {other:?}", ims.ii),
        }
    }

    #[test]
    fn expired_deadline_reports_timeout_not_infeasible() {
        let l = daxpy(8); // big enough that the search cannot close instantly
        let m = MachineDesc::monolithic(2);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let mut st = FixedIiStats::default();
        let past = Instant::now() - std::time::Duration::from_millis(1);
        assert!(matches!(
            schedule_fixed_ii(&p, &g, 20, Some(past), &mut st),
            FixedIiOutcome::TimedOut
        ));
    }

    #[test]
    fn empty_loop_schedules_trivially() {
        let l = LoopBuilder::new("empty").finish(1);
        let m = MachineDesc::monolithic(4);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let mut st = FixedIiStats::default();
        assert!(matches!(
            schedule_fixed_ii(&p, &g, 1, None, &mut st),
            FixedIiOutcome::Found(_)
        ));
    }
}
