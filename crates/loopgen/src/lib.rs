//! # vliw-loopgen — the synthetic 211-loop corpus
//!
//! The paper's evaluation pipelines "211 loops extracted from Spec 95 …
//! all single-block innermost loops" from Fortran 77 (§6, §6.3). Those loop
//! bodies are not archived anywhere, so this crate generates a deterministic
//! synthetic corpus with the same *statistical shape*:
//!
//! * single-block innermost loops in three-address form;
//! * Fortran-style kernels — daxpy/dot/stencil/reduction/first-order
//!   recurrence/scale/integer — with partial unrolling, which is what gives
//!   Spec95 floating-point inner loops their high ILP;
//! * a mix tuned so the **ideal 16-wide schedule averages ≈ 8.6 IPC**, the
//!   one aggregate statistic the paper reports about its corpus (Table 1),
//!   with recurrence-bound loops present in realistic proportion.
//!
//! Everything is seeded: `corpus()` returns the same 211 loops on every
//! call, so experiments are exactly reproducible.

#![warn(missing_docs)]

pub mod families;
pub mod gen;
pub mod pressure;

pub use families::Family;
pub use gen::{corpus, corpus_with, function_corpus, CorpusSpec};
pub use pressure::{pressure_corpus, pressure_corpus_with, scaling_slice, PressureSpec};

/// The paper's corpus size.
pub const CORPUS_SIZE: usize = 211;
