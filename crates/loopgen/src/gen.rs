//! Seeded corpus generation.

use crate::families::Family;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vliw_ir::Loop;

/// Corpus parameters. The default reproduces the experimental corpus: 211
/// loops whose family mix is tuned so the ideal 16-wide schedule averages
/// ≈ 8.6 IPC, matching Table 1's "Ideal" row.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Number of loops.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Family mix: `(family, relative weight, allowed unroll factors)`.
    pub mix: Vec<(Family, u32, Vec<usize>)>,
    /// Trip-count range (inclusive).
    pub trip_range: (u32, u32),
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            n: crate::CORPUS_SIZE,
            // Calibrated alongside the weights below: under the offline
            // RNG backend this draw order keeps every sampled prefix within
            // paper-scale bank capacity (unroll-4 stencils carry enough
            // unspillable invariant coefficients to overflow the 8×2
            // model's 16-reg banks, so a prefix that draws one cannot
            // colour spill-free).
            seed: 0x5EC9_5C11,
            // Weights calibrated against the ideal-IPC target (see the
            // corpus_mean_ipc test in vliw-pipeline).
            mix: vec![
                (Family::Daxpy, 15, vec![4, 6, 8]),
                (Family::Dot, 10, vec![3, 4, 6]),
                (Family::Stencil, 11, vec![2, 3, 4]),
                (Family::Rec1, 30, vec![2, 4, 6]),
                (Family::Scale, 8, vec![4, 8]),
                (Family::IntAxpy, 8, vec![4, 6]),
                (Family::SumSq, 10, vec![3, 4, 6]),
                (Family::DivMix, 6, vec![3, 4]),
                (Family::Copy, 4, vec![4, 8]),
                (Family::Mixed, 8, vec![2, 4]),
            ],
            trip_range: (32, 80),
        }
    }
}

/// Generate the default corpus (deterministic).
pub fn corpus() -> Vec<Loop> {
    corpus_with(&CorpusSpec::default())
}

impl CorpusSpec {
    /// An extended mix including the FIR and memory-carried-recurrence
    /// families (not part of the calibrated paper corpus; used by the
    /// robustness tests and available for experiments).
    pub fn extended() -> Self {
        let mut spec = CorpusSpec::default();
        spec.mix.push((Family::Fir, 8, vec![1, 2, 3]));
        spec.mix.push((Family::Tridiag, 8, vec![2, 4]));
        spec
    }
}

/// Generate a corpus from an explicit spec (deterministic in the spec).
pub fn corpus_with(spec: &CorpusSpec) -> Vec<Loop> {
    assert!(!spec.mix.is_empty());
    let total_weight: u32 = spec.mix.iter().map(|(_, w, _)| *w).sum();
    assert!(total_weight > 0);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out = Vec::with_capacity(spec.n);
    for idx in 0..spec.n {
        let mut pick = rng.gen_range(0..total_weight);
        let (family, unrolls) = spec
            .mix
            .iter()
            .find_map(|(f, w, us)| {
                if pick < *w {
                    Some((*f, us))
                } else {
                    pick -= w;
                    None
                }
            })
            .expect("weighted pick is in range");
        let u = unrolls[rng.gen_range(0..unrolls.len())];
        let trip = rng.gen_range(spec.trip_range.0..=spec.trip_range.1);
        let l = family.build(idx, u, trip);
        debug_assert!(vliw_ir::verify_loop(&l).is_ok());
        out.push(l);
    }
    out
}

/// Generate a deterministic corpus of whole functions: each has a
/// straight-line prologue, one to three pipelined loops of varying nesting
/// depth drawn from the family templates, and a straight-line epilogue that
/// consumes a value from the last loop — the shape of the whole-program
/// experiment in the companion study the paper cites as \[16\].
pub fn function_corpus(n: usize, seed: u64) -> Vec<vliw_ir::Function> {
    use vliw_ir::FunctionBuilder;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF_u64);
    (0..n)
        .map(|idx| {
            let mut f = FunctionBuilder::new(format!("func_{idx:03}"));
            let a = f.live_in_float_val("a", 1.5);
            let x = f.array("x", vliw_ir::RegClass::Float, 4096);
            let y = f.array("y", vliw_ir::RegClass::Float, 4096);
            f.block("prologue", 1, 1, |b| {
                let c = b.fconst_new(0.5);
                let d = b.fmul(a, c);
                b.store(x, 0, 0, d);
            });
            let n_loops = 1 + (rng.gen_range(0..3u32) as usize);
            let mut carried = a;
            for li in 0..n_loops {
                // Whole-program code is mostly modest-ILP: narrow unrolls
                // and recurrence- or memory-bound bodies, so most blocks
                // have slack for the partitioner to hide copies in.
                let u = [2usize, 3, 4][rng.gen_range(0..3usize)];
                let depth = 2 + (li % 2) as u32;
                let trip = rng.gen_range(16..48u32);
                let kind = rng.gen_range(0..3u32);
                let mut acc_out = None;
                f.block(format!("loop{li}"), depth, trip, |b| {
                    let acc = b.live_in_float_val("acc", 0.0);
                    for j in 0..u as i64 {
                        match kind {
                            0 => {
                                // Reduction: load·load → acc.
                                let xv = b.load(x, j + 8, u as i64);
                                let yv = b.load(y, j + 8, u as i64);
                                let q = b.fmul(xv, yv);
                                b.fadd_into(acc, acc, q);
                            }
                            1 => {
                                // First-order recurrence through `carried`.
                                let xv = b.load(x, j + 8, u as i64);
                                let t = b.fmul(carried, acc);
                                b.fadd_into(acc, t, xv);
                            }
                            _ => {
                                // Scale + accumulate.
                                let xv = b.load(x, j + 8, u as i64);
                                let w = b.fmul(carried, xv);
                                b.store(y, j + 8, u as i64, w);
                                b.fadd_into(acc, acc, w);
                            }
                        }
                    }
                    b.live_out(acc);
                    acc_out = Some(acc);
                });
                carried = acc_out.unwrap();
            }
            f.block("epilogue", 1, 1, |b| {
                let r = b.fmul(carried, a);
                b.store(x, 1, 0, r);
            });
            let func = f.finish();
            debug_assert!(func.verify().is_ok());
            func
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_211_valid_loops() {
        let c = corpus();
        assert_eq!(c.len(), crate::CORPUS_SIZE);
        for l in &c {
            vliw_ir::verify_loop(l).unwrap_or_else(|e| panic!("{}: {e}", l.name));
            assert_eq!(l.nesting_depth, 1, "all corpus loops are innermost");
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus();
        let b = corpus();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn corpus_contains_recurrence_and_ilp_loops() {
        let c = corpus();
        let with_rec = c.iter().filter(|l| !l.carried_regs().is_empty()).count();
        let without = c.len() - with_rec;
        assert!(with_rec > 20, "need recurrence-bound loops, got {with_rec}");
        assert!(without > 80, "need ILP-bound loops, got {without}");
    }

    #[test]
    fn different_seed_different_corpus() {
        let mut spec = CorpusSpec::default();
        spec.seed ^= 0xDEAD_BEEF;
        spec.n = 20;
        let a = corpus_with(&spec);
        let mut spec2 = spec.clone();
        spec2.seed = CorpusSpec::default().seed;
        let b = corpus_with(&spec2);
        assert_ne!(
            a.iter().map(|l| l.name.clone()).collect::<Vec<_>>(),
            b.iter().map(|l| l.name.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn extended_corpus_is_valid_and_contains_new_families() {
        let mut spec = CorpusSpec::extended();
        spec.n = 120;
        let c = corpus_with(&spec);
        for l in &c {
            vliw_ir::verify_loop(l).unwrap_or_else(|e| panic!("{}: {e}", l.name));
        }
        assert!(c.iter().any(|l| l.name.starts_with("fir")));
        assert!(c.iter().any(|l| l.name.starts_with("tridiag")));
    }

    #[test]
    fn function_corpus_builds_valid_functions() {
        let funcs = function_corpus(12, 7);
        assert_eq!(funcs.len(), 12);
        for f in &funcs {
            f.verify().unwrap_or_else(|e| panic!("{}: {e}", f.name));
            assert!(f.blocks.len() >= 3); // prologue + ≥1 loop + epilogue
        }
        // Deterministic.
        assert_eq!(function_corpus(3, 7), function_corpus(3, 7));
    }

    #[test]
    fn weights_respected_roughly() {
        // With weight 0 a family never appears.
        let mut spec = CorpusSpec::default();
        for (f, w, _) in &mut spec.mix {
            if *f != Family::Daxpy {
                *w = 0;
            }
        }
        let c = corpus_with(&spec);
        assert!(c.iter().all(|l| l.name.starts_with("daxpy")));
    }
}
