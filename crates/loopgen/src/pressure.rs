//! Register-pressure-stressed loops for the 13–24-vreg joint-solver slice.
//!
//! The calibrated paper corpus is dominated by loops the joint solver closes
//! in microseconds; the interesting scaling regime starts where the bank
//! search tree gets wide — 13 to 24 virtual registers with real carried
//! recurrences competing for banks. This module generates exactly that
//! slice, deterministically, with a tunable ratio of recurrence chains to
//! independent streams.
//!
//! Every loop is assembled from three unit shapes with known vreg budgets:
//!
//! * a **chain** — a first-order accumulator recurrence
//!   `s = a·s + x[i]` (3 vregs: the live-in accumulator, the load, the
//!   product) that contributes to RecII and must be bank-colocated or pay
//!   copies on the cycle;
//! * a **stream** — one daxpy lane `y[i] += a·x[i]` (4 vregs) of pure ILP
//!   that competes with the chains for kernel slots;
//! * a **filler** — a copy lane `y[i] = x[i]` (1 vreg) used to hit the
//!   requested vreg count exactly.
//!
//! One shared live-in coefficient accounts for the remaining vreg, so a
//! loop with `c` chains, `s` streams, and `f` fillers has exactly
//! `1 + 3c + 4s + f` virtual registers.

use crate::gen::corpus_with;
use crate::CorpusSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vliw_ir::{Loop, LoopBuilder, RegClass};

/// Parameters for the pressure-stressed generator.
#[derive(Debug, Clone)]
pub struct PressureSpec {
    /// Number of loops.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Inclusive vreg-count range every generated loop lands in.
    pub vreg_range: (usize, usize),
    /// Recurrence density in percent: the share of the vreg budget spent on
    /// carried accumulator chains (0 = pure streams, 100 = all chains).
    pub rec_density: u32,
    /// Trip-count range (inclusive).
    pub trip_range: (u32, u32),
}

impl Default for PressureSpec {
    fn default() -> Self {
        PressureSpec {
            n: 48,
            seed: 0x1324_BEEF,
            vreg_range: (13, 24),
            rec_density: 40,
            trip_range: (32, 64),
        }
    }
}

/// Build one pressure loop with exactly `1 + 3·chains + 4·streams +
/// fillers` virtual registers.
pub fn pressure_loop(idx: usize, chains: usize, streams: usize, fillers: usize, trip: u32) -> Loop {
    let lanes = (chains + streams + fillers).max(1) as i64;
    let flen = lanes as usize * trip as usize + 2 * lanes as usize + 4;
    let mut b = LoopBuilder::new(format!("press_c{chains}_s{streams}_{idx:03}"));
    let x = b.array("x", RegClass::Float, flen);
    let y = b.array("y", RegClass::Float, flen);
    let a = b.live_in_float_val("a", 0.75);
    let mut lane = 0i64;
    for j in 0..chains {
        let s = b.live_in_float_val(&format!("s{j}"), 0.0);
        let xv = b.load(x, lane, lanes);
        let t = b.fmul(a, s);
        b.fadd_into(s, t, xv);
        b.live_out(s);
        lane += 1;
    }
    for _ in 0..streams {
        let xv = b.load(x, lane, lanes);
        let yv = b.load(y, lane, lanes);
        let p = b.fmul(a, xv);
        let q = b.fadd(yv, p);
        b.store(y, lane, lanes, q);
        lane += 1;
    }
    for _ in 0..fillers {
        let v = b.load(x, lane, lanes);
        b.store(y, lane, lanes, v);
        lane += 1;
    }
    b.finish(trip)
}

/// Generate a pressure corpus from an explicit spec (deterministic in the
/// spec). Every loop's vreg count is in `spec.vreg_range`.
pub fn pressure_corpus_with(spec: &PressureSpec) -> Vec<Loop> {
    let (lo, hi) = spec.vreg_range;
    assert!(
        lo >= 2 && hi >= lo,
        "vreg range must be sane, got {lo}..={hi}"
    );
    assert!(spec.rec_density <= 100);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.n)
        .map(|idx| {
            let target = rng.gen_range(lo..=hi);
            // Budget after the shared coefficient; split per the density
            // knob, then spend the remainder on streams and fillers.
            let budget = target - 1;
            let chains = (budget * spec.rec_density as usize / 100) / 3;
            let rest = budget - 3 * chains;
            let streams = rest / 4;
            let fillers = rest - 4 * streams;
            let trip = rng.gen_range(spec.trip_range.0..=spec.trip_range.1);
            let l = pressure_loop(idx, chains, streams, fillers, trip);
            debug_assert_eq!(l.n_vregs(), target, "vreg accounting drifted");
            debug_assert!(vliw_ir::verify_loop(&l).is_ok());
            l
        })
        .collect()
}

/// The default pressure corpus: 48 loops, 13–24 vregs, 40% recurrence
/// density, fully deterministic.
pub fn pressure_corpus() -> Vec<Loop> {
    pressure_corpus_with(&PressureSpec::default())
}

/// The 13–24-vreg scaling slice used by the joint-solver experiments: the
/// pressure corpus plus whatever lands in the range from the calibrated
/// paper corpus (high-unroll daxpy/stencil/dot draws).
pub fn scaling_slice() -> Vec<Loop> {
    let mut out: Vec<Loop> = crate::corpus()
        .into_iter()
        .filter(|l| (13..=24).contains(&l.n_vregs()))
        .collect();
    out.extend(pressure_corpus());
    out
}

/// A denser variant of the calibrated corpus mix restricted to high-unroll
/// draws, for tests that want paper-shaped (rather than synthetic-unit)
/// loops in the pressure range.
pub fn dense_paper_mix(n: usize, seed: u64) -> Vec<Loop> {
    let mut spec = CorpusSpec {
        n: n * 3, // oversample, then filter to the range
        seed,
        ..Default::default()
    };
    for (_, _, unrolls) in &mut spec.mix {
        unrolls.retain(|&u| u >= 3);
        if unrolls.is_empty() {
            unrolls.push(4);
        }
    }
    corpus_with(&spec)
        .into_iter()
        .filter(|l| (13..=24).contains(&l.n_vregs()))
        .take(n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_corpus_hits_the_vreg_range_exactly() {
        let c = pressure_corpus();
        assert_eq!(c.len(), PressureSpec::default().n);
        for l in &c {
            vliw_ir::verify_loop(l).unwrap_or_else(|e| panic!("{}: {e}", l.name));
            assert!(
                (13..=24).contains(&l.n_vregs()),
                "{} has {} vregs",
                l.name,
                l.n_vregs()
            );
        }
    }

    #[test]
    fn pressure_corpus_is_deterministic() {
        assert_eq!(pressure_corpus(), pressure_corpus());
        let mut spec = PressureSpec::default();
        spec.seed ^= 1;
        assert_ne!(pressure_corpus_with(&spec), pressure_corpus());
    }

    #[test]
    fn rec_density_is_tunable() {
        let mut spec = PressureSpec {
            rec_density: 0,
            ..Default::default()
        };
        assert!(pressure_corpus_with(&spec)
            .iter()
            .all(|l| l.carried_regs().is_empty()));
        spec.rec_density = 100;
        for l in pressure_corpus_with(&spec) {
            // budget ≥ 12 at 100% density ⇒ ≥ 4 chains.
            assert!(l.carried_regs().len() >= 4, "{}", l.name);
        }
        // The default mix carries recurrences in every loop (density 40%
        // of a ≥12-vreg budget always affords at least one chain).
        assert!(pressure_corpus()
            .iter()
            .all(|l| !l.carried_regs().is_empty()));
    }

    #[test]
    fn scaling_slice_is_all_in_range_and_nonempty() {
        let s = scaling_slice();
        assert!(s.len() >= 48, "slice too small: {}", s.len());
        for l in &s {
            assert!((13..=24).contains(&l.n_vregs()), "{}", l.name);
        }
    }

    #[test]
    fn vreg_accounting_formula_holds() {
        for (c, s, f) in [(0, 3, 0), (2, 2, 1), (4, 0, 3), (1, 4, 2)] {
            let l = pressure_loop(0, c, s, f, 32);
            assert_eq!(l.n_vregs(), 1 + 3 * c + 4 * s + f);
        }
    }
}
