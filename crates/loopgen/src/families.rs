//! Loop-family templates: Fortran-style innermost kernels.

use vliw_ir::{Loop, LoopBuilder, RegClass};

/// The kernel families the corpus is drawn from.
///
/// Each mirrors a shape that dominates Spec95 Fortran inner loops; `u` is
/// the unroll factor (compilers unroll high-trip innermost loops before
/// pipelining, which is where the corpus's ILP comes from).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// `y[i] += a·x[i]` — the canonical saxpy/daxpy.
    Daxpy,
    /// `s_j += x[i]·y[i]` with `u` reassociated partial sums.
    Dot,
    /// Three-point stencil `y[i] = c0·x[i] + c1·x[i+1] + c2·x[i+2]`.
    Stencil,
    /// First-order recurrence `s = a·s + x[i]` plus independent fill work.
    Rec1,
    /// `y[i] = c·x[i]`.
    Scale,
    /// Integer axpy over integer arrays (exercises the 5-cycle multiplier).
    IntAxpy,
    /// `s_j += x[i]²` reduction.
    SumSq,
    /// Quotient kernel `y[i] = (x[i]/c)·w[i]`.
    DivMix,
    /// Plain array copy `y[i] = x[i]`.
    Copy,
    /// Mixed float pipeline with an integer reduction alongside.
    Mixed,
    /// Four-tap FIR filter `y[i] = Σ c_k·x[i+k]` (long per-lane chains).
    Fir,
    /// Memory-carried recurrence `y[i+2] = a·y[i] + x[i]` (RecII through the
    /// store→load pair, not a register).
    Tridiag,
}

impl Family {
    /// All families, in a stable order.
    pub const ALL: [Family; 12] = [
        Family::Daxpy,
        Family::Dot,
        Family::Stencil,
        Family::Rec1,
        Family::Scale,
        Family::IntAxpy,
        Family::SumSq,
        Family::DivMix,
        Family::Copy,
        Family::Mixed,
        Family::Fir,
        Family::Tridiag,
    ];

    /// Short name used in loop names.
    pub fn name(self) -> &'static str {
        match self {
            Family::Daxpy => "daxpy",
            Family::Dot => "dot",
            Family::Stencil => "stencil",
            Family::Rec1 => "rec1",
            Family::Scale => "scale",
            Family::IntAxpy => "iaxpy",
            Family::SumSq => "sumsq",
            Family::DivMix => "divmix",
            Family::Copy => "copy",
            Family::Mixed => "mixed",
            Family::Fir => "fir",
            Family::Tridiag => "tridiag",
        }
    }

    /// Build one loop of this family with unroll `u` and trip count `trip`
    /// (`idx` only names the loop).
    pub fn build(self, idx: usize, u: usize, trip: u32) -> Loop {
        let u = u.max(1);
        let name = format!("{}_u{}_{:03}", self.name(), u, idx);
        let flen = u * trip as usize + 2 * u + 4;
        match self {
            Family::Daxpy => {
                let mut b = LoopBuilder::new(name);
                let x = b.array("x", RegClass::Float, flen);
                let y = b.array("y", RegClass::Float, flen);
                let a = b.live_in_float_val("a", 1.5);
                for j in 0..u as i64 {
                    let xv = b.load(x, j, u as i64);
                    let yv = b.load(y, j, u as i64);
                    let p = b.fmul(a, xv);
                    let s = b.fadd(yv, p);
                    b.store(y, j, u as i64, s);
                }
                b.finish(trip)
            }
            Family::Dot => {
                let mut b = LoopBuilder::new(name);
                let x = b.array("x", RegClass::Float, flen);
                let y = b.array("y", RegClass::Float, flen);
                let mut sums = Vec::new();
                for j in 0..u {
                    let s = b.live_in_float_val(&format!("s{j}"), 0.0);
                    sums.push(s);
                }
                for (j, &s) in sums.iter().enumerate() {
                    let xv = b.load(x, j as i64, u as i64);
                    let yv = b.load(y, j as i64, u as i64);
                    let p = b.fmul(xv, yv);
                    b.fadd_into(s, s, p);
                    b.live_out(s);
                }
                b.finish(trip)
            }
            Family::Stencil => {
                let mut b = LoopBuilder::new(name);
                let x = b.array("x", RegClass::Float, flen);
                let y = b.array("y", RegClass::Float, flen);
                let c0 = b.live_in_float_val("c0", 0.25);
                let c1 = b.live_in_float_val("c1", 0.5);
                let c2 = b.live_in_float_val("c2", 0.25);
                for j in 0..u as i64 {
                    let v0 = b.load(x, j, u as i64);
                    let v1 = b.load(x, j + 1, u as i64);
                    let v2 = b.load(x, j + 2, u as i64);
                    let m0 = b.fmul(c0, v0);
                    let m1 = b.fmul(c1, v1);
                    let m2 = b.fmul(c2, v2);
                    let t = b.fadd(m0, m1);
                    let r = b.fadd(t, m2);
                    b.store(y, j, u as i64, r);
                }
                b.finish(trip)
            }
            Family::Rec1 => {
                let mut b = LoopBuilder::new(name);
                let x = b.array("x", RegClass::Float, flen);
                let y = b.array("y", RegClass::Float, flen);
                let a = b.live_in_float_val("a", 0.5);
                let s = b.live_in_float_val("s", 0.0);
                let xv = b.load(x, 0, u as i64);
                let t = b.fmul(a, s);
                b.fadd_into(s, t, xv);
                b.live_out(s);
                // Independent fill work alongside the recurrence.
                for j in 1..u as i64 {
                    let v = b.load(x, j, u as i64);
                    let w = b.fmul(a, v);
                    b.store(y, j, u as i64, w);
                }
                b.finish(trip)
            }
            Family::Scale => {
                let mut b = LoopBuilder::new(name);
                let x = b.array("x", RegClass::Float, flen);
                let y = b.array("y", RegClass::Float, flen);
                let c = b.live_in_float_val("c", 2.5);
                for j in 0..u as i64 {
                    let v = b.load(x, j, u as i64);
                    let w = b.fmul(c, v);
                    b.store(y, j, u as i64, w);
                }
                b.finish(trip)
            }
            Family::IntAxpy => {
                let mut b = LoopBuilder::new(name);
                let x = b.array("ix", RegClass::Int, flen);
                let y = b.array("iy", RegClass::Int, flen);
                let a = b.live_in_int_val("a", 3);
                for j in 0..u as i64 {
                    let xv = b.load(x, j, u as i64);
                    let yv = b.load(y, j, u as i64);
                    let p = b.imul(a, xv);
                    let s = b.iadd(yv, p);
                    b.store(y, j, u as i64, s);
                }
                b.finish(trip)
            }
            Family::SumSq => {
                let mut b = LoopBuilder::new(name);
                let x = b.array("x", RegClass::Float, flen);
                for j in 0..u {
                    let s = b.live_in_float_val(&format!("s{j}"), 0.0);
                    let v = b.load(x, j as i64, u as i64);
                    let sq = b.fmul(v, v);
                    b.fadd_into(s, s, sq);
                    b.live_out(s);
                }
                b.finish(trip)
            }
            Family::DivMix => {
                let mut b = LoopBuilder::new(name);
                let x = b.array("x", RegClass::Float, flen);
                let w = b.array("w", RegClass::Float, flen);
                let y = b.array("y", RegClass::Float, flen);
                let c = b.live_in_float_val("c", 4.0);
                for j in 0..u as i64 {
                    let xv = b.load(x, j, u as i64);
                    let wv = b.load(w, j, u as i64);
                    let q = b.fdiv(xv, c);
                    let r = b.fmul(q, wv);
                    b.store(y, j, u as i64, r);
                }
                b.finish(trip)
            }
            Family::Copy => {
                let mut b = LoopBuilder::new(name);
                let x = b.array("x", RegClass::Float, flen);
                let y = b.array("y", RegClass::Float, flen);
                for j in 0..u as i64 {
                    let v = b.load(x, j, u as i64);
                    b.store(y, j, u as i64, v);
                }
                b.finish(trip)
            }
            Family::Fir => {
                let mut b = LoopBuilder::new(name);
                let x = b.array("x", RegClass::Float, flen + 8);
                let y = b.array("y", RegClass::Float, flen + 8);
                let cs: Vec<_> = (0..4)
                    .map(|k| b.live_in_float_val(&format!("c{k}"), 0.25 * (k as f64 + 1.0)))
                    .collect();
                for j in 0..u as i64 {
                    let mut acc = None;
                    for (k, &c) in cs.iter().enumerate() {
                        let v = b.load(x, j + k as i64, u as i64);
                        let m = b.fmul(c, v);
                        acc = Some(match acc {
                            None => m,
                            Some(a) => b.fadd(a, m),
                        });
                    }
                    b.store(y, j, u as i64, acc.unwrap());
                }
                b.finish(trip)
            }
            Family::Tridiag => {
                let mut b = LoopBuilder::new(name);
                let x = b.array("x", RegClass::Float, flen + 4);
                let y = b.array("y", RegClass::Float, flen + 4);
                let a = b.live_in_float_val("a", 0.5);
                for j in 0..u as i64 {
                    let yv = b.load(y, j, u as i64);
                    let xv = b.load(x, j, u as i64);
                    let t = b.fmul(a, yv);
                    let r = b.fadd(t, xv);
                    // Store two lanes ahead: iteration i's store feeds the
                    // load of iteration i + 2/u — a carried MEMORY recurrence.
                    b.store(y, j + 2, u as i64, r);
                }
                b.finish(trip)
            }
            Family::Mixed => {
                let mut b = LoopBuilder::new(name);
                let x = b.array("x", RegClass::Float, flen);
                let y = b.array("y", RegClass::Float, flen);
                let n = b.array("n", RegClass::Int, flen);
                let a = b.live_in_float_val("a", 1.25);
                let acc = b.live_in_int_val("acc", 0);
                for j in 0..u as i64 {
                    let xv = b.load(x, j, u as i64);
                    let p = b.fmul(a, xv);
                    let q = b.fadd(p, xv);
                    b.store(y, j, u as i64, q);
                    let iv = b.load(n, j, u as i64);
                    b.iadd_into(acc, acc, iv);
                }
                b.live_out(acc);
                b.finish(trip)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::verify_loop;

    #[test]
    fn every_family_builds_valid_loops() {
        for fam in Family::ALL {
            for u in [1, 2, 4, 8] {
                let l = fam.build(0, u, 48);
                verify_loop(&l).unwrap_or_else(|e| panic!("{} u{u}: {e}", fam.name()));
                assert!(l.n_ops() > 0);
            }
        }
    }

    #[test]
    fn recurrence_families_carry_values() {
        assert!(!Family::Dot.build(0, 4, 32).carried_regs().is_empty());
        assert!(!Family::Rec1.build(0, 4, 32).carried_regs().is_empty());
        assert!(!Family::SumSq.build(0, 4, 32).carried_regs().is_empty());
        assert!(Family::Daxpy.build(0, 4, 32).carried_regs().is_empty());
        assert!(Family::Copy.build(0, 4, 32).carried_regs().is_empty());
    }

    #[test]
    fn op_counts_scale_with_unroll() {
        let l2 = Family::Daxpy.build(0, 2, 32);
        let l8 = Family::Daxpy.build(0, 8, 32);
        assert_eq!(l2.n_ops(), 10);
        assert_eq!(l8.n_ops(), 40);
        assert_eq!(Family::Stencil.build(0, 2, 32).n_ops(), 18);
    }

    #[test]
    fn extended_families_have_expected_structure() {
        let fir = Family::Fir.build(0, 2, 32);
        vliw_ir::verify_loop(&fir).unwrap();
        assert_eq!(fir.n_ops(), 2 * (4 + 4 + 3 + 1)); // 4 loads, 4 muls, 3 adds, store per lane

        let tri = Family::Tridiag.build(0, 2, 32);
        vliw_ir::verify_loop(&tri).unwrap();
        // Memory-carried recurrence shows up in the DDG, not carried_regs.
        assert!(tri.carried_regs().is_empty());
    }

    #[test]
    fn names_encode_family_and_index() {
        let l = Family::Dot.build(17, 4, 32);
        assert!(l.name.starts_with("dot_u4_017"));
    }
}
