//! Property tests for modulo scheduling: every schedule over the corpus
//! families is legal, II never beats MinII, and the MRT respects
//! place/remove symmetry.

use proptest::prelude::*;
use vliw_ddg::{build_ddg, rec_ii};
use vliw_ir::OpId;
use vliw_loopgen::Family;
use vliw_machine::{ClusterId, MachineDesc};
use vliw_sched::{
    list_schedule, schedule_loop, schedule_loop_with, sms_schedule_loop, sms_schedule_loop_with,
    verify_schedule, ImsConfig, ModuloReservationTable, OpPlacement, SchedContext, SchedProblem,
    SmsConfig,
};

fn family() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::Daxpy),
        Just(Family::Dot),
        Just(Family::Stencil),
        Just(Family::Rec1),
        Just(Family::Scale),
        Just(Family::IntAxpy),
        Just(Family::SumSq),
        Just(Family::DivMix),
        Just(Family::Copy),
        Just(Family::Mixed),
    ]
}

fn machine() -> impl Strategy<Value = MachineDesc> {
    prop_oneof![
        Just(MachineDesc::monolithic(16)),
        Just(MachineDesc::monolithic(4)),
        Just(MachineDesc::monolithic(1)),
        Just(MachineDesc::embedded(2, 4)),
        Just(MachineDesc::copy_unit(4, 2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn ims_schedules_are_legal_and_at_least_min_ii(
        fam in family(),
        u in 1usize..8,
        m in machine(),
    ) {
        let l = fam.build(0, u, 32);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let s = schedule_loop(&p, &g, &ImsConfig::default()).unwrap();
        prop_assert!(verify_schedule(&p, &g, &s).is_ok());
        prop_assert!(s.ii >= p.res_ii().max(rec_ii(&g)));
    }

    #[test]
    fn schedule_loop_with_context_is_identical(
        fam in family(),
        u in 1usize..8,
        m in machine(),
    ) {
        // The context-passing entry point must be a pure refactor: same II,
        // same placement times, same cluster assignment as the wrapper that
        // computes RecII and slack itself.
        let l = fam.build(0, u, 32);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let cfg = ImsConfig::default();
        let direct = schedule_loop(&p, &g, &cfg).unwrap();
        let ctx = SchedContext::new(&p, &g);
        let via_ctx = schedule_loop_with(&p, &g, &cfg, &ctx).unwrap();
        prop_assert_eq!(direct.ii, via_ctx.ii);
        prop_assert_eq!(&direct.times, &via_ctx.times);
        prop_assert_eq!(&direct.clusters, &via_ctx.clusters);
        prop_assert!(verify_schedule(&p, &g, &via_ctx).is_ok());
    }

    #[test]
    fn sms_with_context_is_identical(
        fam in family(),
        u in 1usize..6,
        m in machine(),
    ) {
        let l = fam.build(0, u, 32);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let cfg = SmsConfig::default();
        let direct = sms_schedule_loop(&p, &g, &cfg).unwrap();
        let ctx = SchedContext::new(&p, &g);
        let via_ctx = sms_schedule_loop_with(&p, &g, &cfg, &ctx).unwrap();
        prop_assert_eq!(direct.ii, via_ctx.ii);
        prop_assert_eq!(&direct.times, &via_ctx.times);
        prop_assert_eq!(&direct.clusters, &via_ctx.clusters);
    }

    #[test]
    fn list_schedules_are_legal(fam in family(), u in 1usize..6, m in machine()) {
        let l = fam.build(0, u, 1); // straight-line reading of the body
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let s = list_schedule(&p, &g);
        prop_assert!(verify_schedule(&p, &g, &s).is_ok());
    }

    #[test]
    fn mrt_place_remove_roundtrip(
        placements in proptest::collection::vec((0u8..4, 0i64..32), 1..32),
        ii in 1u32..9,
    ) {
        let m = MachineDesc::embedded(4, 1);
        let mut mrt = ModuloReservationTable::new(&m, ii, 64);
        let mut placed = Vec::new();
        for (i, (c, t)) in placements.iter().enumerate() {
            let op = OpId(i as u32);
            let pl = OpPlacement::FuIn(ClusterId(*c as u32));
            if mrt.fits(pl, *t).is_some() {
                mrt.place(op, pl, *t);
                placed.push((op, pl, *t));
            }
        }
        // Removing everything restores full availability.
        for (op, _, _) in &placed {
            mrt.remove(*op);
        }
        for (op, pl, t) in &placed {
            prop_assert!(mrt.fits(*pl, *t).is_some());
            let _ = op;
        }
    }

    #[test]
    fn expansion_issue_count_is_ops_times_trip(
        fam in family(),
        u in 1usize..5,
        trip in 1u32..20,
    ) {
        let l = fam.build(0, u, trip);
        let m = MachineDesc::monolithic(8);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let s = schedule_loop(&p, &g, &ImsConfig::default()).unwrap();
        let flat = vliw_sched::expand(&l, &s);
        prop_assert_eq!(flat.n_issues(), l.n_ops() * trip as usize);
        // Cycle count matches the modulo-schedule closed form.
        let max_t = (0..l.n_ops()).map(|i| s.time(vliw_ir::OpId(i as u32))).max().unwrap();
        prop_assert_eq!(flat.len() as i64, (trip as i64 - 1) * s.ii as i64 + max_t + 1);
    }
}
