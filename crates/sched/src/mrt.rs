//! The modulo reservation table (MRT).
//!
//! One row per cycle of the initiation interval; each row tracks how many
//! functional-unit slots are in use per cluster, how many copy busses are in
//! use system-wide, and how many copy ports are in use per cluster. An
//! operation scheduled at absolute time `t` occupies resources in row
//! `t mod II` — the defining property of modulo scheduling (§2).
//!
//! Storage is flat: occupancy counters per (row, resource) answer
//! [`fits`](ModuloReservationTable::fits) in O(1) per cluster, and fixed
//! capacity-sized slot arrays record *which* op holds each resource so the
//! eviction path ([`conflicts_into`](ModuloReservationTable::conflicts_into))
//! fills a caller-provided scratch buffer without allocating. After
//! construction the table never allocates.

use crate::problem::OpPlacement;
use vliw_ir::OpId;
use vliw_machine::{ClusterId, CopyModel, MachineDesc};

/// Modulo reservation table for a machine and a candidate II.
#[derive(Debug, Clone)]
pub struct ModuloReservationTable {
    ii: u32,
    n_clusters: usize,
    /// FU capacity per cluster.
    fu_cap: Vec<usize>,
    /// Offset of each cluster's slot block within a row's FU slots.
    fu_off: Vec<usize>,
    /// Σ fu_cap — width of one row's FU slot block.
    fu_stride: usize,
    /// `rows × fu_stride` op slots (`None` = free).
    fu_slots: Vec<Option<OpId>>,
    /// `rows × n_clusters` occupancy counters.
    fu_used: Vec<u32>,
    bus_cap: usize,
    /// `rows × bus_cap` op slots.
    bus_slots: Vec<Option<OpId>>,
    /// `rows` occupancy counters.
    bus_used: Vec<u32>,
    port_cap: usize,
    /// `rows × n_clusters × port_cap` op slots.
    port_slots: Vec<Option<OpId>>,
    /// `rows × n_clusters` occupancy counters.
    port_used: Vec<u32>,
    /// For `AnyFu` placements we still need to know which cluster's slot the
    /// op occupies; remember it per op.
    holding: Vec<Option<(u32, OpPlacement, ClusterId)>>,
}

impl ModuloReservationTable {
    /// Empty table for `machine` at initiation interval `ii`.
    pub fn new(machine: &MachineDesc, ii: u32, n_ops: usize) -> Self {
        let n_clusters = machine.n_clusters();
        let rows = ii as usize;
        let (bus_cap, port_cap) = match machine.copy_model {
            CopyModel::CopyUnit {
                busses,
                ports_per_cluster,
            } => (busses, ports_per_cluster),
            CopyModel::Embedded => (0, 0),
        };
        let fu_cap: Vec<usize> = machine.clusters.iter().map(|c| c.n_fus).collect();
        let mut fu_off = Vec::with_capacity(n_clusters);
        let mut fu_stride = 0usize;
        for &cap in &fu_cap {
            fu_off.push(fu_stride);
            fu_stride += cap;
        }
        ModuloReservationTable {
            ii,
            n_clusters,
            fu_cap,
            fu_off,
            fu_stride,
            fu_slots: vec![None; rows * fu_stride],
            fu_used: vec![0; rows * n_clusters],
            bus_cap,
            bus_slots: vec![None; rows * bus_cap],
            bus_used: vec![0; rows],
            port_cap,
            port_slots: vec![None; rows * n_clusters * port_cap],
            port_used: vec![0; rows * n_clusters],
            holding: vec![None; n_ops],
        }
    }

    /// The initiation interval this table models.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    fn row_of(&self, time: i64) -> usize {
        debug_assert!(time >= 0);
        (time as u64 % self.ii as u64) as usize
    }

    /// FU slot block of cluster `c` in row `r`.
    #[inline]
    fn fu_block(&self, r: usize, c: usize) -> std::ops::Range<usize> {
        let base = r * self.fu_stride + self.fu_off[c];
        base..base + self.fu_cap[c]
    }

    /// Copy-port slot block of cluster `c` in row `r`.
    #[inline]
    fn port_block(&self, r: usize, c: usize) -> std::ops::Range<usize> {
        let base = (r * self.n_clusters + c) * self.port_cap;
        base..base + self.port_cap
    }

    /// Bus slot block of row `r`.
    #[inline]
    fn bus_block(&self, r: usize) -> std::ops::Range<usize> {
        r * self.bus_cap..(r + 1) * self.bus_cap
    }

    /// Can `op` with `placement` be placed at `time`? Returns the cluster
    /// whose slot it would occupy (for `AnyFu`, the least-loaded cluster with
    /// a free slot). O(n_clusters) worst case, allocation-free.
    pub fn fits(&self, placement: OpPlacement, time: i64) -> Option<ClusterId> {
        let r = self.row_of(time);
        match placement {
            OpPlacement::AnyFu => (0..self.n_clusters)
                .filter(|&c| (self.fu_used[r * self.n_clusters + c] as usize) < self.fu_cap[c])
                .min_by_key(|&c| self.fu_used[r * self.n_clusters + c])
                .map(|c| ClusterId(c as u32)),
            OpPlacement::FuIn(c) => ((self.fu_used[r * self.n_clusters + c.index()] as usize)
                < self.fu_cap[c.index()])
            .then_some(c),
            OpPlacement::CopyVia(c) => ((self.bus_used[r] as usize) < self.bus_cap
                && (self.port_used[r * self.n_clusters + c.index()] as usize) < self.port_cap)
                .then_some(c),
        }
    }

    fn claim(slots: &mut [Option<OpId>], op: OpId) {
        for s in slots.iter_mut() {
            if s.is_none() {
                *s = Some(op);
                return;
            }
        }
        unreachable!("claim() called on a full slot block");
    }

    fn release(slots: &mut [Option<OpId>], op: OpId) {
        for s in slots.iter_mut() {
            if *s == Some(op) {
                *s = None;
                return;
            }
        }
    }

    /// Place `op` at `time`; the caller must have checked [`fits`].
    ///
    /// [`fits`]: ModuloReservationTable::fits
    pub fn place(&mut self, op: OpId, placement: OpPlacement, time: i64) {
        let cluster = self
            .fits(placement, time)
            .expect("place() called without a fitting slot");
        let r = self.row_of(time);
        match placement {
            OpPlacement::AnyFu | OpPlacement::FuIn(_) => {
                let block = self.fu_block(r, cluster.index());
                Self::claim(&mut self.fu_slots[block], op);
                self.fu_used[r * self.n_clusters + cluster.index()] += 1;
            }
            OpPlacement::CopyVia(c) => {
                let bus = self.bus_block(r);
                Self::claim(&mut self.bus_slots[bus], op);
                self.bus_used[r] += 1;
                let port = self.port_block(r, c.index());
                Self::claim(&mut self.port_slots[port], op);
                self.port_used[r * self.n_clusters + c.index()] += 1;
            }
        }
        self.holding[op.index()] = Some((r as u32, placement, cluster));
    }

    /// Remove `op` from the table (no-op if not placed).
    pub fn remove(&mut self, op: OpId) {
        let Some((r, placement, cluster)) = self.holding[op.index()].take() else {
            return;
        };
        let r = r as usize;
        match placement {
            OpPlacement::AnyFu | OpPlacement::FuIn(_) => {
                let block = self.fu_block(r, cluster.index());
                Self::release(&mut self.fu_slots[block], op);
                self.fu_used[r * self.n_clusters + cluster.index()] -= 1;
            }
            OpPlacement::CopyVia(c) => {
                let bus = self.bus_block(r);
                Self::release(&mut self.bus_slots[bus], op);
                self.bus_used[r] -= 1;
                let port = self.port_block(r, c.index());
                Self::release(&mut self.port_slots[port], op);
                self.port_used[r * self.n_clusters + c.index()] -= 1;
            }
        }
    }

    /// The cluster whose issue slot (or copy port) `op` occupies, if placed.
    pub fn cluster_of(&self, op: OpId) -> Option<ClusterId> {
        self.holding[op.index()].map(|(_, _, c)| c)
    }

    /// Fill `out` with the ops that would have to be evicted for `op` with
    /// `placement` to fit at `time` — the candidates sharing the contended
    /// resource in that row. Allocation-free given a warmed-up scratch
    /// buffer; this is the eviction hot path.
    pub fn conflicts_into(&self, placement: OpPlacement, time: i64, out: &mut Vec<OpId>) {
        out.clear();
        let r = self.row_of(time);
        match placement {
            OpPlacement::AnyFu => {
                // Every cluster is full (else `fits` would have succeeded);
                // the cheapest eviction is from the cluster with capacity.
                out.extend(
                    self.fu_slots[r * self.fu_stride..(r + 1) * self.fu_stride]
                        .iter()
                        .flatten(),
                );
            }
            OpPlacement::FuIn(c) => {
                let block = self.fu_block(r, c.index());
                out.extend(self.fu_slots[block].iter().flatten());
            }
            OpPlacement::CopyVia(c) => {
                if self.bus_used[r] as usize >= self.bus_cap {
                    out.extend(self.bus_slots[self.bus_block(r)].iter().flatten());
                }
                if self.port_used[r * self.n_clusters + c.index()] as usize >= self.port_cap {
                    out.extend(
                        self.port_slots[self.port_block(r, c.index())]
                            .iter()
                            .flatten(),
                    );
                }
                out.sort_unstable();
                out.dedup();
            }
        }
    }

    /// Allocating convenience wrapper around
    /// [`conflicts_into`](ModuloReservationTable::conflicts_into).
    pub fn conflicts(&self, placement: OpPlacement, time: i64) -> Vec<OpId> {
        let mut out = Vec::new();
        self.conflicts_into(placement, time, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n_clusters: usize, fus: usize, ii: u32) -> ModuloReservationTable {
        let m = MachineDesc::embedded(n_clusters, fus);
        ModuloReservationTable::new(&m, ii, 32)
    }

    #[test]
    fn fills_cluster_to_capacity() {
        let mut t = table(2, 2, 1);
        let c0 = ClusterId(0);
        assert!(t.fits(OpPlacement::FuIn(c0), 0).is_some());
        t.place(OpId(0), OpPlacement::FuIn(c0), 0);
        t.place(OpId(1), OpPlacement::FuIn(c0), 0);
        assert!(t.fits(OpPlacement::FuIn(c0), 0).is_none());
        assert!(t.fits(OpPlacement::FuIn(ClusterId(1)), 0).is_some());
        // AnyFu falls over to cluster 1.
        assert_eq!(t.fits(OpPlacement::AnyFu, 0), Some(ClusterId(1)));
    }

    #[test]
    fn modulo_wraparound() {
        let mut t = table(1, 1, 3);
        t.place(OpId(0), OpPlacement::AnyFu, 1);
        // time 4 ≡ 1 (mod 3): same row, full.
        assert!(t.fits(OpPlacement::AnyFu, 4).is_none());
        assert!(t.fits(OpPlacement::AnyFu, 3).is_some());
        assert!(t.fits(OpPlacement::AnyFu, 5).is_some());
    }

    #[test]
    fn remove_frees_slot() {
        let mut t = table(1, 1, 2);
        t.place(OpId(0), OpPlacement::AnyFu, 0);
        assert!(t.fits(OpPlacement::AnyFu, 2).is_none());
        t.remove(OpId(0));
        assert!(t.fits(OpPlacement::AnyFu, 2).is_some());
        assert_eq!(t.cluster_of(OpId(0)), None);
    }

    #[test]
    fn copy_unit_bus_and_port_limits() {
        let m = MachineDesc::copy_unit(2, 8); // 2 busses, 1 port/cluster
        let mut t = ModuloReservationTable::new(&m, 1, 8);
        let via0 = OpPlacement::CopyVia(ClusterId(0));
        let via1 = OpPlacement::CopyVia(ClusterId(1));
        t.place(OpId(0), via0, 0);
        // Port at cluster 0 exhausted; bus still free.
        assert!(t.fits(via0, 0).is_none());
        assert!(t.fits(via1, 0).is_some());
        t.place(OpId(1), via1, 0);
        // Both busses now used.
        assert!(t.fits(via1, 0).is_none());
        let conf = t.conflicts(via1, 0);
        assert!(conf.contains(&OpId(0)) || conf.contains(&OpId(1)));
        // Copies never consume FU slots.
        assert!(t.fits(OpPlacement::FuIn(ClusterId(0)), 0).is_some());
    }

    #[test]
    fn conflicts_lists_row_occupants() {
        let mut t = table(1, 2, 2);
        t.place(OpId(3), OpPlacement::AnyFu, 0);
        t.place(OpId(4), OpPlacement::AnyFu, 0);
        let c = t.conflicts(OpPlacement::FuIn(ClusterId(0)), 2);
        assert_eq!(c.len(), 2);
        assert!(c.contains(&OpId(3)) && c.contains(&OpId(4)));
    }

    #[test]
    fn conflicts_into_reuses_scratch_without_stale_entries() {
        let mut t = table(2, 1, 1);
        t.place(OpId(0), OpPlacement::FuIn(ClusterId(0)), 0);
        t.place(OpId(1), OpPlacement::FuIn(ClusterId(1)), 0);
        let mut scratch = vec![OpId(9); 7]; // pre-polluted
        t.conflicts_into(OpPlacement::FuIn(ClusterId(0)), 0, &mut scratch);
        assert_eq!(scratch, vec![OpId(0)]);
        t.conflicts_into(OpPlacement::AnyFu, 0, &mut scratch);
        assert_eq!(scratch.len(), 2);
    }

    #[test]
    fn place_remove_place_reuses_freed_slot() {
        let mut t = table(1, 2, 1);
        t.place(OpId(0), OpPlacement::AnyFu, 0);
        t.place(OpId(1), OpPlacement::AnyFu, 0);
        assert!(t.fits(OpPlacement::AnyFu, 0).is_none());
        t.remove(OpId(0));
        t.place(OpId(2), OpPlacement::AnyFu, 0);
        assert!(t.fits(OpPlacement::AnyFu, 0).is_none());
        let c = t.conflicts(OpPlacement::FuIn(ClusterId(0)), 0);
        assert!(c.contains(&OpId(1)) && c.contains(&OpId(2)));
    }
}
