//! The modulo reservation table (MRT).
//!
//! One row per cycle of the initiation interval; each row tracks how many
//! functional-unit slots are in use per cluster, how many copy busses are in
//! use system-wide, and how many copy ports are in use per cluster. An
//! operation scheduled at absolute time `t` occupies resources in row
//! `t mod II` — the defining property of modulo scheduling (§2).

use crate::problem::OpPlacement;
use vliw_ir::OpId;
use vliw_machine::{ClusterId, CopyModel, MachineDesc};

/// Per-row resource occupancy, with the ops occupying each resource recorded
/// so the scheduler can evict them.
#[derive(Debug, Clone, Default)]
struct Row {
    /// Ops holding an FU slot, per cluster.
    fu: Vec<Vec<OpId>>,
    /// Ops holding a copy bus (system-wide).
    bus: Vec<OpId>,
    /// Ops holding a copy port, per destination cluster.
    port: Vec<Vec<OpId>>,
}

/// Modulo reservation table for a machine and a candidate II.
#[derive(Debug, Clone)]
pub struct ModuloReservationTable {
    ii: u32,
    rows: Vec<Row>,
    fu_cap: Vec<usize>,
    bus_cap: usize,
    port_cap: usize,
    /// For `AnyFu` placements we still need to know which cluster's slot the
    /// op occupies; remember it per op.
    holding: Vec<Option<(u32, OpPlacement, ClusterId)>>,
}

impl ModuloReservationTable {
    /// Empty table for `machine` at initiation interval `ii`.
    pub fn new(machine: &MachineDesc, ii: u32, n_ops: usize) -> Self {
        let n_clusters = machine.n_clusters();
        let (bus_cap, port_cap) = match machine.copy_model {
            CopyModel::CopyUnit {
                busses,
                ports_per_cluster,
            } => (busses, ports_per_cluster),
            CopyModel::Embedded => (0, 0),
        };
        ModuloReservationTable {
            ii,
            rows: (0..ii)
                .map(|_| Row {
                    fu: vec![Vec::new(); n_clusters],
                    bus: Vec::new(),
                    port: vec![Vec::new(); n_clusters],
                })
                .collect(),
            fu_cap: machine.clusters.iter().map(|c| c.n_fus).collect(),
            bus_cap,
            port_cap,
            holding: vec![None; n_ops],
        }
    }

    /// The initiation interval this table models.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    fn row_of(&self, time: i64) -> usize {
        debug_assert!(time >= 0);
        (time as u64 % self.ii as u64) as usize
    }

    /// Can `op` with `placement` be placed at `time`? Returns the cluster
    /// whose slot it would occupy (for `AnyFu`, the least-loaded cluster with
    /// a free slot).
    pub fn fits(&self, placement: OpPlacement, time: i64) -> Option<ClusterId> {
        let row = &self.rows[self.row_of(time)];
        match placement {
            OpPlacement::AnyFu => (0..row.fu.len())
                .filter(|&c| row.fu[c].len() < self.fu_cap[c])
                .min_by_key(|&c| row.fu[c].len())
                .map(|c| ClusterId(c as u32)),
            OpPlacement::FuIn(c) => (row.fu[c.index()].len() < self.fu_cap[c.index()]).then_some(c),
            OpPlacement::CopyVia(c) => (row.bus.len() < self.bus_cap
                && row.port[c.index()].len() < self.port_cap)
                .then_some(c),
        }
    }

    /// Place `op` at `time`; the caller must have checked [`fits`].
    ///
    /// [`fits`]: ModuloReservationTable::fits
    pub fn place(&mut self, op: OpId, placement: OpPlacement, time: i64) {
        let cluster = self
            .fits(placement, time)
            .expect("place() called without a fitting slot");
        let r = self.row_of(time);
        let row = &mut self.rows[r];
        match placement {
            OpPlacement::AnyFu | OpPlacement::FuIn(_) => row.fu[cluster.index()].push(op),
            OpPlacement::CopyVia(c) => {
                row.bus.push(op);
                row.port[c.index()].push(op);
            }
        }
        self.holding[op.index()] = Some((r as u32, placement, cluster));
    }

    /// Remove `op` from the table (no-op if not placed).
    pub fn remove(&mut self, op: OpId) {
        let Some((r, placement, cluster)) = self.holding[op.index()].take() else {
            return;
        };
        let row = &mut self.rows[r as usize];
        match placement {
            OpPlacement::AnyFu | OpPlacement::FuIn(_) => {
                row.fu[cluster.index()].retain(|&o| o != op)
            }
            OpPlacement::CopyVia(c) => {
                row.bus.retain(|&o| o != op);
                row.port[c.index()].retain(|&o| o != op);
            }
        }
    }

    /// The cluster whose issue slot (or copy port) `op` occupies, if placed.
    pub fn cluster_of(&self, op: OpId) -> Option<ClusterId> {
        self.holding[op.index()].map(|(_, _, c)| c)
    }

    /// Ops that would have to be evicted for `op` with `placement` to fit at
    /// `time`. Returns candidates sharing the contended resource in that row.
    pub fn conflicts(&self, placement: OpPlacement, time: i64) -> Vec<OpId> {
        let row = &self.rows[self.row_of(time)];
        match placement {
            OpPlacement::AnyFu => {
                // Every cluster is full (else `fits` would have succeeded);
                // the cheapest eviction is from the cluster with capacity.
                row.fu.iter().flatten().copied().collect()
            }
            OpPlacement::FuIn(c) => row.fu[c.index()].clone(),
            OpPlacement::CopyVia(c) => {
                let mut v = Vec::new();
                if row.bus.len() >= self.bus_cap {
                    v.extend(row.bus.iter().copied());
                }
                if row.port[c.index()].len() >= self.port_cap {
                    v.extend(row.port[c.index()].iter().copied());
                }
                v.sort_unstable();
                v.dedup();
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n_clusters: usize, fus: usize, ii: u32) -> ModuloReservationTable {
        let m = MachineDesc::embedded(n_clusters, fus);
        ModuloReservationTable::new(&m, ii, 32)
    }

    #[test]
    fn fills_cluster_to_capacity() {
        let mut t = table(2, 2, 1);
        let c0 = ClusterId(0);
        assert!(t.fits(OpPlacement::FuIn(c0), 0).is_some());
        t.place(OpId(0), OpPlacement::FuIn(c0), 0);
        t.place(OpId(1), OpPlacement::FuIn(c0), 0);
        assert!(t.fits(OpPlacement::FuIn(c0), 0).is_none());
        assert!(t.fits(OpPlacement::FuIn(ClusterId(1)), 0).is_some());
        // AnyFu falls over to cluster 1.
        assert_eq!(t.fits(OpPlacement::AnyFu, 0), Some(ClusterId(1)));
    }

    #[test]
    fn modulo_wraparound() {
        let mut t = table(1, 1, 3);
        t.place(OpId(0), OpPlacement::AnyFu, 1);
        // time 4 ≡ 1 (mod 3): same row, full.
        assert!(t.fits(OpPlacement::AnyFu, 4).is_none());
        assert!(t.fits(OpPlacement::AnyFu, 3).is_some());
        assert!(t.fits(OpPlacement::AnyFu, 5).is_some());
    }

    #[test]
    fn remove_frees_slot() {
        let mut t = table(1, 1, 2);
        t.place(OpId(0), OpPlacement::AnyFu, 0);
        assert!(t.fits(OpPlacement::AnyFu, 2).is_none());
        t.remove(OpId(0));
        assert!(t.fits(OpPlacement::AnyFu, 2).is_some());
        assert_eq!(t.cluster_of(OpId(0)), None);
    }

    #[test]
    fn copy_unit_bus_and_port_limits() {
        let m = MachineDesc::copy_unit(2, 8); // 2 busses, 1 port/cluster
        let mut t = ModuloReservationTable::new(&m, 1, 8);
        let via0 = OpPlacement::CopyVia(ClusterId(0));
        let via1 = OpPlacement::CopyVia(ClusterId(1));
        t.place(OpId(0), via0, 0);
        // Port at cluster 0 exhausted; bus still free.
        assert!(t.fits(via0, 0).is_none());
        assert!(t.fits(via1, 0).is_some());
        t.place(OpId(1), via1, 0);
        // Both busses now used.
        assert!(t.fits(via1, 0).is_none());
        let conf = t.conflicts(via1, 0);
        assert!(conf.contains(&OpId(0)) || conf.contains(&OpId(1)));
        // Copies never consume FU slots.
        assert!(t.fits(OpPlacement::FuIn(ClusterId(0)), 0).is_some());
    }

    #[test]
    fn conflicts_lists_row_occupants() {
        let mut t = table(1, 2, 2);
        t.place(OpId(3), OpPlacement::AnyFu, 0);
        t.place(OpId(4), OpPlacement::AnyFu, 0);
        let c = t.conflicts(OpPlacement::FuIn(ClusterId(0)), 2);
        assert_eq!(c.len(), 2);
        assert!(c.contains(&OpId(3)) && c.contains(&OpId(4)));
    }
}
