//! Legality checking for modulo schedules — the oracle the property tests
//! and the end-to-end pipeline lean on.

use crate::mrt::ModuloReservationTable;
use crate::problem::{OpPlacement, SchedProblem};
use crate::schedule::Schedule;
use std::fmt;
use vliw_ddg::Ddg;
use vliw_ir::OpId;

/// A legality violation in a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Wrong number of entries.
    Shape,
    /// An issue time is negative.
    NegativeTime(OpId),
    /// A dependence edge is violated modulo II.
    Dependence {
        /// Source op of the violated edge.
        from: OpId,
        /// Sink op of the violated edge.
        to: OpId,
        /// Required minimum separation in cycles.
        need: i64,
        /// Actual separation in cycles.
        got: i64,
    },
    /// A kernel row over-subscribes a resource.
    Resource(OpId),
    /// An op landed on a cluster other than its pinned one.
    WrongCluster(OpId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Shape => write!(f, "schedule shape mismatch"),
            ScheduleError::NegativeTime(o) => write!(f, "{o} scheduled at negative time"),
            ScheduleError::Dependence {
                from,
                to,
                need,
                got,
            } => write!(
                f,
                "dependence {from}→{to} violated: need separation {need}, got {got}"
            ),
            ScheduleError::Resource(o) => write!(f, "{o} over-subscribes a resource"),
            ScheduleError::WrongCluster(o) => write!(f, "{o} placed on the wrong cluster"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Check that `s` is a legal modulo schedule for `problem` under `ddg`,
/// stopping at the first violation.
pub fn verify_schedule(
    problem: &SchedProblem<'_>,
    ddg: &Ddg,
    s: &Schedule,
) -> Result<(), ScheduleError> {
    match verify_schedule_all(problem, ddg, s).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Collect **every** legality violation of `s`, in a stable order: shape,
/// negative times, dependences, then resource/cluster replay. The lint
/// framework (`vliw-analysis`) reports through this so one corrupted
/// schedule yields its full list of findings rather than just the first.
pub fn verify_schedule_all(
    problem: &SchedProblem<'_>,
    ddg: &Ddg,
    s: &Schedule,
) -> Vec<ScheduleError> {
    let n = problem.n_ops();
    if s.times.len() != n || s.clusters.len() != n || ddg.n_ops() != n {
        return vec![ScheduleError::Shape];
    }
    let mut out = Vec::new();
    let mut any_negative = false;
    for (i, &t) in s.times.iter().enumerate() {
        if t < 0 {
            any_negative = true;
            out.push(ScheduleError::NegativeTime(OpId(i as u32)));
        }
    }
    // Dependences: cycle(to) ≥ cycle(from) + latency − II·distance.
    for e in ddg.edges() {
        let need = e.latency - (s.ii as i64) * (e.distance as i64);
        let got = s.time(e.to) - s.time(e.from);
        if got < need {
            out.push(ScheduleError::Dependence {
                from: e.from,
                to: e.to,
                need,
                got,
            });
        }
    }
    // Resources: replay every placement into a fresh MRT. Skipped when any
    // issue time is negative — rows are undefined there.
    if any_negative {
        return out;
    }
    let mut mrt = ModuloReservationTable::new(problem.machine, s.ii, n);
    for i in 0..n {
        let op = OpId(i as u32);
        let placement = problem.placement[i];
        // The op must sit on its recorded cluster; for pinned placements the
        // recorded cluster must equal the pin.
        match placement {
            OpPlacement::FuIn(c) | OpPlacement::CopyVia(c) => {
                if s.cluster(op) != c {
                    out.push(ScheduleError::WrongCluster(op));
                }
            }
            OpPlacement::AnyFu => {}
        }
        // Re-place pinned to the recorded cluster so capacity counts match.
        let eff = match placement {
            OpPlacement::AnyFu => OpPlacement::FuIn(s.cluster(op)),
            other => other,
        };
        // An op that doesn't fit is reported and left unplaced, so the ops
        // after it are judged against the legally placed prefix.
        if mrt.fits(eff, s.time(op)).is_none() {
            out.push(ScheduleError::Resource(op));
        } else {
            mrt.place(op, eff, s.time(op));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::build_ddg;
    use vliw_ir::{LoopBuilder, RegClass};
    use vliw_machine::{ClusterId, MachineDesc};

    fn setup() -> (vliw_ir::Loop, MachineDesc) {
        let mut b = LoopBuilder::new("v");
        let x = b.array("x", RegClass::Float, 64);
        let v = b.load(x, 0, 1);
        let c = b.fconst_new(2.0);
        let m = b.fmul(v, c);
        b.store(x, 0, 1, m);
        (b.finish(64), MachineDesc::monolithic(4))
    }

    #[test]
    fn catches_dependence_violation() {
        let (l, m) = setup();
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        // fmul at 0 but its load also at 0: violates load latency 2.
        let s = Schedule {
            ii: 4,
            times: vec![0, 0, 0, 5],
            clusters: vec![ClusterId(0); 4],
        };
        assert!(matches!(
            verify_schedule(&p, &g, &s),
            Err(ScheduleError::Dependence { .. })
        ));
    }

    #[test]
    fn catches_resource_overflow() {
        let (l, m1) = setup();
        let m = MachineDesc::monolithic(1); // 1-wide
        let _ = m1;
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        // Two ops share row 0 of a 1-wide machine (times 0 and 0, ii 4).
        let s = Schedule {
            ii: 4,
            times: vec![0, 0, 2, 7],
            clusters: vec![ClusterId(0); 4],
        };
        assert!(matches!(
            verify_schedule(&p, &g, &s),
            Err(ScheduleError::Resource(_))
        ));
    }

    #[test]
    fn accepts_legal_schedule() {
        let (l, m) = setup();
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let s = Schedule {
            ii: 1,
            times: vec![0, 0, 2, 4],
            clusters: vec![ClusterId(0); 4],
        };
        // ii=1, 4-wide: row 0 holds all four ops — fits.
        verify_schedule(&p, &g, &s).unwrap();
    }

    #[test]
    fn catches_wrong_cluster() {
        let (l, _) = setup();
        let m = MachineDesc::embedded(2, 2);
        let g = build_ddg(&l, &m.latencies);
        let pins = vec![ClusterId(1); 4];
        let p = SchedProblem::clustered(&l, &m, &pins);
        let s = Schedule {
            ii: 2,
            times: vec![0, 0, 2, 4],
            clusters: vec![ClusterId(0); 4], // recorded on the wrong cluster
        };
        assert!(matches!(
            verify_schedule(&p, &g, &s),
            Err(ScheduleError::WrongCluster(_))
        ));
    }
}
