//! # vliw-sched — iterative modulo scheduling for clustered VLIW machines
//!
//! Implements the software-pipelining half of the paper's framework:
//! Rau-style **iterative modulo scheduling** (§2; Rau, MICRO-27 1994) over a
//! modulo reservation table that models clustered functional units and, in
//! the copy-unit machine model, inter-cluster copy busses and register-bank
//! copy ports.
//!
//! The same scheduler produces both schedules the paper needs:
//!
//! * the **ideal schedule** — the loop modulo-scheduled for the full issue
//!   width with a single monolithic register bank (every op may use any
//!   functional unit), which the register component graph is built from and
//!   every result is normalised against; and
//! * the **clustered schedule** — after partitioning, every operation is
//!   pinned to the cluster that owns its operands and inserted copies compete
//!   for issue slots (embedded model) or busses/ports (copy-unit model).
//!
//! [`expand`](crate::expand::expand) turns a kernel schedule into flat prelude/kernel/postlude code
//! (§2: "code to set up the software pipeline (prelude) and drain the
//! pipeline (postlude)"), which the simulator executes.

#![warn(missing_docs)]

pub mod context;
pub mod expand;
pub mod ims;
pub mod list;
pub mod mrt;
pub mod problem;
pub mod schedule;
pub mod sms;
pub mod verify;

pub use context::SchedContext;
pub use expand::{expand, FlatProgram};
pub use ims::{schedule_loop, schedule_loop_with, ImsConfig, SchedError};
pub use list::list_schedule;
pub use mrt::ModuloReservationTable;
pub use problem::{OpPlacement, SchedProblem};
pub use schedule::Schedule;
pub use sms::{sms_schedule_loop, sms_schedule_loop_with, SmsConfig};
pub use verify::{verify_schedule, verify_schedule_all, ScheduleError};
