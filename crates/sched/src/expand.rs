//! Flat code expansion: prelude, kernel, postlude.
//!
//! A modulo schedule issues operation `o` of iteration `i` at cycle
//! `i·II + time(o)`. Expanding that over the loop's trip count yields the
//! flat instruction stream of §2: `(SC−1)·II` cycles of prelude filling the
//! pipeline, a steady-state kernel executed while whole iterations overlap,
//! and a postlude draining the final `SC−1` stages (SC = stage count).

use crate::schedule::Schedule;
use vliw_ir::{Loop, OpId};

/// One issued operation instance in the flat program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Issue {
    /// Which body operation.
    pub op: OpId,
    /// Which loop iteration it belongs to.
    pub iter: u32,
}

/// The fully expanded (prelude + kernel repetitions + postlude) program.
#[derive(Debug, Clone)]
pub struct FlatProgram {
    /// Instructions, one per cycle; each holds the ops issued that cycle.
    pub cycles: Vec<Vec<Issue>>,
    /// The initiation interval the program was expanded from.
    pub ii: u32,
    /// Pipeline stage count.
    pub stage_count: u32,
    /// Cycles of prelude before the first steady-state kernel instruction
    /// (0 when the trip count is too small for the pipeline to fill).
    pub prelude_cycles: usize,
    /// Number of steady-state kernel repetitions.
    pub kernel_reps: u32,
}

impl FlatProgram {
    /// Total cycle count of the expanded program.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// True when no cycles were generated (zero-trip loop).
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Total dynamic operation count.
    pub fn n_issues(&self) -> usize {
        self.cycles.iter().map(Vec::len).sum()
    }
}

/// Expand `s` over `body.trip_count` iterations.
pub fn expand(body: &Loop, s: &Schedule) -> FlatProgram {
    let trip = body.trip_count;
    let sc = s.stage_count();
    if trip == 0 || body.n_ops() == 0 {
        return FlatProgram {
            cycles: Vec::new(),
            ii: s.ii,
            stage_count: sc,
            prelude_cycles: 0,
            kernel_reps: 0,
        };
    }
    // Last issue happens at (trip-1)·II + max(time).
    let max_t = s.times.iter().copied().max().unwrap_or(0);
    let total = (trip as i64 - 1) * s.ii as i64 + max_t + 1;
    let mut cycles: Vec<Vec<Issue>> = vec![Vec::new(); total as usize];
    for iter in 0..trip {
        for (i, &t) in s.times.iter().enumerate() {
            let cycle = iter as i64 * s.ii as i64 + t;
            cycles[cycle as usize].push(Issue {
                op: OpId(i as u32),
                iter,
            });
        }
    }
    let (prelude_cycles, kernel_reps) = if trip >= sc {
        (((sc - 1) * s.ii) as usize, trip - sc + 1)
    } else {
        (0, 0)
    };
    FlatProgram {
        cycles,
        ii: s.ii,
        stage_count: sc,
        prelude_cycles,
        kernel_reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_machine::ClusterId;

    fn body(n_ops: usize, trip: u32) -> Loop {
        let mut b = vliw_ir::LoopBuilder::new("e");
        for _ in 0..n_ops {
            b.fconst_new(1.0);
        }
        b.finish(trip)
    }

    fn sched(ii: u32, times: Vec<i64>) -> Schedule {
        let clusters = vec![ClusterId(0); times.len()];
        Schedule {
            ii,
            times,
            clusters,
        }
    }

    #[test]
    fn expansion_covers_every_issue() {
        let l = body(3, 5);
        let s = sched(2, vec![0, 1, 3]);
        let p = expand(&l, &s);
        assert_eq!(p.n_issues(), 15);
        // length = 4·2 + 3 + 1 = 12
        assert_eq!(p.len(), 12);
        // stage count = floor(3/2)+1 = 2; prelude = 1·2 = 2 cycles.
        assert_eq!(p.stage_count, 2);
        assert_eq!(p.prelude_cycles, 2);
        assert_eq!(p.kernel_reps, 4);
        // First cycle issues op0 of iteration 0 only.
        assert_eq!(
            p.cycles[0],
            vec![Issue {
                op: OpId(0),
                iter: 0
            }]
        );
        // Cycle 2 overlaps iteration 1's op0 with iteration 0's op... op2 of
        // iter 0 issues at cycle 3; cycle 2 has op0/iter1 only.
        assert_eq!(
            p.cycles[2],
            vec![Issue {
                op: OpId(0),
                iter: 1
            }]
        );
        assert!(p.cycles[3].contains(&Issue {
            op: OpId(2),
            iter: 0
        }));
        assert!(p.cycles[3].contains(&Issue {
            op: OpId(1),
            iter: 1
        }));
    }

    #[test]
    fn short_trip_never_fills_pipeline() {
        let l = body(2, 1);
        let s = sched(1, vec![0, 4]); // 5 stages
        let p = expand(&l, &s);
        assert_eq!(p.kernel_reps, 0);
        assert_eq!(p.prelude_cycles, 0);
        assert_eq!(p.n_issues(), 2);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn zero_trip_is_empty() {
        let l = body(2, 0);
        let s = sched(1, vec![0, 1]);
        let p = expand(&l, &s);
        assert!(p.is_empty());
    }

    #[test]
    fn issues_ordered_by_cycle() {
        let l = body(4, 3);
        let s = sched(3, vec![0, 1, 2, 5]);
        let p = expand(&l, &s);
        // Every issue's cycle matches iter·II + time.
        for (c, issues) in p.cycles.iter().enumerate() {
            for iss in issues {
                assert_eq!(
                    c as i64,
                    iss.iter as i64 * 3 + s.time(iss.op),
                    "misplaced issue"
                );
            }
        }
    }
}
