//! Swing modulo scheduling (Llosa, González, Ayguadé, Valero; PACT '96).
//!
//! §6.3 of the paper notes that Nystrom and Eichenberger "use Swing
//! Scheduling that attempts to reduce register requirements. Certainly this
//! could have an effect on the partitioning of registers." Implementing SMS
//! alongside Rau's iterative scheme lets the benches quantify exactly that
//! effect (`ablations` bench, `repro --ablation`).
//!
//! SMS's distinguishing ideas, both kept here:
//!
//! * **ordering** — nodes are scheduled lowest-mobility first (critical
//!   recurrences and critical paths before floaters), so the tight parts of
//!   the graph are never squeezed by earlier arbitrary placements;
//! * **bidirectional placement** — a node whose *predecessors* are already
//!   placed scans its window **forward** (as early as possible), one whose
//!   *successors* are placed scans **backward** (as late as possible), and
//!   one with both is pinned between them. Producers land next to their
//!   consumers, which is what shortens lifetimes and lowers register
//!   pressure.
//!
//! There is no eviction: if any node fails to place, the II is bumped and
//! the whole schedule restarts — exactly Llosa's formulation.

use crate::context::SchedContext;
use crate::ims::SchedError;
use crate::mrt::ModuloReservationTable;
use crate::problem::SchedProblem;
use crate::schedule::Schedule;
use vliw_ddg::{Ddg, SlackInfo};
use vliw_ir::OpId;
use vliw_machine::ClusterId;

/// Tuning knobs for the swing scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SmsConfig {
    /// Candidate IIs to try above MinII before giving up.
    pub max_ii_tries: u32,
    /// Rotated-packing attempts per II (attempt 0 is pure SMS).
    pub rotations: u32,
}

impl Default for SmsConfig {
    fn default() -> Self {
        SmsConfig {
            max_ii_tries: 64,
            rotations: 4,
        }
    }
}

/// Swing-modulo-schedule `problem` against `ddg`.
///
/// Convenience wrapper computing the II-independent [`SchedContext`]; see
/// [`sms_schedule_loop_with`] for callers that already have one.
pub fn sms_schedule_loop(
    problem: &SchedProblem<'_>,
    ddg: &Ddg,
    cfg: &SmsConfig,
) -> Result<Schedule, SchedError> {
    assert_eq!(ddg.n_ops(), problem.n_ops());
    if problem.n_ops() == 0 {
        return Ok(Schedule {
            ii: 1,
            times: Vec::new(),
            clusters: Vec::new(),
        });
    }
    let ctx = SchedContext::new(problem, ddg);
    sms_schedule_loop_with(problem, ddg, cfg, &ctx)
}

/// Swing-modulo-schedule `problem` with a precomputed [`SchedContext`].
pub fn sms_schedule_loop_with(
    problem: &SchedProblem<'_>,
    ddg: &Ddg,
    cfg: &SmsConfig,
    ctx: &SchedContext,
) -> Result<Schedule, SchedError> {
    assert_eq!(ddg.n_ops(), problem.n_ops());
    if problem.n_ops() == 0 {
        return Ok(Schedule {
            ii: 1,
            times: Vec::new(),
            clusters: Vec::new(),
        });
    }
    let min_ii = ctx.min_ii();
    let mut feas: Vec<i64> = Vec::new();
    for ii in min_ii..min_ii + cfg.max_ii_tries {
        if !ddg.is_feasible_with(ii, &mut feas) {
            continue;
        }
        // Attempt 0 is pure SMS. Because every op of a small kernel lands
        // below the first wraparound, a resource wedge at one II recurs
        // identically at the next, so instead of only bumping II we also
        // retry with rotated forward-scan starts, which perturbs the packing
        // while preserving every dependence bound.
        for rot in 0..cfg.rotations.max(1) {
            if let Some(s) = try_ii(problem, ddg, ii, rot as i64, &ctx.slack) {
                return Ok(s);
            }
        }
    }
    Err(SchedError::NoIiFound(min_ii + cfg.max_ii_tries))
}

fn try_ii(
    problem: &SchedProblem<'_>,
    ddg: &Ddg,
    ii: u32,
    rot: i64,
    slack: &SlackInfo,
) -> Option<Schedule> {
    let n = problem.n_ops();

    // Ordering, following Llosa's two invariants: (a) the most constrained
    // nodes (lowest mobility — critical recurrences and paths) seed the
    // order, and (b) every subsequent node is ADJACENT in the DDG to an
    // already-ordered node, so placement is always anchored by a scheduled
    // neighbour and the bidirectional rule has something to swing against.
    let mobility = |i: usize| (slack.lstart[i] - slack.estart[i], slack.lstart[i], i);
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut ordered = vec![false; n];
    let mut frontier: Vec<usize> = Vec::new();
    for _ in 0..n {
        frontier.retain(|&i| !ordered[i]);
        let next = frontier
            .iter()
            .copied()
            .min_by_key(|&i| mobility(i))
            .or_else(|| (0..n).filter(|&i| !ordered[i]).min_by_key(|&i| mobility(i)))
            .expect("n iterations, one pick each");
        ordered[next] = true;
        order.push(next);
        let op = OpId(next as u32);
        frontier.extend(
            ddg.preds(op)
                .map(|e| e.from.index())
                .chain(ddg.succs(op).map(|e| e.to.index()))
                .filter(|&i| !ordered[i]),
        );
    }

    let mut times: Vec<Option<i64>> = vec![None; n];
    let mut mrt = ModuloReservationTable::new(problem.machine, ii, n);
    let horizon = slack.length + ii as i64 * 2; // generous placement window

    for &idx in &order {
        let op = OpId(idx as u32);
        let placement = problem.placement[idx];

        // Bounds induced by already-placed neighbours.
        let early = ddg
            .preds(op)
            .filter(|e| e.from != op)
            .filter_map(|e| {
                times[e.from.index()].map(|t| t + e.latency - ii as i64 * e.distance as i64)
            })
            .max();
        let late = ddg
            .succs(op)
            .filter(|e| e.to != op)
            .filter_map(|e| {
                times[e.to.index()].map(|t| t - e.latency + ii as i64 * e.distance as i64)
            })
            .min();

        let slot = match (early, late) {
            (Some(e), Some(l)) => {
                // Pinned between neighbours: forward scan inside [e, min(l, e+II−1)].
                let e = e.max(0);
                let hi = l.min(e + ii as i64 - 1);
                (e..=hi).find(|&t| t >= 0 && mrt.fits(placement, t).is_some())
            }
            (Some(e), None) => {
                // Predecessors placed: as EARLY as possible after them
                // (rotated start on retry attempts).
                let e = e.max(0);
                let w = ii as i64;
                (0..w)
                    .map(|k| e + (k + rot).rem_euclid(w))
                    .find(|&t| mrt.fits(placement, t).is_some())
            }
            (None, Some(l)) if l < 0 => None, // deadline before cycle 0
            (None, Some(l)) => {
                // Successors placed: as LATE as possible before them — the
                // "swing" that shortens producer lifetimes.
                let lo = (l - ii as i64 + 1).max(0);
                (lo..=l).rev().find(|&t| mrt.fits(placement, t).is_some())
            }
            (None, None) => {
                // Free node: start from its ASAP time (rotated on retries).
                let e = slack.estart[idx].max(0);
                let w = ii as i64;
                let _ = horizon;
                (0..w)
                    .map(|k| e + (k + rot).rem_euclid(w))
                    .find(|&t| mrt.fits(placement, t).is_some())
            }
        };

        let t = match slot {
            Some(t) => t,
            None => {
                if std::env::var("SMS_DEBUG").is_ok() {
                    eprintln!("SMS ii={ii}: op{idx} failed; early={early:?} late={late:?}");
                }
                return None;
            }
        };
        mrt.place(op, placement, t);
        times[idx] = Some(t);
    }

    // Normalise: SMS's backward scans can park early ops at large times;
    // shift by whole IIs so min time sits in [0, II).
    let min_t = times.iter().map(|t| t.unwrap()).min().unwrap();
    let shift = min_t.div_euclid(ii as i64) * ii as i64;
    let times: Vec<i64> = times.into_iter().map(|t| t.unwrap() - shift).collect();

    let clusters: Vec<ClusterId> = (0..n)
        .map(|i| mrt.cluster_of(OpId(i as u32)).expect("placed"))
        .collect();
    Some(Schedule {
        ii,
        times,
        clusters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_schedule;
    use vliw_ddg::build_ddg;
    use vliw_ir::{LoopBuilder, RegClass};
    use vliw_machine::MachineDesc;

    fn daxpy(u: usize) -> vliw_ir::Loop {
        let mut b = LoopBuilder::new("daxpy");
        let x = b.array("x", RegClass::Float, 1024);
        let y = b.array("y", RegClass::Float, 1024);
        let a = b.live_in_float("a");
        for j in 0..u as i64 {
            let xv = b.load(x, j, u as i64);
            let yv = b.load(y, j, u as i64);
            let p = b.fmul(a, xv);
            let s = b.fadd(yv, p);
            b.store(y, j, u as i64, s);
        }
        b.finish(64)
    }

    #[test]
    fn sms_hits_res_ii_on_daxpy() {
        let l = daxpy(8);
        let m = MachineDesc::monolithic(16);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let s = sms_schedule_loop(&p, &g, &SmsConfig::default()).unwrap();
        assert_eq!(s.ii, 3); // ceil(40/16)
        verify_schedule(&p, &g, &s).unwrap();
    }

    #[test]
    fn sms_respects_recurrences() {
        let mut b = LoopBuilder::new("rec");
        let x = b.array("x", RegClass::Float, 64);
        let a = b.live_in_float("a");
        let s = b.live_in_float_val("s", 0.0);
        let xv = b.load(x, 0, 1);
        let t = b.fmul(a, s);
        b.fadd_into(s, t, xv);
        b.live_out(s);
        let l = b.finish(64);
        let m = MachineDesc::monolithic(16);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let sch = sms_schedule_loop(&p, &g, &SmsConfig::default()).unwrap();
        assert_eq!(sch.ii, 4);
        verify_schedule(&p, &g, &sch).unwrap();
    }

    #[test]
    fn sms_schedules_clustered_problems() {
        let l = daxpy(4);
        let m = MachineDesc::embedded(2, 2);
        let g = build_ddg(&l, &m.latencies);
        let pins = vec![vliw_machine::ClusterId(0); l.n_ops()];
        let p = SchedProblem::clustered(&l, &m, &pins);
        let s = sms_schedule_loop(&p, &g, &SmsConfig::default()).unwrap();
        assert!(s.ii >= 10); // 20 ops on one 2-FU cluster
        verify_schedule(&p, &g, &s).unwrap();
    }

    #[test]
    fn sms_times_are_normalised() {
        let l = daxpy(2);
        let m = MachineDesc::monolithic(4);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let s = sms_schedule_loop(&p, &g, &SmsConfig::default()).unwrap();
        let min_t = s.times.iter().min().unwrap();
        assert!((0..s.ii as i64).contains(min_t));
    }
}
