//! Precomputed, II-independent scheduling context.
//!
//! Everything the modulo schedulers need that does **not** depend on the
//! candidate II — the resource and recurrence lower bounds and the slack
//! (criticality) analysis — is computed once here and threaded through
//! [`schedule_loop_with`](crate::ims::schedule_loop_with) /
//! [`sms_schedule_loop_with`](crate::sms::sms_schedule_loop_with). Callers
//! that evaluate many candidates against the *same* DDG (the iterated
//! partitioner's beam, the weight tuner's grid, the pipeline driver) build
//! one `SchedContext` and stop paying for a silent `rec_ii` + slack
//! recomputation per call.

use crate::problem::SchedProblem;
use vliw_ddg::{compute_slack, rec_ii, Ddg, SlackInfo};

/// II-independent inputs to modulo scheduling, computed once per
/// (problem, DDG) pair.
#[derive(Debug, Clone)]
pub struct SchedContext {
    /// Resource-constrained lower bound on II (per-cluster FU and copy
    /// pressure included).
    pub res_ii: u32,
    /// Recurrence-constrained lower bound on II.
    pub rec_ii: u32,
    /// Earliest/latest-start analysis over the distance-0 subgraph; the
    /// schedulers' placement priority.
    pub slack: SlackInfo,
}

impl SchedContext {
    /// Compute the context for `problem` against `ddg`.
    pub fn new(problem: &SchedProblem<'_>, ddg: &Ddg) -> Self {
        SchedContext {
            res_ii: problem.res_ii(),
            rec_ii: rec_ii(ddg),
            slack: compute_slack(ddg, |op| problem.latency(op)),
        }
    }

    /// Assemble a context from already-known parts (e.g. a shared per-loop
    /// context that computed RecII and slack once for several consumers).
    pub fn from_parts(res_ii: u32, rec_ii: u32, slack: SlackInfo) -> Self {
        SchedContext {
            res_ii,
            rec_ii,
            slack,
        }
    }

    /// `MinII = max(ResII, RecII)` — where II escalation starts.
    pub fn min_ii(&self) -> u32 {
        self.res_ii.max(self.rec_ii).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::build_ddg;
    use vliw_ir::{LoopBuilder, RegClass};
    use vliw_machine::MachineDesc;

    #[test]
    fn context_matches_direct_computation() {
        let mut b = LoopBuilder::new("ctx");
        let x = b.array("x", RegClass::Float, 64);
        let a = b.live_in_float("a");
        let s = b.live_in_float_val("s", 0.0);
        let xv = b.load(x, 0, 1);
        let t = b.fmul(a, s);
        b.fadd_into(s, t, xv);
        b.live_out(s);
        let l = b.finish(64);
        let m = MachineDesc::monolithic(16);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let ctx = SchedContext::new(&p, &g);
        assert_eq!(ctx.res_ii, p.res_ii());
        assert_eq!(ctx.rec_ii, rec_ii(&g));
        assert_eq!(ctx.min_ii(), p.res_ii().max(rec_ii(&g)));
        let direct = compute_slack(&g, |op| p.latency(op));
        assert_eq!(ctx.slack.lstart, direct.lstart);
        assert_eq!(ctx.slack.estart, direct.estart);
    }
}
