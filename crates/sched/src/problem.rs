//! Scheduling problem description: which resources each operation needs.

use vliw_ir::{Loop, OpId};
use vliw_machine::{ClusterId, CopyModel, MachineDesc};

/// Where an operation may be placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpPlacement {
    /// Any functional unit of any cluster (ideal / monolithic scheduling).
    AnyFu,
    /// A functional unit of the given cluster (clustered scheduling).
    FuIn(ClusterId),
    /// Copy-unit model copy: one system bus plus one copy port at the
    /// destination cluster; no functional-unit slot.
    CopyVia(ClusterId),
}

/// A scheduling problem: a loop, the machine, and per-op placement
/// constraints.
#[derive(Debug, Clone)]
pub struct SchedProblem<'a> {
    /// The loop body being pipelined.
    pub body: &'a Loop,
    /// Target machine.
    pub machine: &'a MachineDesc,
    /// Placement constraint per operation.
    pub placement: Vec<OpPlacement>,
}

impl<'a> SchedProblem<'a> {
    /// Problem for the ideal schedule: every op may use any FU. Copy ops are
    /// not expected here (the ideal loop has none), but would occupy FU
    /// slots.
    pub fn ideal(body: &'a Loop, machine: &'a MachineDesc) -> Self {
        SchedProblem {
            body,
            machine,
            placement: vec![OpPlacement::AnyFu; body.n_ops()],
        }
    }

    /// Problem for a clustered schedule: `cluster_of[op]` gives the cluster
    /// each operation was assigned to by the partitioner. Copy operations
    /// take busses/ports under the copy-unit model and FU slots under the
    /// embedded model (§6.1).
    pub fn clustered(body: &'a Loop, machine: &'a MachineDesc, cluster_of: &[ClusterId]) -> Self {
        assert_eq!(cluster_of.len(), body.n_ops());
        let placement = body
            .ops
            .iter()
            .map(|op| {
                let c = cluster_of[op.id.index()];
                match (op.opcode.is_copy(), machine.copy_model) {
                    (true, CopyModel::CopyUnit { .. }) => OpPlacement::CopyVia(c),
                    _ => OpPlacement::FuIn(c),
                }
            })
            .collect();
        SchedProblem {
            body,
            machine,
            placement,
        }
    }

    /// Latency of operation `op` on this machine.
    pub fn latency(&self, op: OpId) -> i64 {
        self.machine.latencies.of(self.body.op(op).opcode) as i64
    }

    /// Number of operations.
    pub fn n_ops(&self) -> usize {
        self.body.n_ops()
    }

    /// Number of operations that occupy functional-unit issue slots
    /// (everything except copy-unit-model copies). This is what bounds the
    /// FU-side ResII.
    pub fn n_fu_ops(&self) -> usize {
        self.placement
            .iter()
            .filter(|p| !matches!(p, OpPlacement::CopyVia(_)))
            .count()
    }

    /// Resource-constrained lower bound on II for this problem, accounting
    /// for per-cluster FU pressure and copy-resource pressure.
    pub fn res_ii(&self) -> u32 {
        let m = self.machine;
        let mut per_cluster = vec![0usize; m.n_clusters()];
        let mut any_fu = 0usize;
        let mut bus_copies = 0usize;
        let mut port_copies = vec![0usize; m.n_clusters()];
        for p in &self.placement {
            match *p {
                OpPlacement::AnyFu => any_fu += 1,
                OpPlacement::FuIn(c) => per_cluster[c.index()] += 1,
                OpPlacement::CopyVia(c) => {
                    bus_copies += 1;
                    port_copies[c.index()] += 1;
                }
            }
        }
        let width = m.issue_width().max(1);
        let total_fu_ops = any_fu + per_cluster.iter().sum::<usize>();
        let mut ii = total_fu_ops.div_ceil(width).max(1);
        for c in m.cluster_ids() {
            let fus = m.fus_in(c).max(1);
            ii = ii.max(per_cluster[c.index()].div_ceil(fus));
        }
        if let CopyModel::CopyUnit {
            busses,
            ports_per_cluster,
        } = m.copy_model
        {
            if bus_copies > 0 {
                ii = ii.max(bus_copies.div_ceil(busses.max(1)));
                for c in m.cluster_ids() {
                    ii = ii.max(port_copies[c.index()].div_ceil(ports_per_cluster.max(1)));
                }
            }
        }
        ii as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{LoopBuilder, RegClass};

    fn small_loop() -> Loop {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", RegClass::Float, 64);
        let v = b.load(x, 0, 1);
        let c = b.fconst_new(2.0);
        let m = b.fmul(v, c);
        b.store(x, 0, 1, m);
        b.finish(64)
    }

    #[test]
    fn ideal_problem_unconstrained() {
        let l = small_loop();
        let m = MachineDesc::monolithic(16);
        let p = SchedProblem::ideal(&l, &m);
        assert!(p.placement.iter().all(|p| *p == OpPlacement::AnyFu));
        assert_eq!(p.res_ii(), 1);
    }

    #[test]
    fn clustered_res_ii_respects_cluster_pressure() {
        let l = small_loop();
        let m = MachineDesc::embedded(2, 1); // 2 clusters of 1 FU
                                             // All 4 ops on cluster 0 ⇒ per-cluster ResII = 4.
        let p = SchedProblem::clustered(&l, &m, &[ClusterId(0); 4]);
        assert_eq!(p.res_ii(), 4);
    }

    #[test]
    fn copy_unit_copies_leave_fu_slots() {
        let mut b = LoopBuilder::new("c");
        let v = b.fconst_new(1.0);
        let w = b.copy(v);
        let _ = b.fadd(w, w);
        let l = b.finish(4);
        let m = MachineDesc::copy_unit(2, 1);
        let p = SchedProblem::clustered(&l, &m, &[ClusterId(0), ClusterId(1), ClusterId(1)]);
        assert!(matches!(p.placement[1], OpPlacement::CopyVia(ClusterId(1))));
        assert_eq!(p.n_fu_ops(), 2);
        // 2 FU ops over 2 single-FU clusters but both mapped one per cluster.
        assert_eq!(p.res_ii(), 1);
    }

    #[test]
    fn embedded_copies_take_fu_slots() {
        let mut b = LoopBuilder::new("c");
        let v = b.fconst_new(1.0);
        let w = b.copy(v);
        let _ = b.fadd(w, w);
        let l = b.finish(4);
        let m = MachineDesc::embedded(2, 1);
        let p = SchedProblem::clustered(&l, &m, &[ClusterId(0), ClusterId(1), ClusterId(1)]);
        assert!(matches!(p.placement[1], OpPlacement::FuIn(ClusterId(1))));
        assert_eq!(p.n_fu_ops(), 3);
        // Cluster 1 holds 2 ops on 1 FU ⇒ ResII 2.
        assert_eq!(p.res_ii(), 2);
    }
}
