//! The kernel schedule produced by modulo scheduling.

use vliw_ir::{Loop, OpId};
use vliw_machine::{ClusterId, MachineDesc};

/// A modulo schedule: per-operation absolute issue times within one
/// iteration's time space, plus the initiation interval.
///
/// Operation `o` of iteration `i` issues at cycle `i·II + time(o)`. The
/// kernel has `II` instruction rows; `o` occupies row `time(o) mod II` in
/// pipeline stage `time(o) / II`.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The initiation interval.
    pub ii: u32,
    /// Absolute issue time per op (index = op index), all ≥ 0.
    pub times: Vec<i64>,
    /// Cluster whose issue slot / copy port each op occupies.
    pub clusters: Vec<ClusterId>,
}

impl Schedule {
    /// Issue time of `op` within the iteration time space.
    #[inline]
    pub fn time(&self, op: OpId) -> i64 {
        self.times[op.index()]
    }

    /// Kernel row of `op`.
    #[inline]
    pub fn row(&self, op: OpId) -> u32 {
        (self.times[op.index()] as u64 % self.ii as u64) as u32
    }

    /// Pipeline stage of `op`.
    #[inline]
    pub fn stage(&self, op: OpId) -> u32 {
        (self.times[op.index()] as u64 / self.ii as u64) as u32
    }

    /// Cluster of `op`.
    #[inline]
    pub fn cluster(&self, op: OpId) -> ClusterId {
        self.clusters[op.index()]
    }

    /// Number of pipeline stages (`max stage + 1`).
    pub fn stage_count(&self) -> u32 {
        self.times
            .iter()
            .map(|&t| (t as u64 / self.ii as u64) as u32)
            .max()
            .map_or(1, |s| s + 1)
    }

    /// Span in cycles from the first issue to the last completion of a
    /// single iteration.
    pub fn iteration_span(&self, body: &Loop, machine: &MachineDesc) -> i64 {
        body.ops
            .iter()
            .map(|o| self.time(o.id) + machine.latencies.of(o.opcode) as i64)
            .max()
            .unwrap_or(0)
    }

    /// Kernel instructions-per-cycle counting `n_counted` operations
    /// (Table 1 counts copies in the embedded model but not in the copy-unit
    /// model, §6.2).
    pub fn ipc(&self, n_counted: usize) -> f64 {
        n_counted as f64 / self.ii as f64
    }

    /// Render the kernel as a table: one line per row, operations annotated
    /// with pipeline stage and cluster — the format of the paper's Figures
    /// 1 and 3.
    pub fn render_kernel(&self, body: &Loop) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "kernel: II={}, {} stages, {} ops",
            self.ii,
            self.stage_count(),
            self.times.len()
        );
        for (r, ops) in self.rows().into_iter().enumerate() {
            let cells: Vec<String> = ops
                .iter()
                .map(|&o| {
                    format!(
                        "{}[s{}@{}]",
                        body.op(o).opcode.mnemonic(),
                        self.stage(o),
                        self.cluster(o)
                    )
                })
                .collect();
            let _ = writeln!(out, "  row {:>2}: {}", r, cells.join("  "));
        }
        out
    }

    /// Ops grouped by kernel row, for display.
    pub fn rows(&self) -> Vec<Vec<OpId>> {
        let mut rows = vec![Vec::new(); self.ii as usize];
        let mut ids: Vec<OpId> = (0..self.times.len() as u32).map(OpId).collect();
        ids.sort_by_key(|&o| (self.stage(o), o.index()));
        for o in ids {
            rows[self.row(o) as usize].push(o);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_kernel_lists_all_rows_and_ops() {
        let mut b = vliw_ir::LoopBuilder::new("r");
        let x = b.array("x", vliw_ir::RegClass::Float, 32);
        let v = b.load(x, 0, 1);
        let w = b.fmul(v, v);
        b.store(x, 0, 1, w);
        let body = b.finish(16);
        let s = Schedule {
            ii: 2,
            times: vec![0, 2, 5],
            clusters: vec![ClusterId(0), ClusterId(0), ClusterId(1)],
        };
        let text = s.render_kernel(&body);
        assert!(text.contains("II=2"));
        assert!(text.contains("row  0"));
        assert!(text.contains("row  1"));
        assert!(text.contains("load[s0@c0]"));
        assert!(text.contains("store[s2@c1]"));
    }

    fn sched(ii: u32, times: Vec<i64>) -> Schedule {
        let clusters = vec![ClusterId(0); times.len()];
        Schedule {
            ii,
            times,
            clusters,
        }
    }

    #[test]
    fn rows_and_stages() {
        let s = sched(2, vec![0, 1, 2, 5]);
        assert_eq!(s.row(OpId(0)), 0);
        assert_eq!(s.row(OpId(2)), 0);
        assert_eq!(s.stage(OpId(2)), 1);
        assert_eq!(s.row(OpId(3)), 1);
        assert_eq!(s.stage(OpId(3)), 2);
        assert_eq!(s.stage_count(), 3);
    }

    #[test]
    fn ipc_counts_given_ops() {
        let s = sched(4, vec![0, 0, 1, 2]);
        assert!((s.ipc(4) - 1.0).abs() < 1e-12);
        assert!((s.ipc(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rows_grouping_covers_all_ops() {
        let s = sched(3, vec![0, 1, 2, 3, 4, 5]);
        let rows = s.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.iter().map(Vec::len).sum::<usize>(), 6);
        assert_eq!(rows[0], vec![OpId(0), OpId(3)]);
    }
}
