//! Cycle-driven acyclic list scheduling, for straight-line code.
//!
//! The paper's framework is scheduler-agnostic ("can be applied using any
//! scheduling method … trace scheduling, modulo scheduling", §1). Modulo
//! scheduling optimises steady-state II and will happily stretch a single
//! pass across pipeline stages; for a basic block executed once (the §4.2
//! worked example) the objective is the *span*, which is what a classic
//! list scheduler minimises.
//!
//! Only distance-0 dependences are honoured — straight-line code has no
//! carried edges. The result is returned as a [`Schedule`] whose `ii` equals
//! the span, so expansion and simulation of a 1-trip loop work unchanged.

use crate::mrt::ModuloReservationTable;
use crate::problem::SchedProblem;
use crate::schedule::Schedule;
use vliw_ddg::{compute_slack, Ddg};
use vliw_ir::OpId;
use vliw_machine::ClusterId;

/// List-schedule `problem` (distance-0 edges only), minimising span
/// greedily: at every cycle, issue the ready operations most critical first
/// until resources run out.
pub fn list_schedule(problem: &SchedProblem<'_>, ddg: &Ddg) -> Schedule {
    let n = problem.n_ops();
    if n == 0 {
        return Schedule {
            ii: 1,
            times: Vec::new(),
            clusters: Vec::new(),
        };
    }
    let slack = compute_slack(ddg, |op| problem.latency(op));

    // Worst case: fully serial.
    let horizon: i64 = (0..n)
        .map(|i| problem.latency(OpId(i as u32)).max(1))
        .sum::<i64>()
        + n as i64;
    let mut mrt = ModuloReservationTable::new(problem.machine, horizon as u32, n);
    let mut times: Vec<Option<i64>> = vec![None; n];
    let mut placed = 0usize;
    let mut cycle = 0i64;

    while placed < n && cycle < horizon {
        // Ready: unplaced, with every d0 predecessor placed and complete.
        let mut ready: Vec<usize> = (0..n)
            .filter(|&i| {
                times[i].is_none()
                    && ddg
                        .preds(OpId(i as u32))
                        .filter(|e| e.distance == 0)
                        .all(|e| times[e.from.index()].is_some_and(|t| t + e.latency <= cycle))
            })
            .collect();
        ready.sort_by_key(|&i| (slack.lstart[i], i));
        for i in ready {
            let placement = problem.placement[i];
            if mrt.fits(placement, cycle).is_some() {
                mrt.place(OpId(i as u32), placement, cycle);
                times[i] = Some(cycle);
                placed += 1;
            }
        }
        cycle += 1;
    }
    debug_assert_eq!(placed, n, "horizon guarantees completion");

    let times: Vec<i64> = times.into_iter().map(|t| t.unwrap_or(0)).collect();
    let span = (0..n)
        .map(|i| times[i] + problem.latency(OpId(i as u32)))
        .max()
        .unwrap_or(1)
        .max(1);
    let clusters: Vec<ClusterId> = (0..n)
        .map(|i| mrt.cluster_of(OpId(i as u32)).expect("placed"))
        .collect();
    Schedule {
        ii: span as u32,
        times,
        clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::build_ddg;
    use vliw_ir::{LoopBuilder, RegClass};
    use vliw_machine::{LatencyTable, MachineDesc};

    #[test]
    fn independent_ops_pack_by_width() {
        let mut b = LoopBuilder::new("w");
        for _ in 0..8 {
            b.fconst_new(1.0);
        }
        let l = b.finish(1);
        let m = MachineDesc::monolithic(4).with_latencies(LatencyTable::unit());
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let s = list_schedule(&p, &g);
        // 8 unit ops on 4-wide: cycles 0 and 1, span 2.
        assert_eq!(s.ii, 2);
        assert_eq!(s.times.iter().filter(|&&t| t == 0).count(), 4);
    }

    #[test]
    fn chain_respects_latency() {
        let mut b = LoopBuilder::new("c");
        let x = b.array("x", RegClass::Float, 4);
        let v = b.load(x, 0, 0); // lat 2
        let w = b.fmul(v, v); // lat 2
        b.store(x, 1, 0, w); // lat 4
        let l = b.finish(1);
        let m = MachineDesc::monolithic(4);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let s = list_schedule(&p, &g);
        assert_eq!(s.times, vec![0, 2, 4]);
        assert_eq!(s.ii, 8); // store completes at 4 + 4
        crate::verify::verify_schedule(&p, &g, &s).unwrap();
    }

    #[test]
    fn simulates_correctly_end_to_end() {
        let mut b = LoopBuilder::new("sq");
        let x = b.array("x", RegClass::Float, 4);
        let v = b.load(x, 0, 0);
        let w = b.fmul(v, v);
        b.store(x, 1, 0, w);
        let l = b.finish(1);
        let m = MachineDesc::monolithic(2);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let s = list_schedule(&p, &g);
        crate::verify::verify_schedule(&p, &g, &s).unwrap();
    }
}
