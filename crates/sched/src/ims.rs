//! Rau-style iterative modulo scheduling (MICRO-27, 1994).
//!
//! For each candidate II starting at `MinII = max(ResII, RecII)`, operations
//! are placed in priority order (most critical first, by latest-start time).
//! An operation whose dependence window contains no resource-feasible slot is
//! *forced* into place, evicting the operations that conflict with it; the
//! evicted operations return to the worklist. A per-II budget bounds the
//! total number of placements; when it is exhausted the II is bumped and
//! scheduling restarts. A sequential fallback schedule (one operation per
//! kernel row) guarantees termination for any loop the IR can express.

use crate::context::SchedContext;
use crate::mrt::ModuloReservationTable;
use crate::problem::{OpPlacement, SchedProblem};
use crate::schedule::Schedule;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use vliw_ddg::{Ddg, SlackInfo};
use vliw_ir::OpId;
use vliw_machine::ClusterId;

/// Tuning knobs for the iterative modulo scheduler.
#[derive(Debug, Clone, Copy)]
pub struct ImsConfig {
    /// Placement budget per II attempt, as a multiple of the op count
    /// (Rau's `BudgetRatio`).
    pub budget_ratio: u32,
    /// How many candidate IIs to try above MinII before falling back to the
    /// sequential schedule.
    pub max_ii_tries: u32,
}

impl Default for ImsConfig {
    fn default() -> Self {
        ImsConfig {
            budget_ratio: 12,
            max_ii_tries: 48,
        }
    }
}

/// Scheduling failure (only possible if the fallback is disabled by a
/// degenerate machine description).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// No II up to the given bound produced a schedule.
    NoIiFound(u32),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::NoIiFound(ii) => write!(f, "no feasible II found up to {ii}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Modulo-schedule `problem` against its dependence graph `ddg`.
///
/// Convenience wrapper that computes the II-independent [`SchedContext`]
/// (RecII, slack) itself. Callers scheduling the same DDG repeatedly —
/// partition search, weight tuning, pipeline stages — should build the
/// context once and call [`schedule_loop_with`].
pub fn schedule_loop(
    problem: &SchedProblem<'_>,
    ddg: &Ddg,
    cfg: &ImsConfig,
) -> Result<Schedule, SchedError> {
    assert_eq!(ddg.n_ops(), problem.n_ops());
    if problem.n_ops() == 0 {
        return Ok(empty_schedule());
    }
    let ctx = SchedContext::new(problem, ddg);
    schedule_loop_with(problem, ddg, cfg, &ctx)
}

/// Modulo-schedule `problem` with a precomputed [`SchedContext`].
///
/// Nothing II-independent is recomputed here: MinII comes from the context,
/// slack is shared across every II attempt, and the feasibility / eviction
/// scratch buffers are reused between attempts.
pub fn schedule_loop_with(
    problem: &SchedProblem<'_>,
    ddg: &Ddg,
    cfg: &ImsConfig,
    ctx: &SchedContext,
) -> Result<Schedule, SchedError> {
    assert_eq!(ddg.n_ops(), problem.n_ops());
    if problem.n_ops() == 0 {
        return Ok(empty_schedule());
    }
    let min_ii = ctx.min_ii();
    let mut feas: Vec<i64> = Vec::new();
    let mut victims: Vec<OpId> = Vec::new();
    for ii in min_ii..min_ii + cfg.max_ii_tries {
        if let Some(s) = try_ii(problem, ddg, ii, cfg, &ctx.slack, &mut feas, &mut victims) {
            return Ok(s);
        }
    }
    sequential_fallback(problem, ddg, min_ii)
        .ok_or(SchedError::NoIiFound(min_ii + cfg.max_ii_tries))
}

fn empty_schedule() -> Schedule {
    Schedule {
        ii: 1,
        times: Vec::new(),
        clusters: Vec::new(),
    }
}

/// One II attempt. Returns the schedule on success. `slack` is the
/// II-independent criticality analysis from the caller's [`SchedContext`];
/// `feas` and `victims` are reusable scratch buffers.
fn try_ii(
    problem: &SchedProblem<'_>,
    ddg: &Ddg,
    ii: u32,
    cfg: &ImsConfig,
    slack: &SlackInfo,
    feas: &mut Vec<i64>,
    victims: &mut Vec<OpId>,
) -> Option<Schedule> {
    let n = problem.n_ops();
    // Feasibility of the recurrence constraints at this II — O(V·E)
    // Bellman–Ford, no all-pairs matrix.
    if !ddg.is_feasible_with(ii, feas) {
        return None;
    }

    let mut times: Vec<Option<i64>> = vec![None; n];
    let mut prev_time: Vec<Option<i64>> = vec![None; n];
    let mut mrt = ModuloReservationTable::new(problem.machine, ii, n);
    let mut budget = (cfg.budget_ratio as i64) * (n as i64);

    // Max-heap on Reverse(lstart): pop smallest lstart first; ties by index.
    let mut heap: BinaryHeap<(Reverse<i64>, Reverse<usize>)> = (0..n)
        .map(|i| (Reverse(slack.lstart[i]), Reverse(i)))
        .collect();

    while let Some((_, Reverse(idx))) = heap.pop() {
        let op = OpId(idx as u32);
        if times[idx].is_some() {
            continue; // stale entry
        }
        budget -= 1;
        if budget < 0 {
            return None;
        }

        let placement = problem.placement[idx];
        let estart = ddg
            .preds(op)
            .filter_map(|e| {
                times[e.from.index()].map(|t| t + e.latency - (ii as i64) * (e.distance as i64))
            })
            .max()
            .unwrap_or(0)
            .max(0);

        // Scan one full II window for a free slot.
        let slot = (estart..estart + ii as i64).find(|&t| mrt.fits(placement, t).is_some());
        let t = match slot {
            Some(t) => t,
            None => {
                // Forced placement with eviction.
                let t = match prev_time[idx] {
                    Some(pt) => estart.max(pt + 1),
                    None => estart,
                };
                evict_for(
                    &mut mrt, &mut times, &mut heap, slack, placement, t, victims,
                );
                debug_assert!(mrt.fits(placement, t).is_some());
                t
            }
        };

        mrt.place(op, placement, t);
        times[idx] = Some(t);
        prev_time[idx] = Some(t);

        // Eject already-scheduled successors whose dependence is now violated.
        for e in ddg.succs(op) {
            if e.to == op {
                continue; // self-recurrences are honoured by RecII ≤ II.
            }
            if let Some(ts) = times[e.to.index()] {
                if ts < t + e.latency - (ii as i64) * (e.distance as i64) {
                    times[e.to.index()] = None;
                    mrt.remove(e.to);
                    heap.push((Reverse(slack.lstart[e.to.index()]), Reverse(e.to.index())));
                }
            }
        }
    }

    let times: Vec<i64> = times.into_iter().map(Option::unwrap).collect();
    let clusters: Vec<ClusterId> = (0..n)
        .map(|i| {
            mrt.cluster_of(OpId(i as u32))
                .expect("placed op has a cluster")
        })
        .collect();
    Some(Schedule {
        ii,
        times,
        clusters,
    })
}

/// Evict enough resource conflicts for `placement` to fit at `t`, preferring
/// the least critical victims (largest lstart). `victims` is caller scratch;
/// the whole loop is allocation-free once it has warmed up.
fn evict_for(
    mrt: &mut ModuloReservationTable,
    times: &mut [Option<i64>],
    heap: &mut BinaryHeap<(Reverse<i64>, Reverse<usize>)>,
    slack: &SlackInfo,
    placement: OpPlacement,
    t: i64,
    victims: &mut Vec<OpId>,
) {
    while mrt.fits(placement, t).is_none() {
        mrt.conflicts_into(placement, t, victims);
        // Least critical victim: largest lstart, ties broken by op index so
        // the choice is independent of slot-occupancy order.
        let v = victims
            .iter()
            .copied()
            .max_by_key(|v| (slack.lstart[v.index()], Reverse(v.index())))
            .expect("conflict set cannot be empty");
        mrt.remove(v);
        times[v.index()] = None;
        heap.push((Reverse(slack.lstart[v.index()]), Reverse(v.index())));
    }
}

/// Guaranteed-feasible schedule: one op per kernel row at prefix-sum times.
/// Used only if iterative scheduling exhausts its II tries.
fn sequential_fallback(problem: &SchedProblem<'_>, ddg: &Ddg, min_ii: u32) -> Option<Schedule> {
    let n = problem.n_ops();
    let mut times = Vec::with_capacity(n);
    let mut acc = 0i64;
    for i in 0..n {
        times.push(acc);
        acc += problem.latency(OpId(i as u32)).max(1);
    }
    let ii = (acc as u32).max(min_ii).max(1);
    // Carried edges: ensure ii covers every latency gap.
    for e in ddg.edges() {
        if e.distance > 0 {
            let need = times[e.from.index()] + e.latency - times[e.to.index()];
            if need > 0 && (need as u32).div_ceil(e.distance) > ii {
                return None; // cannot happen: need ≤ total latency ≤ ii
            }
        }
    }
    let mut mrt = ModuloReservationTable::new(problem.machine, ii, n);
    let mut clusters = Vec::with_capacity(n);
    for (i, &t) in times.iter().enumerate() {
        let op = OpId(i as u32);
        let placement = problem.placement[i];
        mrt.fits(placement, t)?;
        mrt.place(op, placement, t);
        clusters.push(mrt.cluster_of(op).unwrap());
    }
    Some(Schedule {
        ii,
        times,
        clusters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_schedule;
    use vliw_ddg::build_ddg;
    use vliw_ir::{LoopBuilder, RegClass};
    use vliw_machine::MachineDesc;

    fn daxpy(unroll: usize) -> vliw_ir::Loop {
        let mut b = LoopBuilder::new("daxpy");
        let x = b.array("x", RegClass::Float, 1024);
        let y = b.array("y", RegClass::Float, 1024);
        let a = b.live_in_float("a");
        for u in 0..unroll {
            let xv = b.load(x, u as i64, unroll as i64);
            let yv = b.load(y, u as i64, unroll as i64);
            let p = b.fmul(a, xv);
            let s = b.fadd(yv, p);
            b.store(y, u as i64, unroll as i64, s);
        }
        b.finish(128)
    }

    #[test]
    fn ideal_daxpy_hits_res_ii() {
        let l = daxpy(8); // 40 ops
        let m = MachineDesc::monolithic(16);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let s = schedule_loop(&p, &g, &ImsConfig::default()).unwrap();
        // ResII = ceil(40/16) = 3; no recurrence, so II should be 3.
        assert_eq!(s.ii, 3);
        verify_schedule(&p, &g, &s).unwrap();
        assert!((s.ipc(l.n_ops()) - 40.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn recurrence_bound_respected() {
        // s = a*s + x[i]: RecII = 4 on a 16-wide machine.
        let mut b = LoopBuilder::new("rec1");
        let x = b.array("x", RegClass::Float, 64);
        let a = b.live_in_float("a");
        let s = b.live_in_float_val("s", 0.0);
        let xv = b.load(x, 0, 1);
        let t = b.fmul(a, s);
        b.fadd_into(s, t, xv);
        b.live_out(s);
        let l = b.finish(64);
        let m = MachineDesc::monolithic(16);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let sch = schedule_loop(&p, &g, &ImsConfig::default()).unwrap();
        assert_eq!(sch.ii, 4);
        verify_schedule(&p, &g, &sch).unwrap();
    }

    #[test]
    fn narrow_machine_forces_larger_ii() {
        let l = daxpy(4); // 20 ops
        let m = MachineDesc::monolithic(2);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let s = schedule_loop(&p, &g, &ImsConfig::default()).unwrap();
        assert_eq!(s.ii, 10); // ceil(20/2)
        verify_schedule(&p, &g, &s).unwrap();
    }

    #[test]
    fn clustered_all_ops_one_cluster() {
        let l = daxpy(2); // 10 ops
        let m = MachineDesc::embedded(2, 2);
        let g = build_ddg(&l, &m.latencies);
        let cluster_of = vec![ClusterId(0); l.n_ops()];
        let p = SchedProblem::clustered(&l, &m, &cluster_of);
        let s = schedule_loop(&p, &g, &ImsConfig::default()).unwrap();
        // 10 ops on a 2-FU cluster ⇒ II ≥ 5.
        assert!(s.ii >= 5);
        verify_schedule(&p, &g, &s).unwrap();
        assert!(s.clusters.iter().all(|&c| c == ClusterId(0)));
    }

    #[test]
    fn empty_loop_schedules() {
        let b = LoopBuilder::new("empty");
        let l = b.finish(1);
        let m = MachineDesc::monolithic(4);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let s = schedule_loop(&p, &g, &ImsConfig::default()).unwrap();
        assert_eq!(s.ii, 1);
    }

    #[test]
    fn single_fu_machine_serialises() {
        let l = daxpy(1); // 5 ops
        let m = MachineDesc::monolithic(1);
        let g = build_ddg(&l, &m.latencies);
        let p = SchedProblem::ideal(&l, &m);
        let s = schedule_loop(&p, &g, &ImsConfig::default()).unwrap();
        assert_eq!(s.ii, 5);
        verify_schedule(&p, &g, &s).unwrap();
    }
}
