//! The admissible lower bound that drives branch-and-bound pruning.
//!
//! Given a partial assignment, any completion pays at least:
//!
//! 1. the cost already committed by the assigned prefix (tracked
//!    incrementally by the search, not recomputed here);
//! 2. for every unassigned register, the cheapest cost of its edges *to
//!    already-assigned registers* over every bank it could still take —
//!    edges between two unassigned registers are bounded by zero, since an
//!    attraction can still be kept whole and a repulsion can still be split;
//! 3. a water-filling relaxation of the balance term: the remaining
//!    registers are spread fractionally-optimally (always topping up the
//!    emptiest bank) with the per-register edge costs ignored.
//!
//! Each assigned↔unassigned edge is counted exactly once — at its unassigned
//! endpoint — so the three parts never double-count and the bound is
//! admissible: it never exceeds the true cost of the best completion.

/// Sentinel for "this register has no bank yet" in the search's dense
/// assignment array (bank indices are `u8`, capped well below this).
pub const UNASSIGNED: u8 = u8::MAX;

/// Cost contributed by `v`'s edges to *already-assigned* neighbours if `v`
/// is placed in bank `b`. `adj_v` is `v`'s adjacency as
/// `(neighbour_index, weight)`; `assigned` maps register index → bank or
/// [`UNASSIGNED`].
#[inline]
pub fn assign_edge_cost(adj_v: &[(usize, f64)], assigned: &[u8], b: u8) -> f64 {
    let mut cost = 0.0;
    for &(u, w) in adj_v {
        let bu = assigned[u];
        if bu == UNASSIGNED {
            continue;
        }
        if w > 0.0 {
            if bu != b {
                cost += w;
            }
        } else if bu == b {
            cost += -w;
        }
    }
    cost
}

/// Part 2 of the bound: sum over unassigned registers of the cheapest
/// edge cost against the assigned prefix.
///
/// `used` is the number of banks the prefix occupies (always the contiguous
/// range `0..used`, maintained by symmetry breaking). A register can land in
/// an occupied bank or in *some* fresh bank — and all fresh banks price
/// identically (no assigned neighbours live there) — so scanning banks
/// `0..min(used + 1, n_banks)` covers every bank any completion could use.
pub fn unassigned_edge_bound(
    adj: &[Vec<(usize, f64)>],
    assigned: &[u8],
    used: usize,
    n_banks: usize,
) -> f64 {
    let cand = (used + 1).min(n_banks);
    let mut total = 0.0;
    for (v, adj_v) in adj.iter().enumerate() {
        if assigned[v] != UNASSIGNED {
            continue;
        }
        let mut best = f64::INFINITY;
        for b in 0..cand {
            let c = assign_edge_cost(adj_v, assigned, b as u8);
            if c < best {
                best = c;
            }
            if best == 0.0 {
                break; // cannot beat zero: every term is non-negative
            }
        }
        total += best;
    }
    total
}

/// Part 3 of the bound: the smallest possible *increase* of the quadratic
/// balance term when `remaining` more registers join banks whose current
/// occupancies are `counts`.
///
/// Relaxation: ignore which registers go where and water-fill — each of the
/// `remaining` registers is appended to the currently emptiest bank, which
/// minimises `Σ count²` over all integer distributions (adding to a bank of
/// size `c` costs `2c + 1`, so always picking the smallest `c` is exchange-
/// argument optimal).
pub fn balance_relaxation(counts: &[u32], remaining: usize, balance_weight: f64) -> f64 {
    if balance_weight == 0.0 || remaining == 0 {
        return 0.0;
    }
    let mut c: Vec<u32> = counts.to_vec();
    let mut increase = 0u64;
    for _ in 0..remaining {
        let (i, &min) = c
            .iter()
            .enumerate()
            .min_by_key(|&(_, &v)| v)
            .expect("at least one bank");
        increase += 2 * u64::from(min) + 1;
        c[i] = min + 1;
    }
    balance_weight * increase as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_cost_counts_cut_attraction_and_kept_repulsion() {
        // v has neighbours 0 (assigned bank 0, +2.0) and 1 (assigned bank 1,
        // -3.0); neighbour 2 is unassigned and must not contribute.
        let adj_v = vec![(0usize, 2.0), (1usize, -3.0), (2usize, 5.0)];
        let assigned = [0, 1, UNASSIGNED, UNASSIGNED];
        // Bank 0: attraction kept (0), repulsion split (0).
        assert_eq!(assign_edge_cost(&adj_v, &assigned, 0), 0.0);
        // Bank 1: attraction cut (+2), repulsion kept (+3).
        assert_eq!(assign_edge_cost(&adj_v, &assigned, 1), 5.0);
        // Fresh bank 2: attraction cut (+2), repulsion split (0).
        assert_eq!(assign_edge_cost(&adj_v, &assigned, 2), 2.0);
    }

    #[test]
    fn unassigned_bound_picks_cheapest_bank_per_node() {
        // Node 0 assigned to bank 0. Node 1 attracts it (+4): cheapest is to
        // join bank 0 (cost 0). Node 2 repels it (-1): cheapest is any other
        // bank (cost 0). Bound must be 0, not 4 or 1.
        let adj = vec![
            vec![(1usize, 4.0), (2usize, -1.0)],
            vec![(0usize, 4.0)],
            vec![(0usize, -1.0)],
        ];
        let assigned = [0, UNASSIGNED, UNASSIGNED];
        assert_eq!(unassigned_edge_bound(&adj, &assigned, 1, 2), 0.0);
    }

    #[test]
    fn unassigned_bound_is_forced_with_one_bank() {
        // Single bank: the repulsion below cannot be split.
        let adj = vec![vec![(1usize, -2.0)], vec![(0usize, -2.0)]];
        let assigned = [0, UNASSIGNED];
        assert_eq!(unassigned_edge_bound(&adj, &assigned, 1, 1), 2.0);
    }

    #[test]
    fn water_fill_tops_up_emptiest_bank() {
        // counts [2, 0], 3 remaining: fill 0,0,1 into bank 1 then tie →
        // increases 1 + 3 + min(2·2+1, 2·2+1)... sequence: bank1 (c=0, +1),
        // bank1 (c=1, +3), then both banks at 2 → +5. Total 9.
        assert_eq!(balance_relaxation(&[2, 0], 3, 1.0), 9.0);
        // The relaxation never exceeds any concrete placement: putting all 3
        // in bank 0 would cost (5²−2²) = 21.
        assert!(balance_relaxation(&[2, 0], 3, 1.0) <= 21.0);
    }

    #[test]
    fn zero_weight_or_zero_remaining_is_free() {
        assert_eq!(balance_relaxation(&[1, 1], 4, 0.0), 0.0);
        assert_eq!(balance_relaxation(&[1, 1], 0, 0.5), 0.0);
    }
}
