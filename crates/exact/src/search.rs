//! The branch-and-bound search itself.
//!
//! Registers are branched in *most-constrained-first* order (decreasing sum
//! of incident |edge weight|, ties by index): the registers whose placement
//! moves the objective most are decided first, which tightens the lower
//! bound early. At each tree node:
//!
//! * **bound** — prune when the admissible bound ([`crate::bound`]) exceeds
//!   the incumbent *strictly* (`> best + EPS`). Strict pruning never
//!   discards a subtree containing a minimum-cost completion, so the final
//!   answer is independent of exploration timing even when a shared bound
//!   races across threads;
//! * **symmetry breaking** — a register may enter an occupied bank or open
//!   exactly one fresh bank (banks `0..used` are always the occupied ones),
//!   collapsing the `banks!` permutations of every solution to one canonical
//!   representative — equivalently, the first K distinct registers are
//!   pinned to banks `0..K`;
//! * **dominance** — a register with no *unassigned* neighbours (and no
//!   balance term) interacts with nothing decided later, so it is placed at
//!   its cheapest bank outright instead of branching;
//! * **anytime deadline** — the deadline is polled every 1024 expansions;
//!   on expiry the search unwinds and reports the incumbent with
//!   `optimal = false`.
//!
//! Ties between equal-cost leaves (within `EPS`) are broken toward the
//! lexicographically smallest `bank_of` vector, making the returned
//! partition — not just its cost — deterministic.

use crate::bound::{assign_edge_cost, balance_relaxation, unassigned_edge_bound, UNASSIGNED};
use crate::objective::partition_cost;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use vliw_core::{Partition, RcgGraph};
use vliw_governor::TrackedBudget;
use vliw_ir::VReg;
use vliw_machine::ClusterId;

/// Cost slack under which two solutions count as "equal" for incumbent
/// updates and above which a bound must clear the incumbent to prune.
/// Guards against f64 accumulation-order noise; see the module docs.
pub(crate) const EPS: f64 = 1e-9;

/// Knobs for [`solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactConfig {
    /// Wall-clock budget in milliseconds; `0` means unlimited (the search
    /// runs to proven optimality, however long that takes).
    pub budget_ms: u64,
    /// Fan subtrees out across threads (see [`crate::frontier`]). Off by
    /// default: the pipeline driver already runs inside rayon corpus sweeps,
    /// and nesting thread pools multiplies instead of helping. The gap
    /// harness and benches, which solve one loop at a time, switch it on.
    pub parallel: bool,
    /// Weight of the quadratic bank-occupancy term in the objective;
    /// `0.0` (the default) scores pure copy cost.
    pub balance_weight: f64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            budget_ms: 0,
            parallel: false,
            balance_weight: 0.0,
        }
    }
}

/// Search effort counters, reported alongside every solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Tree nodes expanded (bound evaluations + leaves).
    pub nodes_expanded: u64,
    /// Subtrees discarded because the lower bound cleared the incumbent.
    pub pruned_bound: u64,
    /// Registers placed by dominance instead of branching.
    pub dominance_assigns: u64,
    /// Wall-clock time of the whole solve.
    pub elapsed: Duration,
}

impl SolveStats {
    pub(crate) fn absorb(&mut self, other: &SolveStats) {
        self.nodes_expanded += other.nodes_expanded;
        self.pruned_bound += other.pruned_bound;
        self.dominance_assigns += other.dominance_assigns;
    }
}

/// Outcome of [`solve`].
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// The best complete assignment found (provably optimal when
    /// `optimal` is true; otherwise never worse than the seed).
    pub partition: Partition,
    /// Objective value of `partition` under the configured cost model.
    pub cost: f64,
    /// Whether the search closed — i.e. `partition` is a provable minimum —
    /// rather than being cut off by the time budget.
    pub optimal: bool,
    /// Effort counters.
    pub stats: SolveStats,
}

/// The static half of a solve: dense adjacency, branch order, cost model.
pub(crate) struct Problem {
    pub(crate) n: usize,
    pub(crate) n_banks: usize,
    /// `adj[v]` lists `(neighbour_index, weight)`.
    pub(crate) adj: Vec<Vec<(usize, f64)>>,
    /// Branch order: most-constrained first.
    pub(crate) order: Vec<usize>,
    pub(crate) balance_weight: f64,
}

impl Problem {
    pub(crate) fn new(g: &RcgGraph, n_banks: usize, balance_weight: f64) -> Self {
        let n = g.n_nodes();
        let adj = dense_adjacency(g);
        let order = branch_order(g);
        Problem {
            n,
            n_banks,
            adj,
            order,
            balance_weight,
        }
    }
}

/// The RCG adjacency as dense index pairs, the shape [`crate::bound`]'s
/// functions consume: `adj[v]` lists `(neighbour_index, weight)`.
pub fn dense_adjacency(g: &RcgGraph) -> Vec<Vec<(usize, f64)>> {
    (0..g.n_nodes())
        .map(|v| {
            g.neighbours(VReg(v as u32))
                .iter()
                .map(|&(u, w)| (u.index(), w))
                .collect()
        })
        .collect()
}

/// Most-constrained-first branch order over `g`'s registers: decreasing sum
/// of incident |edge weight|, ties by index. Shared with other searches over
/// the same graph (the joint solver's bank enumeration) so their trees agree
/// with the exact partitioner's.
pub fn branch_order(g: &RcgGraph) -> Vec<usize> {
    let adj = dense_adjacency(g);
    let mut order: Vec<usize> = (0..g.n_nodes()).collect();
    let constraint: Vec<f64> = adj
        .iter()
        .map(|a| a.iter().map(|&(_, w)| w.abs()).sum())
        .collect();
    order.sort_by(|&a, &b| {
        constraint[b]
            .partial_cmp(&constraint[a])
            .expect("edge weights are finite")
            .then(a.cmp(&b))
    });
    order
}

/// One DFS worker: the mutable half of a solve. The frontier module runs
/// many of these over disjoint subtrees with a shared pruning bound.
pub(crate) struct Searcher<'a> {
    pub(crate) p: &'a Problem,
    /// Register index → bank, [`UNASSIGNED`] for the suffix.
    pub(crate) assigned: Vec<u8>,
    /// Bank occupancy counts.
    pub(crate) counts: Vec<u32>,
    /// Number of occupied banks (always the prefix `0..used`).
    pub(crate) used: usize,
    /// Cost committed by the assigned prefix.
    pub(crate) partial: f64,
    /// Incumbent cost (starts at the seed's).
    pub(crate) best_cost: f64,
    /// Incumbent assignment (starts as the seed's).
    pub(crate) best_assign: Vec<u8>,
    /// Cross-thread best-cost bound as f64 bits (costs are non-negative, so
    /// the IEEE bit pattern orders like the float). Pruning reads it;
    /// improvements `fetch_min` into it. `None` when solving sequentially.
    pub(crate) shared: Option<&'a AtomicU64>,
    pub(crate) deadline: Option<Instant>,
    /// Server-granted resource budget; polled at the same cadence as the
    /// deadline so a pool trip or cancel unwinds through the anytime exit.
    pub(crate) budget: Option<&'a TrackedBudget>,
    pub(crate) timed_out: bool,
    pub(crate) stats: SolveStats,
}

impl<'a> Searcher<'a> {
    pub(crate) fn new(
        p: &'a Problem,
        seed_cost: f64,
        seed_assign: Vec<u8>,
        shared: Option<&'a AtomicU64>,
        deadline: Option<Instant>,
        budget: Option<&'a TrackedBudget>,
    ) -> Self {
        Searcher {
            assigned: vec![UNASSIGNED; p.n],
            counts: vec![0; p.n_banks],
            used: 0,
            partial: 0.0,
            best_cost: seed_cost,
            best_assign: seed_assign,
            shared,
            deadline,
            budget,
            timed_out: false,
            stats: SolveStats::default(),
            p,
        }
    }

    /// The tightest bound any thread has proven so far.
    #[inline]
    fn pruning_best(&self) -> f64 {
        match self.shared {
            Some(a) => f64::from_bits(a.load(Ordering::Relaxed)).min(self.best_cost),
            None => self.best_cost,
        }
    }

    /// Cost increase of placing `v` in bank `b` against the current prefix.
    #[inline]
    fn delta(&self, v: usize, b: u8) -> f64 {
        let mut d = assign_edge_cost(&self.p.adj[v], &self.assigned, b);
        if self.p.balance_weight > 0.0 {
            d += self.p.balance_weight * (2 * u64::from(self.counts[b as usize]) + 1) as f64;
        }
        d
    }

    #[inline]
    fn place(&mut self, v: usize, b: u8, d: f64) {
        self.assigned[v] = b;
        self.counts[b as usize] += 1;
        self.partial += d;
        if b as usize == self.used {
            self.used += 1;
        }
    }

    #[inline]
    fn unplace(&mut self, v: usize, b: u8, d: f64, prev_used: usize) {
        self.assigned[v] = UNASSIGNED;
        self.counts[b as usize] -= 1;
        self.partial -= d;
        self.used = prev_used;
    }

    fn record_leaf(&mut self) {
        let cost = self.partial;
        let better = cost < self.best_cost - EPS;
        let tied_but_smaller =
            cost <= self.best_cost + EPS && self.assigned.as_slice() < self.best_assign.as_slice();
        if better || tied_but_smaller {
            self.best_cost = self.best_cost.min(cost);
            self.best_assign.copy_from_slice(&self.assigned);
            if let Some(a) = self.shared {
                a.fetch_min(self.best_cost.to_bits(), Ordering::Relaxed);
            }
        }
    }

    /// Explore every completion of the current prefix, `depth` registers of
    /// the branch order already placed.
    pub(crate) fn dfs(&mut self, depth: usize) {
        if self.timed_out {
            return;
        }
        self.stats.nodes_expanded += 1;
        if self.stats.nodes_expanded & 1023 == 0 {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.timed_out = true;
                    return;
                }
            }
            if self.budget.is_some_and(|b| b.exceeded()) {
                self.timed_out = true;
                return;
            }
        }
        if depth == self.p.n {
            self.record_leaf();
            return;
        }

        let lb = self.partial
            + unassigned_edge_bound(&self.p.adj, &self.assigned, self.used, self.p.n_banks)
            + balance_relaxation(&self.counts, self.p.n - depth, self.p.balance_weight);
        if lb > self.pruning_best() + EPS {
            self.stats.pruned_bound += 1;
            return;
        }

        let v = self.p.order[depth];
        let cand = (self.used + 1).min(self.p.n_banks) as u8;

        // Dominance: with no balance term and no unassigned neighbour, v's
        // contribution is already fully determined — place it at its
        // cheapest bank (lowest index on ties) without branching.
        if self.p.balance_weight == 0.0
            && self.p.adj[v]
                .iter()
                .all(|&(u, _)| self.assigned[u] != UNASSIGNED)
        {
            let (mut best_b, mut best_d) = (0u8, f64::INFINITY);
            for b in 0..cand {
                let d = self.delta(v, b);
                if d < best_d {
                    best_d = d;
                    best_b = b;
                }
            }
            self.stats.dominance_assigns += 1;
            let prev_used = self.used;
            self.place(v, best_b, best_d);
            self.dfs(depth + 1);
            self.unplace(v, best_b, best_d, prev_used);
            return;
        }

        // Branch cheapest-delta-first (ties by bank index): good incumbents
        // arrive early, which makes the bound bite sooner.
        let mut branches: Vec<(f64, u8)> = (0..cand).map(|b| (self.delta(v, b), b)).collect();
        branches.sort_by(|x, y| {
            x.0.partial_cmp(&y.0)
                .expect("deltas are finite")
                .then(x.1.cmp(&y.1))
        });
        for (d, b) in branches {
            let prev_used = self.used;
            self.place(v, b, d);
            self.dfs(depth + 1);
            self.unplace(v, b, d, prev_used);
            if self.timed_out {
                return;
            }
        }
    }
}

/// Seed handling shared by the sequential and parallel paths: score the
/// caller's partition (the pipeline passes the greedy result) or fall back
/// to the worst admissible incumbent.
pub(crate) fn seed_incumbent(
    g: &RcgGraph,
    n_banks: usize,
    seed: Option<&Partition>,
    balance_weight: f64,
) -> (f64, Vec<u8>) {
    match seed {
        Some(part) => {
            assert_eq!(
                part.bank_of.len(),
                g.n_nodes(),
                "seed covers every register"
            );
            assert!(part.n_banks <= n_banks, "seed uses more banks than allowed");
            let assign: Vec<u8> = part.bank_of.iter().map(|c| c.index() as u8).collect();
            (partition_cost(g, part, balance_weight), assign)
        }
        // Bank 0 for everything: always feasible, deliberately poor.
        None => {
            let part = Partition::trivial(g.n_nodes().max(1));
            let part = Partition {
                bank_of: part.bank_of[..g.n_nodes()].to_vec(),
                n_banks,
            };
            (
                partition_cost(g, &part, balance_weight),
                vec![0u8; g.n_nodes()],
            )
        }
    }
}

/// Find a minimum-cost bank assignment of `g`'s registers to `n_banks`
/// banks by branch-and-bound.
///
/// `seed` primes the incumbent (the driver passes the greedy partition), so
/// even a budget-expired solve returns something no worse than the seed.
/// The result is deterministic: equal-cost optima resolve to the
/// lexicographically smallest `bank_of`.
pub fn solve(
    g: &RcgGraph,
    n_banks: usize,
    seed: Option<&Partition>,
    cfg: &ExactConfig,
) -> ExactResult {
    solve_governed(g, n_banks, seed, cfg, None)
}

/// Bytes the search working set occupies for problem `p`: the adjacency
/// mirror plus one searcher's assignment/count/incumbent vectors. Charged
/// against the server pool before the search starts.
pub(crate) fn working_set_bytes(p: &Problem) -> u64 {
    let adj: usize = p
        .adj
        .iter()
        .map(|a| a.len() * std::mem::size_of::<(usize, f64)>())
        .sum();
    (adj + 2 * p.n + 4 * p.n_banks + 8 * p.n) as u64
}

/// Bytes one parallel frontier task adds *on top of* the shared root
/// working set: its own assignment/count/incumbent vectors. The adjacency
/// is borrowed from the root problem, not cloned, so charging the full
/// [`working_set_bytes`] per task would over-account wide fan-outs and
/// trip the budget on solves that actually fit.
pub(crate) fn per_task_bytes(p: &Problem) -> u64 {
    (2 * p.n + 4 * p.n_banks + 8 * p.n) as u64
}

/// [`solve`] under a server-granted [`TrackedBudget`]: the search charges
/// its working set against the pool up front and polls the budget at the
/// deadline cadence, so pool exhaustion (or a server-side cancel) degrades
/// to the same anytime exit as a deadline trip — the seed incumbent comes
/// back with `optimal = false` instead of the process growing unbounded.
pub fn solve_governed(
    g: &RcgGraph,
    n_banks: usize,
    seed: Option<&Partition>,
    cfg: &ExactConfig,
    budget: Option<&TrackedBudget>,
) -> ExactResult {
    assert!(n_banks >= 1, "at least one bank");
    assert!(n_banks < UNASSIGNED as usize, "bank indices must fit in u8");
    let start = Instant::now();
    let deadline = (cfg.budget_ms > 0).then(|| start + Duration::from_millis(cfg.budget_ms));

    let p = Problem::new(g, n_banks, cfg.balance_weight);
    let (seed_cost, seed_assign) = seed_incumbent(g, n_banks, seed, cfg.balance_weight);

    if let Some(b) = budget {
        if !b.charge(working_set_bytes(&p)) {
            // The pool cannot even cover the root working set: return the
            // seed as a truncated anytime result without searching.
            return ExactResult {
                partition: Partition {
                    bank_of: seed_assign
                        .into_iter()
                        .map(|b| ClusterId(u32::from(b)))
                        .collect(),
                    n_banks,
                },
                cost: seed_cost,
                optimal: false,
                stats: SolveStats {
                    elapsed: start.elapsed(),
                    ..SolveStats::default()
                },
            };
        }
    }

    let (best_cost, best_assign, mut stats, timed_out) = if cfg.parallel && p.n >= 4 {
        crate::frontier::solve_parallel(&p, seed_cost, seed_assign, deadline, budget)
    } else {
        let mut s = Searcher::new(&p, seed_cost, seed_assign, None, deadline, budget);
        s.dfs(0);
        (s.best_cost, s.best_assign, s.stats, s.timed_out)
    };
    stats.elapsed = start.elapsed();

    ExactResult {
        partition: Partition {
            bank_of: best_assign
                .into_iter()
                .map(|b| ClusterId(u32::from(b)))
                .collect(),
            n_banks,
        },
        cost: best_cost,
        optimal: !timed_out,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attracted_pair_ends_up_together() {
        let mut g = RcgGraph::new(2);
        g.bump_edge(VReg(0), VReg(1), 5.0);
        let r = solve(&g, 4, None, &ExactConfig::default());
        assert!(r.optimal);
        assert_eq!(r.cost, 0.0);
        assert_eq!(r.partition.bank(VReg(0)), r.partition.bank(VReg(1)));
    }

    #[test]
    fn repelled_pair_splits() {
        let mut g = RcgGraph::new(2);
        g.bump_edge(VReg(0), VReg(1), -5.0);
        let r = solve(&g, 2, None, &ExactConfig::default());
        assert!(r.optimal);
        assert_eq!(r.cost, 0.0);
        assert_ne!(r.partition.bank(VReg(0)), r.partition.bank(VReg(1)));
    }

    #[test]
    fn single_bank_pays_every_repulsion() {
        let mut g = RcgGraph::new(3);
        g.bump_edge(VReg(0), VReg(1), -2.0);
        g.bump_edge(VReg(1), VReg(2), -3.0);
        let r = solve(&g, 1, None, &ExactConfig::default());
        assert!(r.optimal);
        assert_eq!(r.cost, 5.0);
    }

    #[test]
    fn frustrated_triangle_pays_the_cheapest_edge() {
        // Three mutually-attracted nodes, two banks... all together is free.
        // Make the triangle frustrated instead: two attractions, one strong
        // repulsion. Best: split the repelled pair, cut the weaker
        // attraction.
        let mut g = RcgGraph::new(3);
        g.bump_edge(VReg(0), VReg(1), 1.0);
        g.bump_edge(VReg(1), VReg(2), 2.0);
        g.bump_edge(VReg(0), VReg(2), -10.0);
        let r = solve(&g, 2, None, &ExactConfig::default());
        assert!(r.optimal);
        assert!((r.cost - 1.0).abs() < 1e-12, "cost = {}", r.cost);
    }

    #[test]
    fn result_is_canonical_under_symmetry() {
        // Whatever the optimum, the returned labelling opens banks in order:
        // the first node of bank k+1 appears after the first node of bank k.
        let mut g = RcgGraph::new(4);
        g.bump_edge(VReg(0), VReg(1), -1.0);
        g.bump_edge(VReg(2), VReg(3), -1.0);
        let r = solve(&g, 4, None, &ExactConfig::default());
        assert!(r.optimal);
        let mut seen = 0u32;
        for c in &r.partition.bank_of {
            assert!(c.0 <= seen, "bank labels must open contiguously");
            seen = seen.max(c.0 + 1);
        }
    }

    #[test]
    fn seed_is_never_worsened_even_with_tiny_budget() {
        let mut g = RcgGraph::new(6);
        for a in 0..6u32 {
            for b in (a + 1)..6u32 {
                g.bump_edge(VReg(a), VReg(b), if (a + b) % 2 == 0 { 1.5 } else { -0.5 });
            }
        }
        let seed = Partition {
            bank_of: (0..6).map(|i| ClusterId(i % 2)).collect(),
            n_banks: 2,
        };
        let seed_cost = partition_cost(&g, &seed, 0.0);
        // A zero-ish budget: either it finishes (tiny graph) or it returns
        // the seed; both must satisfy cost ≤ seed_cost.
        let r = solve(
            &g,
            2,
            Some(&seed),
            &ExactConfig {
                budget_ms: 1,
                ..Default::default()
            },
        );
        assert!(r.cost <= seed_cost + 1e-12);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut g = RcgGraph::new(8);
        for a in 0..8u32 {
            for b in (a + 1)..8u32 {
                let w = ((a * 7 + b * 3) % 5) as f64 - 2.0;
                if w != 0.0 {
                    g.bump_edge(VReg(a), VReg(b), w);
                }
            }
        }
        let r1 = solve(&g, 4, None, &ExactConfig::default());
        let r2 = solve(&g, 4, None, &ExactConfig::default());
        assert!(r1.optimal && r2.optimal);
        assert_eq!(r1.partition, r2.partition);
        assert_eq!(r1.cost, r2.cost);
    }

    #[test]
    fn empty_graph_solves_trivially() {
        let g = RcgGraph::new(0);
        let r = solve(&g, 4, None, &ExactConfig::default());
        assert!(r.optimal);
        assert_eq!(r.cost, 0.0);
        assert!(r.partition.bank_of.is_empty());
    }

    #[test]
    fn balance_weight_spreads_isolated_nodes() {
        let g = RcgGraph::new(4);
        let cfg = ExactConfig {
            balance_weight: 0.25,
            ..Default::default()
        };
        let r = solve(&g, 2, None, &cfg);
        assert!(r.optimal);
        let sizes = r.partition.sizes();
        assert_eq!(sizes, vec![2, 2], "quadratic balance wants an even split");
    }
}
