//! Brute-force enumeration oracle for testing the branch-and-bound.
//!
//! Scores *every* one of the `n_banks^n` complete assignments through the
//! reference [`partition_cost`] — no symmetry breaking, no bounds, no
//! dominance — and keeps the minimum (lexicographically smallest `bank_of`
//! on cost ties, matching the search's tie-break). Exponential on purpose:
//! it shares no optimisation, and therefore no potential bug, with the
//! search it checks. Guarded to tiny instances.

use crate::objective::partition_cost;
use vliw_core::{Partition, RcgGraph};
use vliw_machine::ClusterId;

/// Largest `n_banks^n` the oracle will enumerate (4 banks × 8 registers).
const MAX_ASSIGNMENTS: u64 = 65_536;

/// Exhaustively find a minimum-cost partition of `g` over `n_banks` banks.
///
/// Returns `(partition, cost)`. Panics if the instance would need more than
/// [`MAX_ASSIGNMENTS`] evaluations — the oracle exists for ≤6-register test
/// graphs, not as a solver.
pub fn brute_force(g: &RcgGraph, n_banks: usize, balance_weight: f64) -> (Partition, f64) {
    assert!(n_banks >= 1, "at least one bank");
    let n = g.n_nodes();
    let total = (n_banks as u64)
        .checked_pow(n as u32)
        .filter(|&t| t <= MAX_ASSIGNMENTS)
        .unwrap_or_else(|| panic!("oracle refuses {n_banks}^{n} assignments"));

    let mut banks = vec![0u32; n];
    let mut best: Option<(f64, Vec<u32>)> = None;
    for _ in 0..total {
        let part = Partition {
            bank_of: banks.iter().map(|&b| ClusterId(b)).collect(),
            n_banks,
        };
        let cost = partition_cost(g, &part, balance_weight);
        let replace = match &best {
            None => true,
            // Counting order visits lexicographically ascending vectors, so
            // on an exact cost tie the earlier (smaller) one is kept.
            Some((bc, _)) => cost < *bc,
        };
        if replace {
            best = Some((cost, banks.clone()));
        }
        // Next assignment: increment the base-n_banks counter, least
        // significant digit LAST so iteration order is lexicographic.
        for d in (0..n).rev() {
            banks[d] += 1;
            if (banks[d] as usize) < n_banks {
                break;
            }
            banks[d] = 0;
        }
    }

    let (cost, bank_of) = best.expect("at least the all-zeros assignment");
    (
        Partition {
            bank_of: bank_of.into_iter().map(ClusterId).collect(),
            n_banks,
        },
        cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{solve, ExactConfig};
    use vliw_ir::VReg;

    /// Deterministic pseudo-random test graph (SplitMix64 weights).
    fn random_graph(n: u32, seed: u64, density_mod: u64) -> RcgGraph {
        let mut g = RcgGraph::new(n as usize);
        let mut state = seed;
        for a in 0..n {
            for b in (a + 1)..n {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                if z.is_multiple_of(density_mod) {
                    continue; // leave some pairs unconnected
                }
                let w = (z % 11) as f64 / 2.0 - 2.5;
                if w != 0.0 {
                    g.bump_edge(VReg(a), VReg(b), w);
                }
            }
        }
        g
    }

    #[test]
    fn oracle_agrees_with_itself_on_empty_graph() {
        let g = RcgGraph::new(3);
        let (p, c) = brute_force(&g, 2, 0.0);
        assert_eq!(c, 0.0);
        // Lex-min tie-break: everything in bank 0.
        assert!(p.bank_of.iter().all(|b| b.index() == 0));
    }

    #[test]
    fn branch_and_bound_matches_oracle_cost() {
        // The acceptance-criterion test: over a spread of random ≤6-register
        // graphs and bank counts, B&B and enumeration agree on the optimum.
        let mut checked = 0usize;
        for n in 2..=6u32 {
            for n_banks in [2usize, 3, 4] {
                for seed in 0..12u64 {
                    let g = random_graph(n, seed * 1_000 + n as u64, 3);
                    let (_, oracle_cost) = brute_force(&g, n_banks, 0.0);
                    let r = solve(&g, n_banks, None, &ExactConfig::default());
                    assert!(r.optimal, "n={n} banks={n_banks} seed={seed} must close");
                    assert!(
                        (r.cost - oracle_cost).abs() <= 1e-9,
                        "n={n} banks={n_banks} seed={seed}: b&b {} vs oracle {}",
                        r.cost,
                        oracle_cost
                    );
                    // The returned partition must actually realise the cost.
                    assert!(
                        (partition_cost(&g, &r.partition, 0.0) - r.cost).abs() <= 1e-9,
                        "reported cost must match the returned partition"
                    );
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, 5 * 3 * 12);
    }

    #[test]
    fn branch_and_bound_matches_oracle_with_balance() {
        for seed in 0..6u64 {
            let g = random_graph(5, 42 + seed, 2);
            let (_, oracle_cost) = brute_force(&g, 3, 0.4);
            let cfg = ExactConfig {
                balance_weight: 0.4,
                ..Default::default()
            };
            let r = solve(&g, 3, None, &cfg);
            assert!(r.optimal);
            assert!(
                (r.cost - oracle_cost).abs() <= 1e-9,
                "seed={seed}: b&b {} vs oracle {}",
                r.cost,
                oracle_cost
            );
        }
    }

    #[test]
    #[should_panic]
    fn oracle_refuses_oversized_instances() {
        let g = RcgGraph::new(20);
        let _ = brute_force(&g, 4, 0.0);
    }
}
