//! Parallel subtree exploration over the vendored rayon stub.
//!
//! The stub supports exactly one shape — `slice.par_iter().map(f).collect()`
//! with dynamic index hand-out — so the search parallelises the same way the
//! corpus sweeps do: materialise a list of independent work items, fan the
//! mapped closure out, and reduce the in-order results.
//!
//! The work items are *subproblems*: the first few levels of the
//! branch-and-bound tree are expanded breadth-first (honouring the same
//! symmetry breaking as the sequential search, but skipping dominance and
//! bounding so the frontier shape is trivially deterministic) until there
//! are several subtrees per hardware thread. Each task then runs the
//! ordinary sequential [`Searcher`] over its subtree. Tasks share one
//! `AtomicU64` holding the best cost seen anywhere as f64 bits — costs are
//! non-negative, so bit order equals numeric order — which only ever
//! *tightens* pruning; because pruning is strict (`bound > best + EPS`), no
//! subtree containing a minimum-cost completion is ever discarded, whatever
//! the cross-thread timing.
//!
//! Every task starts from the same seed incumbent, so each returns the
//! `(cost, lexicographic)`-minimum over {seed} ∪ {its subtree's surviving
//! leaves}; the final reduction takes the same minimum across tasks, which
//! makes the parallel result identical to the sequential one.

use crate::bound::UNASSIGNED;
use crate::search::{Problem, Searcher, SolveStats, EPS};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;
use vliw_governor::TrackedBudget;

/// A partial assignment of the first `depth` registers in branch order.
#[derive(Clone)]
struct Subproblem {
    assigned: Vec<u8>,
    counts: Vec<u32>,
    used: usize,
    partial: f64,
    depth: usize,
}

/// Expand the root breadth-first until there are at least `target`
/// subproblems (or the tree is exhausted). Children are pushed in bank
/// order, so the frontier — and therefore the reduction order — is a pure
/// function of the problem.
fn build_frontier(p: &Problem, target: usize) -> Vec<Subproblem> {
    let mut frontier = vec![Subproblem {
        assigned: vec![UNASSIGNED; p.n],
        counts: vec![0; p.n_banks],
        used: 0,
        partial: 0.0,
        depth: 0,
    }];
    while frontier.len() < target {
        let Some(pos) = frontier.iter().position(|s| s.depth < p.n) else {
            break; // every subproblem is already a complete assignment
        };
        let s = frontier.remove(pos);
        let v = p.order[s.depth];
        let cand = (s.used + 1).min(p.n_banks);
        for b in 0..cand {
            let mut child = s.clone();
            let mut d = crate::bound::assign_edge_cost(&p.adj[v], &child.assigned, b as u8);
            if p.balance_weight > 0.0 {
                d += p.balance_weight * (2 * u64::from(child.counts[b]) + 1) as f64;
            }
            child.assigned[v] = b as u8;
            child.counts[b] += 1;
            child.partial += d;
            if b == child.used {
                child.used += 1;
            }
            child.depth += 1;
            frontier.push(child);
        }
    }
    frontier
}

/// Run the search across threads. Returns
/// `(best_cost, best_assign, stats, timed_out)` exactly as the sequential
/// path does.
pub(crate) fn solve_parallel(
    p: &Problem,
    seed_cost: f64,
    seed_assign: Vec<u8>,
    deadline: Option<Instant>,
    budget: Option<&TrackedBudget>,
) -> (f64, Vec<u8>, SolveStats, bool) {
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let frontier = build_frontier(p, threads * 4);

    // Each task owns cloned assignment/incumbent vectors on top of the
    // root working set the caller already charged; the adjacency itself is
    // borrowed, not cloned. Charge the per-task clone cost for the
    // fan-out's true footprint, and release it once the tasks retire.
    let fanout_bytes = crate::search::per_task_bytes(p).saturating_mul(frontier.len() as u64);
    if let Some(b) = budget {
        if !b.charge(fanout_bytes) {
            return (seed_cost, seed_assign, SolveStats::default(), true);
        }
    }

    let shared = AtomicU64::new(seed_cost.to_bits());
    let any_timeout = AtomicBool::new(false);

    let results: Vec<(f64, Vec<u8>, SolveStats)> = frontier
        .par_iter()
        .map(|s| {
            let mut searcher = Searcher::new(
                p,
                seed_cost,
                seed_assign.clone(),
                Some(&shared),
                deadline,
                budget,
            );
            searcher.assigned.copy_from_slice(&s.assigned);
            searcher.counts.copy_from_slice(&s.counts);
            searcher.used = s.used;
            searcher.partial = s.partial;
            searcher.dfs(s.depth);
            if searcher.timed_out {
                any_timeout.store(true, Ordering::Relaxed);
            }
            (searcher.best_cost, searcher.best_assign, searcher.stats)
        })
        .collect();

    // The tasks' cloned vectors are gone once the fan-out retires; only the
    // root working set (charged by the caller) outlives this call.
    if let Some(b) = budget {
        b.uncharge(fanout_bytes);
    }

    // Deterministic reduction: frontier order is fixed, every task already
    // folded the seed in, so the (cost, lex) minimum over tasks is the
    // global (cost, lex) minimum.
    let mut best_cost = seed_cost;
    let mut best_assign = seed_assign;
    let mut stats = SolveStats::default();
    // Frontier expansion did not run bound checks, but each expansion is a
    // tree node the sequential search would also have visited.
    stats.nodes_expanded += frontier.len() as u64;
    for (cost, assign, s) in results {
        stats.absorb(&s);
        let better = cost < best_cost - EPS;
        let tied_but_smaller =
            cost <= best_cost + EPS && assign.as_slice() < best_assign.as_slice();
        if better || tied_but_smaller {
            best_cost = best_cost.min(cost);
            best_assign = assign;
        }
    }
    (
        best_cost,
        best_assign,
        stats,
        any_timeout.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use crate::search::{solve, ExactConfig};
    use vliw_core::RcgGraph;
    use vliw_ir::VReg;

    fn dense_graph(n: u32, seed: u64) -> RcgGraph {
        let mut g = RcgGraph::new(n as usize);
        let mut state = seed;
        for a in 0..n {
            for b in (a + 1)..n {
                // SplitMix64 step — deterministic pseudo-random weights.
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                let w = (z % 9) as f64 - 4.0;
                if w != 0.0 {
                    g.bump_edge(VReg(a), VReg(b), w);
                }
            }
        }
        g
    }

    #[test]
    fn parallel_matches_sequential() {
        for (n, banks, seed) in [(6u32, 2usize, 1u64), (8, 4, 2), (10, 3, 3), (12, 4, 4)] {
            let g = dense_graph(n, seed);
            let seq = solve(&g, banks, None, &ExactConfig::default());
            let par = solve(
                &g,
                banks,
                None,
                &ExactConfig {
                    parallel: true,
                    ..Default::default()
                },
            );
            assert!(seq.optimal && par.optimal);
            assert_eq!(
                seq.partition, par.partition,
                "n={n} banks={banks}: parallel must return the identical partition"
            );
            assert!((seq.cost - par.cost).abs() <= 1e-9);
        }
    }

    #[test]
    fn parallel_is_deterministic_across_runs() {
        let g = dense_graph(11, 7);
        let cfg = ExactConfig {
            parallel: true,
            ..Default::default()
        };
        let r1 = solve(&g, 4, None, &cfg);
        let r2 = solve(&g, 4, None, &cfg);
        assert_eq!(r1.partition, r2.partition);
        assert_eq!(r1.cost, r2.cost);
    }
}
