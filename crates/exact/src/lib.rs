//! # vliw-exact — provably optimal bank assignment by branch-and-bound
//!
//! The paper's greedy RCG heuristic (§5) is only ever compared against other
//! *heuristics* — BUG, round-robin, component packing. This crate supplies
//! the honest yardstick: a branch-and-bound search over complete bank
//! assignments that provably minimises the RCG objective (cut attraction +
//! uncut repulsion, the graph-level proxy for inserted copy cost) for loops
//! small enough to close the search, and degrades gracefully into an anytime
//! heuristic for everything else.
//!
//! The search (see [`solve`]) combines four classic ingredients:
//!
//! * an **admissible lower bound** — the cost of the partial assignment plus,
//!   for every unassigned register, the cheapest bank it could still take
//!   against the already-assigned ones, plus a water-filling relaxation of
//!   the balance term ([`bound`]);
//! * **bank-permutation symmetry breaking** — banks are interchangeable in
//!   the objective, so a node may only open one fresh bank: the first K
//!   distinct nodes are effectively pinned to banks `0..K` ([`search`]);
//! * **dominance pruning** — a register with no unassigned neighbours
//!   contributes independently of every later decision and is placed at its
//!   cheapest bank without branching ([`search`]);
//! * an **anytime time budget** — the incumbent starts from a caller-supplied
//!   seed (in the pipeline: the greedy partition), so interrupting the search
//!   at the deadline returns a partition never worse than the seed, flagged
//!   `optimal: false` ([`ExactResult`]).
//!
//! Subtree exploration optionally fans out across the vendored rayon stub
//! ([`frontier`]): the first few levels of the tree are expanded
//! breadth-first into independent subproblems that share a best-cost bound
//! through an atomic, and each subtree runs the same sequential search.
//!
//! The brute-force enumeration in [`oracle`] exists for tests: it checks the
//! branch-and-bound against an exhaustive scan of all `banks^registers`
//! assignments on tiny graphs.

#![warn(missing_docs)]

pub mod bound;
pub mod frontier;
pub mod objective;
pub mod oracle;
pub mod search;

pub use objective::partition_cost;
pub use oracle::brute_force;
pub use search::{
    branch_order, dense_adjacency, solve, solve_governed, ExactConfig, ExactResult, SolveStats,
};
