//! The objective the exact search minimises.
//!
//! A complete bank assignment is scored directly on the register component
//! graph: every *attraction* edge (positive weight — def and use in the same
//! operation, §4.1) whose endpoints land in different banks will force a
//! cross-bank copy, so it pays its weight; every *repulsion* edge (negative
//! weight — two defs in the same ideal-kernel row) whose endpoints share a
//! bank risks serialising the defining operations, so it pays its magnitude.
//! Both contributions are non-negative, which the search exploits: costs can
//! be compared through their IEEE-754 bit patterns in a shared atomic.
//!
//! An optional quadratic balance term (`balance_weight · Σ_b count_b²`)
//! penalises piling registers into few banks. It defaults to off — the gap
//! harness wants a pure copy-cost yardstick, and the greedy heuristic's own
//! balance penalty is a *scheduling* heuristic, not part of the objective
//! the paper's figure of merit measures.

use vliw_core::{Partition, RcgGraph};

/// Cost contributed by a single RCG edge of weight `w` whose endpoints are
/// (`same = true`) or are not (`same = false`) in the same bank.
#[inline]
pub fn edge_cost(w: f64, same: bool) -> f64 {
    if w > 0.0 && !same {
        w // cut attraction: a cross-bank copy will be inserted
    } else if w < 0.0 && same {
        -w // uncut repulsion: same-row defs compete for one cluster
    } else {
        0.0
    }
}

/// Quadratic balance penalty of the bank occupancy counts.
#[inline]
pub fn balance_cost(counts: &[usize], balance_weight: f64) -> f64 {
    if balance_weight == 0.0 {
        return 0.0;
    }
    balance_weight * counts.iter().map(|&c| (c * c) as f64).sum::<f64>()
}

/// Total objective of a complete partition of `g`'s registers.
///
/// This is the reference implementation — the search reconstructs the same
/// value incrementally, and the enumeration oracle and the property tests
/// both score candidates through this function so any drift between the
/// incremental and whole-partition forms is caught immediately.
pub fn partition_cost(g: &RcgGraph, part: &Partition, balance_weight: f64) -> f64 {
    debug_assert_eq!(g.n_nodes(), part.bank_of.len());
    let mut cost = 0.0;
    for (a, b, w) in g.edges() {
        cost += edge_cost(w, part.bank(a) == part.bank(b));
    }
    cost + balance_cost(&part.sizes(), balance_weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::VReg;
    use vliw_machine::ClusterId;

    fn part(banks: &[u32], n_banks: usize) -> Partition {
        Partition {
            bank_of: banks.iter().map(|&b| ClusterId(b)).collect(),
            n_banks,
        }
    }

    #[test]
    fn cut_attraction_pays_its_weight() {
        let mut g = RcgGraph::new(2);
        g.bump_edge(VReg(0), VReg(1), 3.0);
        assert_eq!(partition_cost(&g, &part(&[0, 0], 2), 0.0), 0.0);
        assert_eq!(partition_cost(&g, &part(&[0, 1], 2), 0.0), 3.0);
    }

    #[test]
    fn uncut_repulsion_pays_its_magnitude() {
        let mut g = RcgGraph::new(2);
        g.bump_edge(VReg(0), VReg(1), -2.5);
        assert_eq!(partition_cost(&g, &part(&[0, 0], 2), 0.0), 2.5);
        assert_eq!(partition_cost(&g, &part(&[0, 1], 2), 0.0), 0.0);
    }

    #[test]
    fn balance_term_prefers_even_spread() {
        let g = RcgGraph::new(4);
        let piled = partition_cost(&g, &part(&[0, 0, 0, 0], 2), 0.1);
        let even = partition_cost(&g, &part(&[0, 0, 1, 1], 2), 0.1);
        assert!(even < piled);
    }

    #[test]
    fn cost_is_never_negative() {
        let mut g = RcgGraph::new(3);
        g.bump_edge(VReg(0), VReg(1), 4.0);
        g.bump_edge(VReg(1), VReg(2), -1.0);
        for banks in [[0, 0, 0], [0, 1, 0], [1, 0, 1], [0, 1, 1]] {
            assert!(partition_cost(&g, &part(&banks, 2), 0.0) >= 0.0);
        }
    }
}
