//! Corpus-wide properties of the exact solver (ISSUE satellite): on every
//! small loop the cost ordering `exact ≤ greedy ≤ round-robin` holds, and
//! the search closes with `optimal = true` without a time budget.

use vliw_core::{
    assign_banks_caps, build_rcg, round_robin_partition, LoopContext, PartitionConfig,
};
use vliw_exact::{partition_cost, solve, ExactConfig};
use vliw_ir::Loop;
use vliw_loopgen::corpus;
use vliw_machine::MachineDesc;

/// The gap experiment's small-loop ceiling.
const MAX_REGS: usize = 12;

fn small_loops(c: &[Loop]) -> impl Iterator<Item = &Loop> {
    c.iter().filter(|l| l.n_vregs() <= MAX_REGS)
}

#[test]
fn corpus_has_a_meaningful_small_loop_slice() {
    // The gap table is only an interesting yardstick if the ≤12-register
    // slice is a real fraction of the corpus, not a handful of outliers.
    let c = corpus();
    let small = small_loops(&c).count();
    assert!(
        small >= 50,
        "only {small}/{} corpus loops have <= {MAX_REGS} vregs",
        c.len()
    );
}

#[test]
fn exact_cost_ordering_holds_on_every_small_loop() {
    let c = corpus();
    let mut checked = 0usize;
    for m in [MachineDesc::embedded(4, 4), MachineDesc::embedded(2, 8)] {
        for l in small_loops(&c) {
            let cfg = PartitionConfig::default();
            let ctx = LoopContext::new(l, &m);
            let g = build_rcg(l, &ctx.ideal, &ctx.slack, &cfg);
            let caps: Vec<usize> = m.clusters.iter().map(|cl| cl.n_fus).collect();
            let greedy_part = assign_banks_caps(&g, &caps, &cfg);
            let greedy = partition_cost(&g, &greedy_part, 0.0);
            let rr = partition_cost(&g, &round_robin_partition(l.n_vregs(), m.n_clusters()), 0.0);
            let r = solve(
                &g,
                m.n_clusters(),
                Some(&greedy_part),
                &ExactConfig::default(),
            );
            assert!(r.optimal, "{} on {}: search must close", l.name, m.name);
            assert!(
                r.cost <= greedy + 1e-9,
                "{} on {}: exact {} > greedy {}",
                l.name,
                m.name,
                r.cost,
                greedy
            );
            assert!(
                greedy <= rr + 1e-9,
                "{} on {}: greedy {} > round-robin {} — the heuristic \
                 regressed below the dumbest baseline",
                l.name,
                m.name,
                greedy,
                rr
            );
            // The returned partition must actually realise the claimed cost.
            assert!(
                (partition_cost(&g, &r.partition, 0.0) - r.cost).abs() <= 1e-9,
                "{} on {}: reported cost drifts from the returned partition",
                l.name,
                m.name
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 100,
        "only {checked} (loop, machine) pairs checked"
    );
}

#[test]
fn parallel_solver_agrees_on_corpus_loops() {
    // The gap harness and benches run the frontier-parallel mode; it must
    // return the same partition as the sequential mode the driver uses.
    let c = corpus();
    let m = MachineDesc::embedded(4, 4);
    for l in small_loops(&c).take(20) {
        let cfg = PartitionConfig::default();
        let ctx = LoopContext::new(l, &m);
        let g = build_rcg(l, &ctx.ideal, &ctx.slack, &cfg);
        let seq = solve(&g, m.n_clusters(), None, &ExactConfig::default());
        let par = solve(
            &g,
            m.n_clusters(),
            None,
            &ExactConfig {
                parallel: true,
                ..Default::default()
            },
        );
        assert!(seq.optimal && par.optimal);
        assert_eq!(seq.partition, par.partition, "{}", l.name);
    }
}
