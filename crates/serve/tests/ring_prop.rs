//! Property tests for the consistent-hash ring.
//!
//! The ring is the sharded client's routing contract, so these pin the
//! three properties failover correctness depends on: determinism (same
//! peer list → same routes, regardless of construction order), stability
//! (removing a peer remaps only the keys that peer owned) and balance
//! (no peer owns more than 2× another's share of the real 422-key corpus
//! grid).

use proptest::prelude::*;
use vliw_machine::MachineDesc;
use vliw_pipeline::PipelineConfig;
use vliw_serve::{CompileRequest, HashRing};

fn peer_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{i}:7878")).collect()
}

fn arb_key() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..16, 4..40)
        .prop_map(|nibbles| nibbles.iter().map(|n| format!("{n:x}")).collect())
}

/// Every (loop, machine) cache key of the corpus grid the benchmarks
/// sweep: 211 loops × 2 machines = 422 keys.
fn corpus_grid_keys() -> Vec<String> {
    let corpus = vliw_loopgen::corpus();
    let machines = [MachineDesc::embedded(4, 4), MachineDesc::copy_unit(4, 4)];
    let cfg = PipelineConfig::default();
    let mut keys = Vec::with_capacity(corpus.len() * machines.len());
    for machine in &machines {
        for body in &corpus {
            keys.push(CompileRequest::from_parts(body, machine, &cfg).cache_key());
        }
    }
    keys
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn routing_is_deterministic(key in arb_key(), n in 1usize..6) {
        let a = HashRing::new(peer_names(n));
        let b = HashRing::new(peer_names(n));
        prop_assert_eq!(a.route(&key), b.route(&key));
        prop_assert_eq!(a.successors(&key), b.successors(&key));
    }

    #[test]
    fn successors_start_at_owner_and_cover_every_peer(key in arb_key(), n in 1usize..6) {
        let ring = HashRing::new(peer_names(n));
        let succ = ring.successors(&key);
        prop_assert_eq!(succ[0], ring.route(&key).unwrap());
        let mut sorted = succ.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), n);
    }

    #[test]
    fn removing_a_peer_remaps_only_its_keys(
        key in arb_key(),
        n in 2usize..6,
        removed in 0usize..6,
    ) {
        let removed = removed % n;
        let peers = peer_names(n);
        let full = HashRing::new(peers.clone());
        let mut rest = peers.clone();
        rest.remove(removed);
        let reduced = HashRing::new(rest);

        // Compare routes by peer *name*: indices shift when a peer leaves.
        let before = full.peer(full.route(&key).unwrap()).to_string();
        let after = reduced.peer(reduced.route(&key).unwrap()).to_string();
        if before != peers[removed] {
            prop_assert_eq!(before, after, "settled key must not move");
        } else {
            // An orphaned key lands exactly on its next ring successor.
            let successor = full
                .successors(&key)
                .into_iter()
                .map(|p| full.peer(p).to_string())
                .find(|p| p != &peers[removed])
                .unwrap();
            prop_assert_eq!(after, successor);
        }
    }
}

#[test]
fn corpus_grid_load_is_balanced_within_2x() {
    let keys = corpus_grid_keys();
    assert_eq!(keys.len(), 422, "the corpus grid the benchmarks sweep");
    for n in 2..=4 {
        let ring = HashRing::new(peer_names(n));
        let mut counts = vec![0usize; n];
        for key in &keys {
            counts[ring.route(key).unwrap()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(min > 0, "every peer owns some of the corpus ({n} peers)");
        assert!(
            max <= 2 * min,
            "{n} peers: shard loads {counts:?} exceed 2x max/min"
        );
    }
}
