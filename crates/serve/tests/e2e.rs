//! End-to-end tests of the compile service over real TCP.
//!
//! Each test binds its own server on an ephemeral loopback port, drives it
//! through [`vliw_serve::Client`], and shuts it down over the wire.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use vliw_loopgen::{corpus_with, CorpusSpec};
use vliw_machine::MachineDesc;
use vliw_pipeline::PipelineConfig;
use vliw_serve::{
    CachedCompiler, Client, ClientError, CompileRequest, DiskStore, Json, Server, ServerConfig,
    ServerCore, ShardedClient, TieredCache,
};

struct TestServer {
    addr: String,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    /// Bind on an ephemeral port and serve from a background thread.
    fn start(disk: Option<DiskStore>) -> TestServer {
        TestServer::start_with(disk, |_| {})
    }

    /// Like [`TestServer::start`], with a config hook for per-test knobs
    /// (core selection, worker count, idle timeout, line cap, ...).
    fn start_with(disk: Option<DiskStore>, tweak: impl FnOnce(&mut ServerConfig)) -> TestServer {
        let engine = CachedCompiler::new(TieredCache::new(1024, disk));
        let mut config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            default_timeout: Duration::from_secs(30),
            batch_parallelism: 4,
            ..ServerConfig::default()
        };
        tweak(&mut config);
        let server = Server::bind(config, engine).expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address").to_string();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr).expect("connect to test server")
    }

    /// Wire-shutdown and join the server thread.
    fn stop(mut self) {
        let mut c = self.client();
        c.shutdown().expect("shutdown ack");
        self.thread
            .take()
            .expect("not yet stopped")
            .join()
            .expect("server thread exits cleanly");
    }

    /// Join after the server was already shut down out-of-band.
    fn stop_joined(mut self) {
        self.thread
            .take()
            .expect("not yet stopped")
            .join()
            .expect("server thread exits cleanly");
    }
}

fn sample_request(idx: usize) -> CompileRequest {
    let spec = CorpusSpec {
        n: idx + 1,
        ..Default::default()
    };
    let body = corpus_with(&spec).remove(idx);
    CompileRequest::from_parts(
        &body,
        &MachineDesc::embedded(2, 4),
        &PipelineConfig::default(),
    )
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vliw-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn round_trip_and_repeat_is_cache_hit() {
    let server = TestServer::start(None);
    let mut client = server.client();
    client.ping().expect("ping");

    let req = sample_request(0);
    let first = client.compile(&req, None).expect("first compile");
    assert_eq!(first.served, "compiled");
    assert_eq!(
        first.result.key,
        req.cache_key(),
        "key matches content hash"
    );
    assert!(first.result.clustered_ii >= first.result.ideal_ii);

    // The identical request again: served from cache, byte-identical
    // artifact set under the identical hash.
    let second = client.compile(&req, None).expect("second compile");
    assert!(second.is_cache_hit(), "served={}", second.served);
    assert_eq!(second.result, first.result);
    assert_eq!(second.result.key, first.result.key);

    // A formatting variant of the same inputs canonicalises to the same key.
    let noisy = CompileRequest {
        loop_text: format!("; comment\n{}", req.loop_text),
        ..req.clone()
    };
    let third = client.compile(&noisy, None).expect("noisy compile");
    assert!(third.is_cache_hit());
    assert_eq!(third.result.key, first.result.key);

    let stats = client.stats().expect("stats");
    let n = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap() as u64;
    assert_eq!(n("compiles"), 1);
    assert_eq!(n("hits"), 2);
    assert_eq!(n("misses"), 1);

    server.stop();
}

#[test]
fn concurrent_identical_requests_compile_once() {
    let server = TestServer::start(None);
    let req = sample_request(1);

    // Eight connections race the same request; the in-flight table must
    // collapse them onto one pipeline execution.
    let results: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let req = req.clone();
                let addr = server.addr.clone();
                s.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    c.compile(&req, None).expect("compile")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let reference = &results[0].result;
    for r in &results {
        assert_eq!(&r.result, reference, "all callers see the same artifact");
    }
    let compiled = results.iter().filter(|r| r.served == "compiled").count();
    assert_eq!(compiled, 1, "exactly one request ran the pipeline");

    let mut client = server.client();
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.get("compiles").and_then(Json::as_f64),
        Some(1.0),
        "server-side execution count"
    );

    server.stop();
}

#[test]
fn disk_tier_survives_server_restart() {
    let root = tmpdir("restart");
    let req = sample_request(2);

    let first = {
        let server = TestServer::start(Some(DiskStore::new(&root)));
        let mut client = server.client();
        let out = client.compile(&req, None).expect("cold compile");
        assert_eq!(out.served, "compiled");
        server.stop();
        out
    };

    // A fresh server over the same cache directory serves the request
    // without compiling.
    let server = TestServer::start(Some(DiskStore::new(&root)));
    let mut client = server.client();
    let warm = client.compile(&req, None).expect("warm compile");
    assert!(warm.is_cache_hit(), "served={}", warm.served);
    assert_eq!(warm.result, first.result);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("compiles").and_then(Json::as_f64), Some(0.0));
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn malformed_requests_get_errors_not_disconnects() {
    let server = TestServer::start(None);
    let mut client = server.client();

    let bad = CompileRequest {
        loop_text: "this is not a loop".into(),
        machine_text: "machine m\ncluster 4 32 32".into(),
        config_text: String::new(),
    };
    let err = client.compile(&bad, None).expect_err("must fail");
    match &err {
        ClientError::Server(m) => assert!(m.contains("loop"), "error names the section: {m}"),
        other => panic!("expected a server error, got {other:?}"),
    }

    // The connection survives a rejected request.
    client.ping().expect("still connected");
    let ok = client.compile(&sample_request(0), None).expect("recovers");
    assert_eq!(ok.served, "compiled");

    server.stop();
}

#[test]
fn peer_hangup_is_a_disconnect_not_a_malformed_reply() {
    // A raw listener that accepts one connection and immediately drops it:
    // the client must classify the 0-byte read as Disconnected, which is
    // the signal the sharded failover path keys on.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let accept = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        drop(stream);
    });
    let mut client = Client::connect(&addr).expect("connect");
    accept.join().expect("accept thread");
    let err = client.ping().expect_err("peer hung up");
    assert!(err.is_transport(), "transport-class error: {err:?}");
    assert!(
        matches!(err, ClientError::Disconnected(_)),
        "disconnect, not malformed: {err:?}"
    );
}

#[test]
fn batch_op_compiles_all_entries_and_dedups_duplicates() {
    let server = TestServer::start(None);
    let mut client = server.client();

    // Six entries, two of them identical: the duplicate pair must collapse
    // through the in-flight table / cache, and a bad entry must fail alone.
    let reqs: Vec<CompileRequest> = vec![
        sample_request(0),
        sample_request(1),
        sample_request(2),
        sample_request(0), // duplicate of entry 0
        sample_request(3),
        CompileRequest {
            loop_text: "not a loop".into(),
            machine_text: "machine m\ncluster 4 32 32".into(),
            config_text: String::new(),
        },
    ];
    let results = client
        .compile_batch(&reqs, None, Some(4))
        .expect("batch round trip");
    assert_eq!(results.len(), reqs.len());
    for (i, res) in results.iter().enumerate().take(5) {
        let served = res.as_ref().expect("entry compiles");
        assert!(
            served.served == "compiled" || served.served == "cache" || served.served == "deduped",
            "entry {i} served={}",
            served.served
        );
    }
    let dup = results[3].as_ref().expect("duplicate entry");
    let orig = results[0].as_ref().expect("original entry");
    assert_eq!(dup.result, orig.result, "duplicates share one artifact");
    let bad = results[5].as_ref().expect_err("bad entry fails in place");
    assert!(bad.contains("loop"), "error names the section: {bad}");

    let stats = client.stats().expect("stats");
    let n = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap() as u64;
    assert_eq!(n("batches"), 1);
    assert_eq!(n("compiles"), 4, "duplicate entry never recompiles");

    // The same batch again is served entirely from cache.
    let again = client
        .compile_batch(&reqs[..5], None, None)
        .expect("warm batch");
    for res in &again {
        assert!(res.as_ref().expect("warm entry").is_cache_hit());
    }

    server.stop();
}

#[test]
fn sharded_client_routes_batches_and_fails_over() {
    let a = TestServer::start(None);
    let b = TestServer::start(None);
    let mut sharded = ShardedClient::new([a.addr.clone(), b.addr.clone()]);

    let reqs: Vec<CompileRequest> = (0..8).map(sample_request).collect();
    let first = sharded
        .compile_batch(&reqs, None, Some(4))
        .expect("sharded batch");
    assert_eq!(first.len(), reqs.len());
    for res in &first {
        assert_eq!(res.as_ref().expect("entry compiles").served, "compiled");
    }
    assert_eq!(sharded.failovers(), 0, "no failover while both peers live");

    // Same batch again: every entry lands on the same peer and hits cache.
    let warm = sharded
        .compile_batch(&reqs, None, None)
        .expect("warm batch");
    for res in &warm {
        assert!(res.as_ref().expect("warm entry").is_cache_hit());
    }

    // Aggregated stats see both peers and the full corpus.
    let (per_peer, merged) = sharded.stats_aggregate().expect("aggregate");
    assert_eq!(per_peer.len(), 2);
    assert!(per_peer.iter().all(|(_, s)| s.is_ok()));
    let m = |k: &str| merged.get(k).and_then(Json::as_f64).unwrap() as u64;
    assert_eq!(m("peers_reporting"), 2);
    assert_eq!(m("compiles"), 8, "each entry compiled exactly once overall");
    assert_eq!(m("hits"), 8, "warm batch hit cache on every entry");

    // Kill peer A outright (no graceful shutdown): the next batch must
    // reroute A's slice to B and count one failover per rerouted entry.
    let a_addr = a.addr.clone();
    let mut killer = a.client();
    let _ = killer.shutdown();
    a.stop_joined();
    let rerouted = sharded
        .compile_batch(&reqs, None, Some(4))
        .expect("failover batch");
    for res in &rerouted {
        res.as_ref().expect("entry still served");
    }
    let expected_on_a = reqs
        .iter()
        .filter(|r| {
            // Routing is by semantic key (see `ShardedClient::compile`).
            let key = r
                .canonicalize()
                .expect("canonical")
                .semantic_key()
                .expect("semantic");
            sharded
                .ring()
                .peer(sharded.ring().route(&key).expect("route"))
                == a_addr
        })
        .count() as u64;
    assert!(expected_on_a > 0, "corpus should split across both peers");
    assert_eq!(sharded.failovers(), expected_on_a);

    // Single-request path fails over too.
    let (res, peer) = sharded.compile(&reqs[0], None).expect("single failover");
    assert!(res.served == "cache" || res.served == "compiled");
    assert_eq!(peer, b.addr, "only peer B is left");

    b.stop();
}

/// Read one newline-terminated response off a raw socket.
fn read_line_raw(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
            }
            Err(e) => panic!("raw read failed: {e}"),
        }
    }
    String::from_utf8_lossy(&buf).into_owned()
}

/// Render one batch entry object the way the canonical wire line carries it.
fn entry_json(req: &CompileRequest) -> String {
    Json::obj([
        ("loop", Json::Str(req.loop_text.clone())),
        ("machine", Json::Str(req.machine_text.clone())),
        ("config", Json::Str(req.config_text.clone())),
    ])
    .render()
}

#[test]
fn reactor_holds_512_mostly_idle_connections_on_two_workers() {
    // The thread-pool core would need 512 threads for this; the reactor
    // holds them all on one thread with a 2-worker compile pool.
    let server = TestServer::start_with(None, |c| {
        c.workers = 2;
        c.max_conns = 1024;
    });
    let mut clients: Vec<Client> = (0..512).map(|_| server.client()).collect();
    for c in clients.iter_mut() {
        c.ping().expect("every connection answers");
    }
    // One connection compiles while the other 511 sit idle.
    let out = clients[7]
        .compile(&sample_request(0), None)
        .expect("compile among idle crowd");
    assert_eq!(out.served, "compiled");
    // A sprinkle of re-use across the idle set.
    for c in clients.iter_mut().step_by(37) {
        c.ping().expect("idle connection still live");
    }
    let stats = clients[0].stats().expect("stats");
    let accepts = stats.get("accepts").and_then(Json::as_f64).unwrap();
    assert!(accepts >= 512.0, "accepts={accepts}");
    drop(clients);
    server.stop();
}

#[test]
fn byte_at_a_time_requests_assemble_correctly() {
    let server = TestServer::start(None);
    let mut s = TcpStream::connect(&server.addr).expect("raw connect");
    s.set_nodelay(true).expect("nodelay");

    // A simple op dribbled one byte per write.
    for &b in b"{\"op\":\"ping\"}\n" {
        s.write_all(&[b]).expect("write byte");
    }
    let resp = read_line_raw(&mut s);
    assert!(resp.contains("\"ok\":true"), "{resp}");

    // A canonical streaming batch, also one byte at a time: the server
    // must start entry 0 before the line (or even entry 1) is complete.
    let e0 = entry_json(&sample_request(0));
    let e1 = entry_json(&sample_request(1));
    let line = format!("{{\"op\":\"compile_batch\",\"requests\":[{e0},{e1}]}}\n");
    for &b in line.as_bytes() {
        s.write_all(&[b]).expect("write batch byte");
    }
    let resp = read_line_raw(&mut s);
    assert!(resp.contains("\"n\":2"), "{resp}");
    assert!(resp.contains("\"op\":\"compile_batch\""), "{resp}");
    assert_eq!(resp.matches("\"served\"").count(), 2, "{resp}");
    server.stop();
}

#[test]
fn server_survives_client_with_tiny_receive_window() {
    // Shrink the client's receive buffer and read the response in 64-byte
    // nibbles: the server's writes hit WouldBlock and must finish under
    // WRITE-readiness events instead of blocking a thread.
    let server = TestServer::start(None);
    let mut s = TcpStream::connect(&server.addr).expect("raw connect");
    vliw_serve::sys::set_recv_buffer_size(&s, 1024).expect("shrink rcvbuf");

    let entry = entry_json(&sample_request(0));
    let entries = vec![entry; 64].join(",");
    let line = format!("{{\"op\":\"compile_batch\",\"requests\":[{entries}]}}\n");
    s.write_all(line.as_bytes()).expect("send batch");

    let mut resp = Vec::new();
    let mut buf = [0u8; 64];
    loop {
        let n = s.read(&mut buf).expect("nibble read");
        assert!(n > 0, "connection closed before the response finished");
        resp.extend_from_slice(&buf[..n]);
        if resp.contains(&b'\n') {
            break;
        }
    }
    let resp = String::from_utf8_lossy(&resp);
    assert!(resp.contains("\"n\":64"), "got {} bytes", resp.len());
    assert_eq!(resp.matches("\"served\"").count(), 64);
    server.stop();
}

#[test]
fn idle_connections_are_swept_with_typed_error() {
    let server = TestServer::start_with(None, |c| {
        c.idle_timeout = Some(Duration::from_millis(200));
    });
    let mut s = TcpStream::connect(&server.addr).expect("raw connect");
    // Send nothing: the sweep must push a typed error and close.
    let resp = read_line_raw(&mut s);
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("idle timeout"), "{resp}");
    let mut buf = [0u8; 16];
    assert_eq!(s.read(&mut buf).unwrap_or(0), 0, "connection is closed");

    // An active connection must not be swept.
    let mut c = server.client();
    for _ in 0..4 {
        c.ping().expect("active connection survives the sweep");
        std::thread::sleep(Duration::from_millis(90));
    }
    let stats = c.stats().expect("stats");
    let swept = stats.get("idle_closed").and_then(Json::as_f64).unwrap();
    assert!(swept >= 1.0, "idle_closed={swept}");
    server.stop();
}

#[test]
fn oversized_request_line_is_rejected_and_closed() {
    let server = TestServer::start_with(None, |c| c.max_line_bytes = 4096);
    let mut s = TcpStream::connect(&server.addr).expect("raw connect");
    s.write_all(&vec![b'a'; 10_000])
        .expect("send oversized junk");
    let resp = read_line_raw(&mut s);
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("length limit"), "{resp}");
    let mut buf = [0u8; 16];
    assert_eq!(s.read(&mut buf).unwrap_or(0), 0, "connection is closed");
    server.stop();
}

#[test]
fn poll_backend_serves_the_same_protocol() {
    let server = TestServer::start_with(None, |c| c.force_poll = true);
    let mut client = server.client();
    client.ping().expect("ping over poll backend");
    let out = client
        .compile(&sample_request(4), None)
        .expect("compile over poll backend");
    assert_eq!(out.served, "compiled");
    let reqs: Vec<CompileRequest> = (0..3).map(sample_request).collect();
    let results = client
        .compile_batch(&reqs, None, Some(2))
        .expect("batch over poll backend");
    assert_eq!(results.len(), 3);
    for r in &results {
        r.as_ref().expect("entry compiles");
    }
    server.stop();
}

/// daxpy unrolled 6×: 30 ops over 25 vregs. On `embedded(4,4)` the II=2
/// rung is a deep refutation (seconds even in release), so any sub-second
/// joint budget reliably truncates — the anytime path's canonical hard
/// instance. The default `LintMode::Gate` panics in debug builds on any
/// JNT001–003 finding, so a dishonest truncated claim would kill the worker
/// and fail these tests with a disconnect.
fn hard_joint_request(budget_ms: u64) -> CompileRequest {
    use vliw_ir::{LoopBuilder, RegClass};
    let mut b = LoopBuilder::new("hard_daxpy_u6");
    let x = b.array("x", RegClass::Float, 1024);
    let y = b.array("y", RegClass::Float, 1024);
    let a = b.live_in_float("a");
    for u in 0..6i64 {
        let xv = b.load(x, u, 6);
        let yv = b.load(y, u, 6);
        let p = b.fmul(a, xv);
        let s = b.fadd(yv, p);
        b.store(y, u, 6, s);
    }
    let body = b.finish(128);
    let cfg = PipelineConfig {
        partitioner: vliw_pipeline::PartitionerKind::Joint { budget_ms },
        ..PipelineConfig::default()
    };
    CompileRequest::from_parts(&body, &MachineDesc::embedded(4, 4), &cfg)
}

#[test]
fn under_budgeted_joint_compile_returns_typed_truncation() {
    let server = TestServer::start(None);
    let mut client = server.client();

    // An explicit 1 ms budget: the solver must answer with its incumbent
    // and honest bounds instead of timing out or dropping the connection.
    let req = hard_joint_request(1);
    let out = client
        .compile(&req, None)
        .expect("typed response, not a timeout");
    assert_eq!(out.served, "compiled");
    let joint = out
        .result
        .joint
        .expect("joint partitioner reports its claims");
    assert!(!joint.optimal, "1 ms cannot close this instance");
    assert!(joint.lower_bound_ii <= joint.ii);
    assert!(joint.ii <= joint.greedy_ii);

    // The connection survives and the truncation is counted.
    client.ping().expect("still connected");
    let stats = client.stats().expect("stats");
    let truncated = stats
        .get("joint_truncated")
        .and_then(Json::as_f64)
        .expect("joint_truncated is exported");
    assert!(truncated >= 1.0, "joint_truncated={truncated}");

    // The budget is part of the request text, so this (reproducible)
    // truncated artifact is cacheable like any other result — and the
    // joint claims survive the cache round trip.
    let warm = client.compile(&req, None).expect("warm");
    assert!(warm.is_cache_hit(), "served={}", warm.served);
    assert_eq!(warm.result, out.result);

    server.stop();
}

#[test]
fn deadline_clamped_joint_results_are_never_cached() {
    let server = TestServer::start(None);
    let mut client = server.client();

    // An *unlimited* configured budget under a short request deadline: the
    // server clamps the solver's budget to 3/4 of the deadline so the
    // request answers instead of timing out. The clamped result depends on
    // the deadline, which is not part of the cache key, so it must never
    // be published under the request's canonical key.
    let req = hard_joint_request(0);
    let first = client.compile(&req, Some(1000)).expect("clamped compile");
    assert_eq!(first.served, "compiled");
    let joint = first.result.joint.expect("joint claims");
    assert!(
        !joint.optimal,
        "a clamped search cannot close this instance"
    );
    assert!(joint.lower_bound_ii <= joint.ii);

    // The leader clears its in-flight entry moments after its waiter is
    // notified; let it drain so the retry elects a fresh leader instead of
    // deduping onto the first compile (in-flight coalescing is same-moment
    // sharing, not caching).
    std::thread::sleep(Duration::from_millis(200));
    let second = client
        .compile(&req, Some(1000))
        .expect("second clamped compile");
    assert_eq!(
        second.served, "compiled",
        "a deadline-tainted result must not be served from cache"
    );

    let stats = client.stats().expect("stats");
    let n = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap() as u64;
    assert_eq!(n("compiles"), 2);
    assert!(n("joint_truncated") >= 2);

    server.stop();
}

/// The same 25-vreg daxpy body under the *exact* partitioner with an
/// unlimited explicit budget: only a governed pool trip can truncate it.
fn hard_exact_request() -> CompileRequest {
    use vliw_ir::{LoopBuilder, RegClass};
    let mut b = LoopBuilder::new("hard_daxpy_u6");
    let x = b.array("x", RegClass::Float, 1024);
    let y = b.array("y", RegClass::Float, 1024);
    let a = b.live_in_float("a");
    for u in 0..6i64 {
        let xv = b.load(x, u, 6);
        let yv = b.load(y, u, 6);
        let p = b.fmul(a, xv);
        let s = b.fadd(yv, p);
        b.store(y, u, 6, s);
    }
    let body = b.finish(128);
    let cfg = PipelineConfig {
        partitioner: vliw_pipeline::PartitionerKind::Exact { budget_ms: 0 },
        ..PipelineConfig::default()
    };
    CompileRequest::from_parts(&body, &MachineDesc::embedded(4, 4), &cfg)
}

#[test]
fn pool_tripped_exact_truncation_is_never_cached() {
    // A pool far too small for the exact search's working set: the budget
    // trips on the first charge and the solver returns its greedy seed
    // with an honest `optimal: false`. That truncation is a function of
    // transient server state (pool occupancy), not of the request text the
    // cache key hashes — so it must never be cached, even though the
    // request's own budget is unlimited.
    let server = TestServer::start_with(None, |c| {
        c.mem_budget = 4096;
        c.shed_policy = vliw_serve::ShedPolicy::Never;
    });
    let mut client = server.client();

    let req = hard_exact_request();
    let first = client.compile(&req, None).expect("truncated compile");
    assert_eq!(first.served, "compiled");
    let exact = first
        .result
        .exact
        .expect("exact partitioner reports its claims");
    assert!(
        !exact.optimal,
        "a 4 KiB pool cannot cover the exact working set"
    );

    // Let the leader retire its in-flight slot, then repeat: the degraded
    // seed partition must not be served back from cache.
    std::thread::sleep(Duration::from_millis(200));
    let second = client.compile(&req, None).expect("second compile");
    assert_eq!(
        second.served, "compiled",
        "a pool-tripped truncation must not be served from cache"
    );
    assert!(!second.result.exact.expect("claims").optimal);

    let stats = client.stats().expect("stats");
    let n = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap() as u64;
    assert_eq!(n("compiles"), 2);

    server.stop();
}

#[test]
fn interactive_exact_compiles_are_pool_accounted() {
    // An exact request *under* the heavy vreg threshold rides the
    // interactive lane, but its solver still charges the pool: with a
    // pool smaller than even this small working set, the compile must
    // come back as an honest truncation instead of an unaccounted solve
    // (--mem-budget is a hard cap for every lane).
    let server = TestServer::start_with(None, |c| {
        c.mem_budget = 256;
        c.shed_policy = vliw_serve::ShedPolicy::Never;
    });
    let mut client = server.client();

    use vliw_ir::{LoopBuilder, RegClass};
    let mut b = LoopBuilder::new("small_daxpy_u2");
    let x = b.array("x", RegClass::Float, 1024);
    let y = b.array("y", RegClass::Float, 1024);
    let a = b.live_in_float("a");
    for u in 0..2i64 {
        let xv = b.load(x, u, 2);
        let yv = b.load(y, u, 2);
        let p = b.fmul(a, xv);
        let s = b.fadd(yv, p);
        b.store(y, u, 2, s);
    }
    let body = b.finish(128);
    let cfg = PipelineConfig {
        partitioner: vliw_pipeline::PartitionerKind::Exact { budget_ms: 0 },
        ..PipelineConfig::default()
    };
    let req = CompileRequest::from_parts(&body, &MachineDesc::embedded(4, 4), &cfg);

    let first = client.compile(&req, None).expect("governed compile");
    assert_eq!(first.served, "compiled");
    let exact = first.result.exact.expect("exact claims");
    assert!(
        !exact.optimal,
        "a 256-byte pool cannot cover even this working set"
    );

    // Pool-tripped, so never cached — identical to the heavy-lane rule.
    std::thread::sleep(Duration::from_millis(200));
    let second = client.compile(&req, None).expect("second compile");
    assert_eq!(second.served, "compiled");

    // The grant is returned when the budget drops — moments after the
    // waiter is answered, so poll briefly instead of racing it.
    let mut used = u64::MAX;
    for _ in 0..50 {
        let stats = client.stats().expect("stats");
        used = stats
            .get("pool_bytes_used")
            .and_then(Json::as_f64)
            .expect("pool gauge") as u64;
        if used == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(used, 0, "all grants returned");

    server.stop();
}

#[test]
fn thread_pool_core_still_serves() {
    let server = TestServer::start_with(None, |c| c.core = ServerCore::ThreadPool);
    let mut client = server.client();
    client.ping().expect("ping over thread-pool core");
    let out = client
        .compile(&sample_request(5), None)
        .expect("compile over thread-pool core");
    assert_eq!(out.served, "compiled");
    server.stop();
}

/// Fair-share isolation: one greedy client floods the heavy lane with
/// expensive joint solves while a second client replays a warm cache hit.
/// The victim's requests are interactive — the governor must never shed
/// them, and the heavy-lane worker quota must keep workers free so its
/// latency stays bounded while the flood is still compiling.
#[test]
fn heavy_flood_does_not_starve_interactive_client() {
    use std::time::Instant;
    let server = TestServer::start_with(None, |c| {
        c.workers = 4;
        c.heavy_lane_workers = 2; // two workers always answerable to interactive
        c.shed_policy = vliw_serve::ShedPolicy::Adaptive;
    });

    // Warm the cache with the victim's request before the flood begins.
    let victim_req = sample_request(0);
    let mut warmup = server.client();
    assert_eq!(
        warmup.compile(&victim_req, None).expect("warm").served,
        "compiled"
    );

    // Four greedy connections, each sending distinct heavy joint solves
    // (distinct budgets => distinct cache keys, so every one compiles).
    // They retry on shed: under overload their work may be deferred, but
    // it must eventually complete.
    let greedy: Vec<_> = (0..4u64)
        .map(|t| {
            let addr = server.addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("greedy connect");
                let mut retries = 0u32;
                for i in 0..4u64 {
                    let req = hard_joint_request(40 + t * 4 + i);
                    let (out, r) = c
                        .compile_with_retry(&req, None, 20)
                        .expect("greedy compile eventually completes");
                    assert_eq!(out.served, "compiled");
                    retries += r;
                }
                retries
            })
        })
        .collect();

    // While the flood runs, the victim replays its warm hit and every
    // round trip must come straight from cache, unshed, quickly.
    let mut victim = server.client();
    let mut worst = Duration::ZERO;
    for _ in 0..50 {
        let t0 = Instant::now();
        let out = victim
            .compile(&victim_req, None)
            .expect("victim is never shed");
        worst = worst.max(t0.elapsed());
        assert!(out.is_cache_hit(), "served={}", out.served);
    }
    // Generous debug-build bound: a cache probe served by a reserved
    // interactive worker, not a solver slot. Seconds would mean the flood
    // occupied the whole pool.
    assert!(worst < Duration::from_secs(2), "victim worst={worst:?}");

    for g in greedy {
        g.join().expect("greedy thread");
    }

    // The governor's gauges are live on the stats wire; interactive sheds
    // must be zero by policy (`sheds` counts heavy-lane sheds only). The
    // last compile thread drops its grant moments *after* its waiter is
    // answered, so poll the pool briefly instead of racing it.
    let mut used = u64::MAX;
    for _ in 0..50 {
        let stats = victim.stats().expect("stats");
        let n = |k: &str| stats.get(k).and_then(Json::as_f64).expect(k) as u64;
        assert_eq!(n("queue_depth_interactive"), 0, "drained");
        assert!(stats.get("sheds").is_some() && stats.get("pool_bytes_limit").is_some());
        used = n("pool_bytes_used");
        if used == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(used, 0, "all grants returned");

    server.stop();
}
