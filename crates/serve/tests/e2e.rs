//! End-to-end tests of the compile service over real TCP.
//!
//! Each test binds its own server on an ephemeral loopback port, drives it
//! through [`vliw_serve::Client`], and shuts it down over the wire.

use std::time::Duration;
use vliw_loopgen::{corpus_with, CorpusSpec};
use vliw_machine::MachineDesc;
use vliw_pipeline::PipelineConfig;
use vliw_serve::{
    CachedCompiler, Client, CompileRequest, DiskStore, Json, Server, ServerConfig, TieredCache,
};

struct TestServer {
    addr: String,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    /// Bind on an ephemeral port and serve from a background thread.
    fn start(disk: Option<DiskStore>) -> TestServer {
        let engine = CachedCompiler::new(TieredCache::new(1024, disk));
        let server = Server::bind(
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 4,
                default_timeout: Duration::from_secs(30),
            },
            engine,
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address").to_string();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr).expect("connect to test server")
    }

    /// Wire-shutdown and join the server thread.
    fn stop(mut self) {
        let mut c = self.client();
        c.shutdown().expect("shutdown ack");
        self.thread
            .take()
            .expect("not yet stopped")
            .join()
            .expect("server thread exits cleanly");
    }
}

fn sample_request(idx: usize) -> CompileRequest {
    let spec = CorpusSpec {
        n: idx + 1,
        ..Default::default()
    };
    let body = corpus_with(&spec).remove(idx);
    CompileRequest::from_parts(
        &body,
        &MachineDesc::embedded(2, 4),
        &PipelineConfig::default(),
    )
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vliw-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn round_trip_and_repeat_is_cache_hit() {
    let server = TestServer::start(None);
    let mut client = server.client();
    client.ping().expect("ping");

    let req = sample_request(0);
    let first = client.compile(&req, None).expect("first compile");
    assert_eq!(first.served, "compiled");
    assert_eq!(
        first.result.key,
        req.cache_key(),
        "key matches content hash"
    );
    assert!(first.result.clustered_ii >= first.result.ideal_ii);

    // The identical request again: served from cache, byte-identical
    // artifact set under the identical hash.
    let second = client.compile(&req, None).expect("second compile");
    assert!(second.is_cache_hit(), "served={}", second.served);
    assert_eq!(second.result, first.result);
    assert_eq!(second.result.key, first.result.key);

    // A formatting variant of the same inputs canonicalises to the same key.
    let noisy = CompileRequest {
        loop_text: format!("; comment\n{}", req.loop_text),
        ..req.clone()
    };
    let third = client.compile(&noisy, None).expect("noisy compile");
    assert!(third.is_cache_hit());
    assert_eq!(third.result.key, first.result.key);

    let stats = client.stats().expect("stats");
    let n = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap() as u64;
    assert_eq!(n("compiles"), 1);
    assert_eq!(n("hits"), 2);
    assert_eq!(n("misses"), 1);

    server.stop();
}

#[test]
fn concurrent_identical_requests_compile_once() {
    let server = TestServer::start(None);
    let req = sample_request(1);

    // Eight connections race the same request; the in-flight table must
    // collapse them onto one pipeline execution.
    let results: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let req = req.clone();
                let addr = server.addr.clone();
                s.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    c.compile(&req, None).expect("compile")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let reference = &results[0].result;
    for r in &results {
        assert_eq!(&r.result, reference, "all callers see the same artifact");
    }
    let compiled = results.iter().filter(|r| r.served == "compiled").count();
    assert_eq!(compiled, 1, "exactly one request ran the pipeline");

    let mut client = server.client();
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.get("compiles").and_then(Json::as_f64),
        Some(1.0),
        "server-side execution count"
    );

    server.stop();
}

#[test]
fn disk_tier_survives_server_restart() {
    let root = tmpdir("restart");
    let req = sample_request(2);

    let first = {
        let server = TestServer::start(Some(DiskStore::new(&root)));
        let mut client = server.client();
        let out = client.compile(&req, None).expect("cold compile");
        assert_eq!(out.served, "compiled");
        server.stop();
        out
    };

    // A fresh server over the same cache directory serves the request
    // without compiling.
    let server = TestServer::start(Some(DiskStore::new(&root)));
    let mut client = server.client();
    let warm = client.compile(&req, None).expect("warm compile");
    assert!(warm.is_cache_hit(), "served={}", warm.served);
    assert_eq!(warm.result, first.result);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("compiles").and_then(Json::as_f64), Some(0.0));
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn malformed_requests_get_errors_not_disconnects() {
    let server = TestServer::start(None);
    let mut client = server.client();

    let bad = CompileRequest {
        loop_text: "this is not a loop".into(),
        machine_text: "machine m\ncluster 4 32 32".into(),
        config_text: String::new(),
    };
    let err = client.compile(&bad, None).expect_err("must fail");
    assert!(err.contains("loop"), "error names the section: {err}");

    // The connection survives a rejected request.
    client.ping().expect("still connected");
    let ok = client.compile(&sample_request(0), None).expect("recovers");
    assert_eq!(ok.served, "compiled");

    server.stop();
}
