//! Regression repro: does a half-closing client still get its response?

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;
use vliw_loopgen::{corpus_with, CorpusSpec};
use vliw_machine::MachineDesc;
use vliw_pipeline::PipelineConfig;
use vliw_serve::{CachedCompiler, CompileRequest, Json, Server, ServerConfig, TieredCache};

#[test]
fn half_close_client_still_gets_response() {
    let engine = CachedCompiler::new(TieredCache::new(64, None));
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..Default::default()
        },
        engine,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle();
    let t = std::thread::spawn(move || server.run());

    // Occupy the single worker with real compiles.
    let spec = CorpusSpec {
        n: 4,
        ..Default::default()
    };
    let bodies = corpus_with(&spec);
    let mut busy = TcpStream::connect(addr).unwrap();
    for body in &bodies {
        let req = CompileRequest::from_parts(
            body,
            &MachineDesc::embedded(2, 4),
            &PipelineConfig::default(),
        );
        let line = Json::obj([
            ("op", Json::Str("compile".into())),
            ("request", req.to_json()),
        ])
        .render();
        busy.write_all(line.as_bytes()).unwrap();
        busy.write_all(b"\n").unwrap();
    }

    // Half-closing client: request lands in the queue behind the compiles.
    let mut hc = TcpStream::connect(addr).unwrap();
    hc.write_all(b"{\"op\":\"ping\"}\n").unwrap();
    hc.shutdown(Shutdown::Write).unwrap();
    hc.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut line = String::new();
    let got = BufReader::new(&hc).read_line(&mut line);
    handle.signal();
    t.join().unwrap();
    match got {
        Ok(n) if n > 0 => println!("half-close response: {line}"),
        other => panic!("half-close client got no response: {other:?} line={line:?}"),
    }
}
