//! Minimal JSON value type, parser and writer.
//!
//! The wire protocol is JSON-lines and the vendored `serde` is an offline
//! no-op stub, so the service carries its own small JSON implementation.
//! Objects use [`BTreeMap`] so rendering is deterministic — the same
//! requirement that drives the canonical request encodings — and numbers are
//! kept as `f64` with integral values rendered without a fractional part.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integral values render without a decimal point.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is sorted, so rendering is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member lookup, if this is an `Obj`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render as a single-line JSON document.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the envelopes never produce them, but degrade
        // to null rather than emitting an unparseable token.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:?}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<Json, JsonParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(fail(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn fail(offset: usize, message: impl Into<String>) -> JsonParseError {
    JsonParseError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(fail(*pos, format!("expected `{}`", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(fail(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Json,
) -> Result<Json, JsonParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(fail(*pos, format!("expected `{lit}`")))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| fail(start, format!("bad number `{text}`")))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(fail(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| fail(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| fail(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| fail(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(fail(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| fail(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(fail(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(fail(*pos, "expected `,` or `}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::obj([
            ("op", Json::Str("compile".into())),
            ("n", Json::Num(42.0)),
            ("ratio", Json::Num(2.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Str("a\"b\\c\nd".into())]),
            ),
        ]);
        let text = doc.render();
        let back = parse_json(&text).unwrap();
        assert_eq!(back, doc);
        // Deterministic: rendering is a fixed point.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn integral_numbers_have_no_fraction() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(-7.0).render(), "-7");
        assert_eq!(Json::Num(2.5).render(), "2.5");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse_json(" { \"a\" : [ 1 , \"x\\u0041\\t\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("xA\t")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("\"abc").is_err());
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("truue").is_err());
    }

    #[test]
    fn control_chars_escape_and_round_trip() {
        let s = Json::Str("\u{1}\u{1f}".into());
        let text = s.render();
        assert_eq!(text, "\"\\u0001\\u001f\"");
        assert_eq!(parse_json(&text).unwrap(), s);
    }
}
