//! Minimal JSON value type, parser and writer.
//!
//! The wire protocol is JSON-lines and the vendored `serde` is an offline
//! no-op stub, so the service carries its own small JSON implementation.
//! Objects use [`BTreeMap`] so rendering is deterministic — the same
//! requirement that drives the canonical request encodings — and numbers are
//! kept as `f64` with integral values rendered without a fractional part.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Map a wire field name to its static spelling, so object keys on the hot
/// path are stored and compared without per-key heap allocations.
fn intern_key(key: &str) -> Option<&'static str> {
    Some(match key {
        "ok" => "ok",
        "op" => "op",
        "served" => "served",
        "result" => "result",
        "results" => "results",
        "error" => "error",
        "stats" => "stats",
        "n" => "n",
        "requests" => "requests",
        "defaults" => "defaults",
        "timeout_ms" => "timeout_ms",
        "parallelism" => "parallelism",
        "request" => "request",
        "loop" => "loop",
        "machine" => "machine",
        "config" => "config",
        "key" => "key",
        "name" => "name",
        "n_ops" => "n_ops",
        "ideal_ii" => "ideal_ii",
        "clustered_ii" => "clustered_ii",
        "n_copies" => "n_copies",
        "n_hoisted" => "n_hoisted",
        "ideal_ipc" => "ideal_ipc",
        "clustered_ipc" => "clustered_ipc",
        "normalized" => "normalized",
        "spills" => "spills",
        "mve_unroll" => "mve_unroll",
        "peak_float_pressure" => "peak_float_pressure",
        "spill_rounds" => "spill_rounds",
        "sim_ok" => "sim_ok",
        "diagnostics" => "diagnostics",
        "code" => "code",
        "slug" => "slug",
        "severity" => "severity",
        "stage" => "stage",
        "message" => "message",
        "vreg" => "vreg",
        "cycle" => "cycle",
        "cluster" => "cluster",
        "mem_hits" => "mem_hits",
        "disk_hits" => "disk_hits",
        "hits" => "hits",
        "misses" => "misses",
        "compiles" => "compiles",
        "dedup_waits" => "dedup_waits",
        "timeouts" => "timeouts",
        "errors" => "errors",
        "batches" => "batches",
        "sync_writes" => "sync_writes",
        "evictions" => "evictions",
        "samples" => "samples",
        "p50_us" => "p50_us",
        "p90_us" => "p90_us",
        "p99_us" => "p99_us",
        "accepts" => "accepts",
        "conns_rejected" => "conns_rejected",
        "idle_closed" => "idle_closed",
        "oversize_closed" => "oversize_closed",
        "queue_samples" => "queue_samples",
        "queue_p50_us" => "queue_p50_us",
        "queue_p99_us" => "queue_p99_us",
        "latency_hist" => "latency_hist",
        "queue_hist" => "queue_hist",
        _ => return None,
    })
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integral values render without a decimal point.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is sorted, so rendering is deterministic. Keys
    /// are `Cow` so the fixed wire vocabulary (see [`intern_key`]) is
    /// stored allocation-free.
    Obj(BTreeMap<Cow<'static, str>, Json>),
    /// A pre-rendered JSON document, spliced verbatim into the output.
    /// Invariant: holds one valid single-line JSON value. Produced only by
    /// response assembly (the rendered-result cache), never by the parser;
    /// cheap to clone so cached renderings can be shared across responses.
    Raw(std::sync::Arc<str>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (Cow::Borrowed(k), v))
                .collect(),
        )
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member lookup, if this is an `Obj`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render as a single-line JSON document.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Raw(doc) => out.push_str(doc),
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the envelopes never produce them, but degrade
        // to null rather than emitting an unparseable token.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:?}");
    }
}

/// Escape `s` as a quoted JSON string into `out`. Crate-visible so hot
/// paths (batch entry encoding, response assembly) can render without
/// building a [`Json`] tree first.
pub(crate) fn write_str(s: &str, out: &mut String) {
    out.push('"');
    // Copy unescaped runs wholesale; every byte that needs escaping is
    // ASCII, so slicing at those positions stays on char boundaries.
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'"' && b != b'\\' && b >= 0x20 {
            continue;
        }
        out.push_str(&s[start..i]);
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\r' => out.push_str("\\r"),
            b'\t' => out.push_str("\\t"),
            _ => {
                let _ = write!(out, "\\u{:04x}", b);
            }
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

/// A JSON parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<Json, JsonParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(fail(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn fail(offset: usize, message: impl Into<String>) -> JsonParseError {
    JsonParseError {
        offset,
        message: message.into(),
    }
}

pub(crate) fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

pub(crate) fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(fail(*pos, format!("expected `{}`", b as char)))
    }
}

pub(crate) fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(fail(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Json,
) -> Result<Json, JsonParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(fail(*pos, format!("expected `{lit}`")))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let token = &bytes[start..*pos];
    // Small integers dominate the wire (counters, IIs, op counts); build
    // them directly instead of going through the general float parser.
    let (neg, digits) = match token.split_first() {
        Some((b'-', rest)) => (true, rest),
        _ => (false, token),
    };
    if !digits.is_empty() && digits.len() <= 15 && digits.iter().all(u8::is_ascii_digit) {
        let mut v: i64 = 0;
        for &d in digits {
            v = v * 10 + i64::from(d - b'0');
        }
        return Ok(Json::Num(if neg { -v as f64 } else { v as f64 }));
    }
    let text = std::str::from_utf8(token).expect("ascii slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| fail(start, format!("bad number `{text}`")))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    expect(bytes, pos, b'"')?;
    // Pre-scan to the closing quote: escape-free strings (object keys, most
    // payloads) copy out in one shot, and escaped ones get a right-sized
    // buffer instead of a realloc chain.
    let mut end = *pos;
    let mut escaped = false;
    while end < bytes.len() && bytes[end] != b'"' {
        if bytes[end] == b'\\' {
            escaped = true;
            end += 2;
        } else {
            end += 1;
        }
    }
    if !escaped && end < bytes.len() {
        let chunk =
            std::str::from_utf8(&bytes[*pos..end]).map_err(|_| fail(*pos, "invalid utf-8"))?;
        *pos = end + 1;
        return Ok(chunk.to_string());
    }
    let mut out = String::with_capacity(end.min(bytes.len()).saturating_sub(*pos));
    loop {
        match bytes.get(*pos) {
            None => return Err(fail(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| fail(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| fail(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| fail(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(fail(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole run up to the next quote or escape in
                // one go — validating per character re-scans the rest of
                // the input and turns big payloads quadratic.
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| fail(start, "invalid utf-8"))?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(fail(*pos, "expected `,` or `]`")),
        }
    }
}

/// Parse an object key: escape-free keys (all of our wire vocabulary) are
/// matched against the intern table straight from the input slice, with no
/// allocation at all for known names.
pub(crate) fn parse_key(
    bytes: &[u8],
    pos: &mut usize,
) -> Result<Cow<'static, str>, JsonParseError> {
    if bytes.get(*pos) == Some(&b'"') {
        let start = *pos + 1;
        let mut end = start;
        while end < bytes.len() && bytes[end] != b'"' && bytes[end] != b'\\' {
            end += 1;
        }
        if bytes.get(end) == Some(&b'"') {
            let s = std::str::from_utf8(&bytes[start..end])
                .map_err(|_| fail(start, "invalid utf-8"))?;
            *pos = end + 1;
            return Ok(match intern_key(s) {
                Some(k) => Cow::Borrowed(k),
                None => Cow::Owned(s.to_string()),
            });
        }
    }
    parse_str(bytes, pos).map(Cow::Owned)
}

/// Outcome of [`scan_value`] over a possibly-truncated buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Scan {
    /// A complete value spans `start..end` (exclusive); `end` is the first
    /// byte after it.
    Complete(usize),
    /// The buffer ends before the value does; read more and retry.
    Partial,
}

/// Find the extent of one JSON value starting at `start`, without parsing
/// it. This is what lets the reactor's connection state machine dispatch
/// each batch entry the moment its closing brace arrives, while the rest of
/// the batch is still on the wire. The scan is structural only (string- and
/// escape-aware bracket matching); the dispatched slice still goes through
/// the real parser, which reports mismatched brackets and other nonsense.
///
/// `Err` means the first non-whitespace byte cannot start a JSON value.
/// A bare scalar that runs to the end of the buffer is `Partial` — it might
/// continue — so scalars only complete at a delimiter, which the JSON-lines
/// framing guarantees eventually arrives.
pub(crate) fn scan_value(bytes: &[u8], start: usize) -> Result<Scan, JsonParseError> {
    let mut pos = start;
    skip_ws(bytes, &mut pos);
    let Some(&first) = bytes.get(pos) else {
        return Ok(Scan::Partial);
    };
    match first {
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut in_str = false;
            let mut escape = false;
            while pos < bytes.len() {
                let b = bytes[pos];
                if in_str {
                    if escape {
                        escape = false;
                    } else if b == b'\\' {
                        escape = true;
                    } else if b == b'"' {
                        in_str = false;
                    }
                } else {
                    match b {
                        b'"' => in_str = true,
                        b'{' | b'[' => depth += 1,
                        b'}' | b']' => {
                            depth -= 1;
                            if depth == 0 {
                                return Ok(Scan::Complete(pos + 1));
                            }
                        }
                        _ => {}
                    }
                }
                pos += 1;
            }
            Ok(Scan::Partial)
        }
        b'"' => {
            pos += 1;
            let mut escape = false;
            while pos < bytes.len() {
                let b = bytes[pos];
                if escape {
                    escape = false;
                } else if b == b'\\' {
                    escape = true;
                } else if b == b'"' {
                    return Ok(Scan::Complete(pos + 1));
                }
                pos += 1;
            }
            Ok(Scan::Partial)
        }
        b't' | b'f' | b'n' | b'-' | b'+' | b'.' | b'0'..=b'9' => {
            while pos < bytes.len()
                && !matches!(
                    bytes[pos],
                    b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r'
                )
            {
                pos += 1;
            }
            if pos == bytes.len() {
                Ok(Scan::Partial)
            } else {
                Ok(Scan::Complete(pos))
            }
        }
        _ => Err(fail(pos, "expected a JSON value")),
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_key(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(fail(*pos, "expected `,` or `}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::obj([
            ("op", Json::Str("compile".into())),
            ("n", Json::Num(42.0)),
            ("ratio", Json::Num(2.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Str("a\"b\\c\nd".into())]),
            ),
        ]);
        let text = doc.render();
        let back = parse_json(&text).unwrap();
        assert_eq!(back, doc);
        // Deterministic: rendering is a fixed point.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn integral_numbers_have_no_fraction() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(-7.0).render(), "-7");
        assert_eq!(Json::Num(2.5).render(), "2.5");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse_json(" { \"a\" : [ 1 , \"x\\u0041\\t\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("xA\t")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("\"abc").is_err());
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("truue").is_err());
    }

    #[test]
    fn scan_value_finds_extents_and_reports_partials() {
        let doc = br#"{"loop":"a[}\"]b","n":[1,2]} ,tail"#;
        assert_eq!(scan_value(doc, 0).unwrap(), Scan::Complete(28));
        // Every proper prefix of the object is partial, never an error.
        for cut in 1..28 {
            assert_eq!(
                scan_value(&doc[..cut], 0).unwrap(),
                Scan::Partial,
                "cut={cut}"
            );
        }
        // Scalars complete only at a delimiter.
        assert_eq!(scan_value(b"123", 0).unwrap(), Scan::Partial);
        assert_eq!(scan_value(b"123,", 0).unwrap(), Scan::Complete(3));
        assert_eq!(scan_value(b" true]", 0).unwrap(), Scan::Complete(5));
        assert_eq!(scan_value(b"\"ab\\\"c\"", 0).unwrap(), Scan::Complete(7));
        // A byte that cannot start a value is an error, not a stall.
        assert!(scan_value(b"}", 0).is_err());
        assert!(scan_value(b":1", 0).is_err());
        // Whitespace-only input is partial (the value hasn't started yet).
        assert_eq!(scan_value(b"  ", 0).unwrap(), Scan::Partial);
    }

    #[test]
    fn control_chars_escape_and_round_trip() {
        let s = Json::Str("\u{1}\u{1f}".into());
        let text = s.render();
        assert_eq!(text, "\"\\u0001\\u001f\"");
        assert_eq!(parse_json(&text).unwrap(), s);
    }
}
