//! Thread-pool TCP compile server.
//!
//! The wire protocol is JSON-lines over plain TCP: each request is one JSON
//! object on one line, each response one JSON object on one line, and a
//! connection carries any number of request/response pairs in order.
//!
//! | request                                             | response                                             |
//! |-----------------------------------------------------|------------------------------------------------------|
//! | `{"op":"ping"}`                                     | `{"ok":true,"op":"ping"}`                            |
//! | `{"op":"compile","request":{...},"timeout_ms":N}`   | `{"ok":true,"op":"compile","served":S,"result":{..}}`|
//! | `{"op":"stats"}`                                    | `{"ok":true,"op":"stats","stats":{...}}`             |
//! | `{"op":"shutdown"}`                                 | `{"ok":true,"op":"shutdown"}`, then the server stops |
//!
//! `served` is `"cache"`, `"compiled"` or `"deduped"`. Failures are
//! `{"ok":false,"error":"..."}` (the connection stays open). `timeout_ms`
//! is optional and clamps this request's wait, not the execution.
//!
//! The accept loop is nonblocking and polls a shutdown flag (set by the
//! `shutdown` op or, in the binary, by SIGTERM/SIGINT), so a drain is
//! graceful: the listener stops accepting, idle workers exit when the
//! connection channel closes, and busy workers notice the flag at their
//! next read-timeout tick.

use crate::compile::{CachedCompiler, CompileError};
use crate::envelope::CompileRequest;
use crate::json::{parse_json, Json};
use crate::stats::StatsSnapshot;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for [`Server::bind`].
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Per-request wait deadline applied when the client sends none.
    pub default_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            default_timeout: Duration::from_secs(30),
        }
    }
}

/// A bound compile server, ready to [`Server::run`].
pub struct Server {
    listener: TcpListener,
    engine: Arc<CachedCompiler>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listener and prepare the worker pool.
    pub fn bind(config: ServerConfig, engine: Arc<CachedCompiler>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            engine,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops the server when set (wire `shutdown` op, signal
    /// handlers, or tests).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serve until the shutdown flag is set, then drain the workers.
    pub fn run(self) {
        let (tx, rx) = channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let engine = Arc::clone(&self.engine);
                let shutdown = Arc::clone(&self.shutdown);
                let default_timeout = self.config.default_timeout;
                std::thread::spawn(move || worker_loop(&rx, &engine, &shutdown, default_timeout))
            })
            .collect();

        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    // Transient accept failure (e.g. aborted connection);
                    // keep serving.
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        drop(tx); // closes the channel: idle workers exit
        for w in workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    engine: &Arc<CachedCompiler>,
    shutdown: &Arc<AtomicBool>,
    default_timeout: Duration,
) {
    loop {
        let stream = {
            let guard = rx.lock().expect("connection queue poisoned");
            match guard.recv_timeout(Duration::from_millis(100)) {
                Ok(s) => s,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        serve_connection(stream, engine, shutdown, default_timeout);
    }
}

fn serve_connection(
    stream: TcpStream,
    engine: &Arc<CachedCompiler>,
    shutdown: &Arc<AtomicBool>,
    default_timeout: Duration,
) {
    // A finite read timeout lets the worker notice shutdown between
    // requests on an idle connection.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = handle_line(line.trim(), engine, shutdown, default_timeout);
                let stop = response.get("op").and_then(Json::as_str) == Some("shutdown");
                if writeln!(writer, "{}", response.render()).is_err() {
                    return;
                }
                let _ = writer.flush();
                if stop {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn error_response(message: impl Into<String>) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
}

/// Dispatch one protocol line. Public for the in-process tests; the wire
/// path goes through [`Server::run`].
pub fn handle_line(
    line: &str,
    engine: &Arc<CachedCompiler>,
    shutdown: &Arc<AtomicBool>,
    default_timeout: Duration,
) -> Json {
    let doc = match parse_json(line) {
        Ok(d) => d,
        Err(e) => {
            engine.stats().error();
            return error_response(e.to_string());
        }
    };
    match doc.get("op").and_then(Json::as_str) {
        Some("ping") => Json::obj([("ok", Json::Bool(true)), ("op", Json::Str("ping".into()))]),
        Some("stats") => Json::obj([
            ("ok", Json::Bool(true)),
            ("op", Json::Str("stats".into())),
            (
                "stats",
                stats_json(&engine.stats().snapshot(), engine.evictions()),
            ),
        ]),
        Some("shutdown") => {
            shutdown.store(true, Ordering::SeqCst);
            Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("shutdown".into())),
            ])
        }
        Some("compile") => {
            let req = match doc.get("request").map(CompileRequest::from_json) {
                Some(Ok(r)) => r,
                Some(Err(m)) => {
                    engine.stats().error();
                    return error_response(m);
                }
                None => {
                    engine.stats().error();
                    return error_response("compile op missing `request` object");
                }
            };
            let timeout = match doc.get("timeout_ms") {
                None => default_timeout,
                Some(v) => match v.as_f64() {
                    Some(ms) if ms >= 0.0 => Duration::from_millis(ms as u64),
                    _ => {
                        engine.stats().error();
                        return error_response("bad `timeout_ms`");
                    }
                },
            };
            let started = Instant::now();
            let outcome = engine.compile(&req, Some(timeout));
            engine
                .stats()
                .observe_latency_us(started.elapsed().as_micros() as u64);
            match outcome {
                Ok((result, source)) => Json::obj([
                    ("ok", Json::Bool(true)),
                    ("op", Json::Str("compile".into())),
                    ("served", Json::Str(source.label().into())),
                    ("result", result.to_json()),
                ]),
                Err(e) => {
                    if !matches!(e, CompileError::Timeout) {
                        engine.stats().error();
                    }
                    error_response(e.to_string())
                }
            }
        }
        _ => {
            engine.stats().error();
            error_response("missing or unknown `op`")
        }
    }
}

/// Render a stats snapshot for the `stats` endpoint.
pub fn stats_json(snap: &StatsSnapshot, evictions: u64) -> Json {
    Json::obj([
        ("mem_hits", Json::Num(snap.mem_hits as f64)),
        ("disk_hits", Json::Num(snap.disk_hits as f64)),
        ("hits", Json::Num(snap.hits() as f64)),
        ("misses", Json::Num(snap.misses as f64)),
        ("compiles", Json::Num(snap.compiles as f64)),
        ("dedup_waits", Json::Num(snap.dedup_waits as f64)),
        ("timeouts", Json::Num(snap.timeouts as f64)),
        ("errors", Json::Num(snap.errors as f64)),
        ("evictions", Json::Num(evictions as f64)),
        ("samples", Json::Num(snap.samples as f64)),
        ("p50_us", Json::Num(snap.p50_us as f64)),
        ("p90_us", Json::Num(snap.p90_us as f64)),
        ("p99_us", Json::Num(snap.p99_us as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::TieredCache;

    fn engine() -> Arc<CachedCompiler> {
        CachedCompiler::new(TieredCache::new(64, None))
    }

    fn dispatch(line: &str, engine: &Arc<CachedCompiler>) -> Json {
        let shutdown = Arc::new(AtomicBool::new(false));
        handle_line(line, engine, &shutdown, Duration::from_secs(10))
    }

    #[test]
    fn ping_and_unknown_ops() {
        let engine = engine();
        let pong = dispatch("{\"op\":\"ping\"}", &engine);
        assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
        let bad = dispatch("{\"op\":\"frobnicate\"}", &engine);
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
        let nojson = dispatch("not json", &engine);
        assert_eq!(nojson.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(engine.stats().snapshot().errors, 2);
    }

    #[test]
    fn shutdown_op_sets_flag() {
        let engine = engine();
        let shutdown = Arc::new(AtomicBool::new(false));
        let resp = handle_line(
            "{\"op\":\"shutdown\"}",
            &engine,
            &shutdown,
            Duration::from_secs(1),
        );
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert!(shutdown.load(Ordering::SeqCst));
    }

    #[test]
    fn stats_op_reports_counters() {
        let engine = engine();
        let resp = dispatch("{\"op\":\"stats\"}", &engine);
        let stats = resp.get("stats").expect("stats object");
        assert_eq!(stats.get("hits").and_then(Json::as_f64), Some(0.0));
        assert_eq!(stats.get("evictions").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn compile_op_requires_request_object() {
        let engine = engine();
        let resp = dispatch("{\"op\":\"compile\"}", &engine);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    }
}
