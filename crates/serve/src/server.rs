//! Thread-pool TCP compile server.
//!
//! The wire protocol is JSON-lines over plain TCP: each request is one JSON
//! object on one line, each response one JSON object on one line, and a
//! connection carries any number of request/response pairs in order.
//!
//! | request                                             | response                                             |
//! |-----------------------------------------------------|------------------------------------------------------|
//! | `{"op":"ping"}`                                     | `{"ok":true,"op":"ping"}`                            |
//! | `{"op":"compile","request":{...},"timeout_ms":N}`   | `{"ok":true,"op":"compile","served":S,"result":{..}}`|
//! | `{"op":"compile_batch","requests":[...],`           | `{"ok":true,"op":"compile_batch","n":N,`             |
//! | ` "timeout_ms":N,"parallelism":P}`                  | ` "results":[{"ok":true,"served":S,"result":{..}}    |
//! |                                                     |   \| {"ok":false,"error":"..."} , ...]}`             |
//! | `{"op":"stats"}`                                    | `{"ok":true,"op":"stats","stats":{...}}`             |
//! | `{"op":"shutdown"}`                                 | `{"ok":true,"op":"shutdown"}`, then the server stops |
//!
//! `served` is `"cache"`, `"compiled"` or `"deduped"`. Failures are
//! `{"ok":false,"error":"..."}` (the connection stays open). `timeout_ms`
//! is optional and clamps this request's wait, not the execution.
//!
//! A `compile_batch` carries any number of requests in one line and returns
//! one aggregated response with per-entry `served` labels in request order;
//! a malformed entry fails alone, never its batch-mates. Entries fan out
//! over a scoped worker set bounded by `min(parallelism, batch_parallelism
//! cap, n)`; identical keys inside one batch collapse through the engine's
//! in-flight table (first entry compiles, concurrent twins dedup, later
//! twins hit the cache).
//!
//! Canonical batch lines put `op` first and `requests` last (control fields
//! in between). A server that has no fan-out to offer (one core, or a
//! parallelism cap of 1) serves such lines by streaming: each entry is
//! parsed, served, and its response rendered before the next is read, so
//! only one entry is ever resident. Field order is otherwise free — any
//! shape the streaming pass can't take falls back to the tree handler —
//! but control fields after `requests` are rejected on the streaming path,
//! since the entries they would govern have already been served.
//!
//! Two serving cores share this protocol (selected by
//! [`ServerConfig::core`]). The default [`ServerCore::Reactor`] multiplexes
//! every connection over an epoll/poll readiness loop on one thread and
//! runs compiles on a small worker pool (see [`crate::reactor`]), so
//! thousands of mostly-idle connections cost file descriptors rather than
//! threads. [`ServerCore::ThreadPool`] is the original
//! thread-per-connection core, kept as a benchmark baseline; its accept
//! loop blocks in the poller (no sleeps) and is interrupted by the same
//! [`ShutdownHandle`] wake. Either way a drain is graceful: the listener
//! stops accepting, in-flight requests finish and flush, and the engine's
//! write-behind queue is flushed before `run` returns.

use crate::compile::{CachedCompiler, CompileError};
use crate::envelope::CompileRequest;
use crate::json::{parse_json, Json};
use crate::reactor;
use crate::stats::StatsSnapshot;
use crate::sys::{Interest, Poller, Waker};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vliw_governor::{Governor, Lane, PoolError, ShedPolicy};

/// Stats fields that are additive across peers — the sharded client's
/// `stats --aggregate` sums exactly these (latency percentiles are not
/// additive and are merged by max instead).
pub const AGGREGATE_SUM_FIELDS: &[&str] = &[
    "mem_hits",
    "disk_hits",
    "canon_hits",
    "hits",
    "misses",
    "compiles",
    "dedup_waits",
    "timeouts",
    "joint_truncated",
    "errors",
    "batches",
    "sync_writes",
    "evictions",
    "samples",
    "accepts",
    "conns_rejected",
    "idle_closed",
    "oversize_closed",
    "queue_samples",
    "sheds",
    "rejects",
    "queue_depth_interactive",
    "queue_depth_heavy",
    "inflight_grants",
    "pool_bytes_used",
    "pool_bytes_limit",
];

/// Selects the connection-serving engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerCore {
    /// Event-driven readiness loop (epoll, or `poll(2)` as fallback): one
    /// reactor thread multiplexes every connection and `workers` pool
    /// threads run the compiles. Idle connections cost a file descriptor,
    /// not a thread.
    #[default]
    Reactor,
    /// The original blocking core: a worker thread owns each connection
    /// for its lifetime. Kept as a benchmark baseline and portability
    /// hedge.
    ThreadPool,
}

/// Tunables for [`Server::bind`].
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Compile worker threads (reactor core) / connection worker threads
    /// (thread-pool core).
    pub workers: usize,
    /// Per-request wait deadline applied when the client sends none.
    pub default_timeout: Duration,
    /// Upper bound on per-batch fan-out; a client's `parallelism` is
    /// clamped to this.
    pub batch_parallelism: usize,
    /// Which serving core drives connections.
    pub core: ServerCore,
    /// Reactor core: close connections idle longer than this with a typed
    /// error (`None` disables the sweep). Connections waiting on their own
    /// compiles are never swept.
    pub idle_timeout: Option<Duration>,
    /// Reactor core: longest accepted request line in bytes; beyond it the
    /// connection gets a typed error and is closed (slowloris guard).
    pub max_line_bytes: usize,
    /// Reactor core: concurrent-connection cap; excess accepts receive a
    /// typed error and are closed immediately.
    pub max_conns: usize,
    /// Reactor core: use the portable `poll(2)` backend even where epoll
    /// is available (tests exercise both).
    pub force_poll: bool,
    /// Reactor core: global solver-memory budget in bytes (the governor's
    /// resource pool). Heavy solves charge their working sets against it;
    /// exhaustion truncates solves and sheds admissions instead of growing
    /// the process.
    pub mem_budget: u64,
    /// Reactor core: worker threads allowed to run heavy-lane work
    /// concurrently. `0` means auto (half the workers, at least one). The
    /// remaining workers always have interactive work to themselves.
    pub heavy_lane_workers: usize,
    /// Reactor core: when to shed heavy requests at admission.
    pub shed_policy: ShedPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            default_timeout: Duration::from_secs(30),
            batch_parallelism: 8,
            core: ServerCore::Reactor,
            idle_timeout: None,
            max_line_bytes: 8 << 20,
            max_conns: 4096,
            force_poll: false,
            mem_budget: 256 << 20,
            heavy_lane_workers: 0,
            shed_policy: ShedPolicy::Adaptive,
        }
    }
}

/// Per-request knobs threaded from [`ServerConfig`] into the dispatcher.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Deadline applied when the client sends no `timeout_ms`.
    pub default_timeout: Duration,
    /// Cap on per-batch fan-out.
    pub batch_parallelism: usize,
}

/// What the serving core knows about a request by the time a worker runs
/// it: how long it queued (subtracted from its deadline so the joint
/// solver's clamped budget reflects time actually remaining), which lane
/// admitted it, and the governor that grants heavy work its resource
/// budget. [`RequestCtx::default`] is the ungoverned path (thread-pool
/// core, in-process tests): zero wait, interactive, no governor.
#[derive(Clone, Default)]
pub struct RequestCtx {
    /// Measured time between enqueue and a worker picking the job up.
    pub queue_wait: Duration,
    /// Lane the admission classifier routed this request to.
    pub lane: Option<Lane>,
    /// The server's governor, when the serving core runs one.
    pub governor: Option<Arc<Governor>>,
}

/// A bound compile server, ready to [`Server::run`].
pub struct Server {
    listener: TcpListener,
    engine: Arc<CachedCompiler>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Waker>,
}

/// A cloneable handle that stops a running [`Server`].
///
/// [`ShutdownHandle::signal`] sets the shutdown flag *and* wakes the
/// serving loop through a socketpair, so a sleeping server reacts
/// immediately — nothing polls the flag. The wake is one atomic store plus
/// one `write(2)` on a pre-opened fd, so calling it from a signal handler
/// is safe.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    waker: Arc<Waker>,
}

impl ShutdownHandle {
    /// Request shutdown and wake the serving loop.
    pub fn signal(&self) {
        self.flag.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// Whether shutdown has been requested.
    pub fn is_signalled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

impl Server {
    /// Bind the listener and prepare the serving core.
    pub fn bind(config: ServerConfig, engine: Arc<CachedCompiler>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            engine,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            waker: Arc::new(Waker::new()?),
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops the server (wire `shutdown` op uses the same
    /// flag; this handle serves signal handlers and tests).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            waker: Arc::clone(&self.waker),
        }
    }

    /// Serve until shutdown is signalled, then drain in-flight work and
    /// flush the engine's write-behind queue.
    pub fn run(self) {
        let options = ServeOptions {
            default_timeout: self.config.default_timeout,
            batch_parallelism: self.config.batch_parallelism.max(1),
        };
        match self.config.core {
            ServerCore::Reactor => {
                let workers = self.config.workers.max(1);
                let heavy_workers = match self.config.heavy_lane_workers {
                    0 => (workers / 2).max(1),
                    n => n.min(workers),
                };
                let governor = Arc::new(Governor::new(
                    self.config.mem_budget.max(1),
                    heavy_workers,
                    self.config.shed_policy,
                ));
                let config = reactor::ReactorConfig {
                    opts: options,
                    workers,
                    idle_timeout: self.config.idle_timeout,
                    max_line_bytes: self.config.max_line_bytes.max(1024),
                    max_conns: self.config.max_conns.max(1),
                    force_poll: self.config.force_poll,
                    governor,
                };
                if let Err(e) = reactor::run(
                    self.listener,
                    self.engine,
                    self.shutdown,
                    self.waker,
                    config,
                ) {
                    eprintln!("vliw-serve: reactor core failed: {e}");
                }
            }
            ServerCore::ThreadPool => self.run_thread_pool(options),
        }
    }

    fn run_thread_pool(self, options: ServeOptions) {
        let (tx, rx) = channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let engine = Arc::clone(&self.engine);
                let shutdown = Arc::clone(&self.shutdown);
                std::thread::spawn(move || worker_loop(&rx, &engine, &shutdown, options))
            })
            .collect();

        // Readiness-driven accept: block in the poller until the listener
        // is ready or a ShutdownHandle wakes us. The finite tick exists
        // only to observe a shutdown flag set without a wake (the wire
        // `shutdown` op lands on a worker thread, which has no waker).
        let mut poller = match Poller::new() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("vliw-serve: poller init failed: {e}");
                return;
            }
        };
        let _ = poller.register(self.listener.as_raw_fd(), 0, Interest::READ);
        let _ = poller.register(self.waker.fd(), 1, Interest::READ);
        let mut events = Vec::new();
        'accept: while !self.shutdown.load(Ordering::SeqCst) {
            if poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .is_err()
            {
                break;
            }
            if events.iter().any(|ev| ev.token == 1) {
                self.waker.drain();
            }
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        self.engine.stats().accept();
                        if tx.send(stream).is_err() {
                            break 'accept;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    // Transient accept failure (e.g. aborted connection);
                    // keep serving.
                    Err(_) => break,
                }
            }
        }
        drop(tx); // closes the channel: idle workers exit
        for w in workers {
            let _ = w.join();
        }
        // Flush-on-shutdown: every compile whose response was sent is on
        // disk before the listener goes away.
        self.engine.flush();
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    engine: &Arc<CachedCompiler>,
    shutdown: &Arc<AtomicBool>,
    options: ServeOptions,
) {
    loop {
        let stream = {
            let guard = rx.lock().expect("connection queue poisoned");
            match guard.recv_timeout(Duration::from_millis(100)) {
                Ok(s) => s,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        serve_connection(stream, engine, shutdown, options);
    }
}

fn serve_connection(
    stream: TcpStream,
    engine: &Arc<CachedCompiler>,
    shutdown: &Arc<AtomicBool>,
    options: ServeOptions,
) {
    // A finite read timeout lets the worker notice shutdown between
    // requests on an idle connection. Nagle off: responses are single
    // lines that must turn around immediately.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = handle_line(line.trim(), engine, shutdown, options);
                let stop = response.get("op").and_then(Json::as_str) == Some("shutdown");
                if writeln!(writer, "{}", response.render()).is_err() {
                    return;
                }
                let _ = writer.flush();
                if stop {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

pub(crate) fn error_response(message: impl Into<String>) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
}

/// Typed shed response: `error_kind` distinguishes "correct request,
/// wrong moment" from malformed input, and `retry_after_ms` tells the
/// client how long to back off (vliw-client honors it).
pub(crate) fn shed_response(retry_after_ms: u64) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::Str(format!(
                "server overloaded, retry after {retry_after_ms} ms"
            )),
        ),
        ("error_kind", Json::Str("shed".into())),
        ("retry_after_ms", Json::Num(retry_after_ms as f64)),
    ])
}

/// Typed rejection: the request can never fit the server's resource
/// limits, so retrying is pointless.
pub(crate) fn reject_response() -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::Str("request exceeds server resource limits".into()),
        ),
        ("error_kind", Json::Str("rejected".into())),
    ])
}

/// Parse the optional `timeout_ms` field, falling back to the default.
fn request_timeout(doc: &Json, default_timeout: Duration) -> Result<Duration, Json> {
    match doc.get("timeout_ms") {
        None => Ok(default_timeout),
        Some(v) => match v.as_f64() {
            Some(ms) if ms >= 0.0 => Ok(Duration::from_millis(ms as u64)),
            _ => Err(error_response("bad `timeout_ms`")),
        },
    }
}

/// Splice the hot-path success response by hand around the engine's
/// pre-rendered result JSON: no tree build, no re-escape. Every spliced
/// piece is fixed text or already valid JSON.
fn render_ok(op: &str, rendered: &str, served: &str) -> Json {
    let mut doc = String::with_capacity(rendered.len() + 64);
    doc.push_str("{\"ok\":true,\"op\":\"");
    doc.push_str(op);
    doc.push_str("\",\"result\":");
    doc.push_str(rendered);
    doc.push_str(",\"served\":\"");
    doc.push_str(served);
    doc.push_str("\"}");
    Json::Raw(doc.into())
}

/// Whether `req` will run a budgeted (exact/joint) solver on a cache
/// miss. Syntactic, matching the lane classifier's token test — the lane
/// alone is not enough: small or warm-demoted exact/joint shapes are
/// classified interactive but still solve on a miss, and they must not
/// escape the pool's accounting.
fn runs_governed_solver(req: &CompileRequest) -> bool {
    req.config_text.contains("partitioner exact") || req.config_text.contains("partitioner joint")
}

/// [`compile_entry`] with the serving core's request context applied:
///
/// * the measured queue wait is subtracted from the client deadline, so
///   the joint solver's clamped budget is ¾ of the time *remaining* —
///   not ¾ of a deadline that queueing already consumed;
/// * heavy-lane requests — and interactive exact/joint requests, whose
///   solvers are just as unbounded in principle — first probe every cache
///   tier (a warm hit of a hard instance needs no grant), then open a
///   [`TrackedBudget`] from the governor's pool: heavies against the
///   heavy share, interactive compiles against the full pool including
///   the reserve kept for them. A pool refusal becomes a typed
///   shed/reject response instead of an untracked solve, so
///   `--mem-budget` caps solver memory on every lane.
pub(crate) fn compile_entry_ctx(
    engine: &Arc<CachedCompiler>,
    req: &CompileRequest,
    timeout: Duration,
    op: &str,
    ctx: &RequestCtx,
) -> Json {
    let started = Instant::now();
    let effective = timeout.saturating_sub(ctx.queue_wait);
    let budget = match (&ctx.governor, ctx.lane) {
        (Some(gov), Some(lane)) if lane == Lane::Heavy || runs_governed_solver(req) => {
            if let Some(rendered) = engine.probe_rendered(req) {
                engine
                    .stats()
                    .observe_latency_us(started.elapsed().as_micros() as u64);
                return render_ok(op, &rendered, "cache");
            }
            let deadline_ms = (effective.as_millis() as u64).max(1);
            let opened = match lane {
                Lane::Heavy => gov.open_budget(deadline_ms),
                Lane::Interactive => gov.open_budget_interactive(deadline_ms),
            };
            match opened {
                Ok(b) => Some(b),
                Err(PoolError::Shed { retry_after_ms }) => {
                    return shed_response(retry_after_ms);
                }
                Err(PoolError::Rejected) => return reject_response(),
            }
        }
        _ => None,
    };
    let outcome = engine.serve_rendered_governed(req, Some(effective), budget);
    engine
        .stats()
        .observe_latency_us(started.elapsed().as_micros() as u64);
    match outcome {
        Ok((rendered, source)) => render_ok(op, &rendered, source.label()),
        Err(CompileError::Shed { retry_after_ms }) => shed_response(retry_after_ms),
        Err(CompileError::Rejected) => reject_response(),
        Err(e) => {
            if !matches!(e, CompileError::Timeout) {
                engine.stats().error();
            }
            error_response(e.to_string())
        }
    }
}

/// Serve a `compile_batch`: fan the entries over up to `cap` scoped worker
/// threads pulling from a shared index. Per-entry failures (parse or
/// compile) land in that entry's slot; the batch itself always succeeds.
fn handle_batch(
    doc: Json,
    engine: &Arc<CachedCompiler>,
    options: ServeOptions,
    ctx: &RequestCtx,
) -> Json {
    if doc.get("requests").and_then(Json::as_arr).is_none() {
        engine.stats().error();
        return error_response("compile_batch op missing `requests` array");
    }
    let timeout = match request_timeout(&doc, options.default_timeout) {
        Ok(t) => t,
        Err(resp) => {
            engine.stats().error();
            return resp;
        }
    };
    let requested_cap = match doc.get("parallelism") {
        None => options.batch_parallelism,
        Some(v) => match v.as_f64() {
            Some(p) if p >= 1.0 => p as usize,
            _ => {
                engine.stats().error();
                return error_response("bad `parallelism`");
            }
        },
    };
    engine.stats().batch();
    // Dismantle the owned document so defaults and entries move rather
    // than clone; the `requests` array was validated above.
    let mut top = match doc {
        Json::Obj(m) => m,
        _ => unreachable!("batch doc is an object"),
    };
    let defaults = top.remove("defaults");
    let default_machine = defaults
        .as_ref()
        .and_then(|d| d.get("machine"))
        .and_then(Json::as_str);
    let default_config = defaults
        .as_ref()
        .and_then(|d| d.get("config"))
        .and_then(Json::as_str);
    let entries = match top.remove("requests") {
        Some(Json::Arr(v)) => v,
        _ => unreachable!("batch requests validated above"),
    };
    let jobs: Vec<Result<CompileRequest, String>> = entries
        .into_iter()
        .map(|e| CompileRequest::take_from_json(e, default_machine, default_config))
        .collect();
    let n = jobs.len();
    // Fan-out beyond the machine's cores only adds contention; on a
    // single-core host the whole batch runs inline.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let cap = requested_cap
        .min(options.batch_parallelism)
        .min(cores)
        .min(n.max(1));

    let run_one = |job: &Result<CompileRequest, String>| -> Json {
        match job {
            Ok(req) => compile_entry_ctx(engine, req, timeout, "compile", ctx),
            Err(m) => {
                engine.stats().error();
                error_response(m.clone())
            }
        }
    };

    let results: Vec<Json> = if cap <= 1 {
        jobs.iter().map(run_one).collect()
    } else {
        let slots: Vec<Mutex<Json>> = (0..n).map(|_| Mutex::new(Json::Null)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..cap {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    *slots[i].lock().expect("batch slot poisoned") = run_one(&jobs[i]);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("batch slot poisoned"))
            .collect()
    };

    Json::obj([
        ("ok", Json::Bool(true)),
        ("op", Json::Str("compile_batch".into())),
        ("n", Json::Num(n as f64)),
        ("results", Json::Arr(results)),
    ])
}

/// Serve a canonical `compile_batch` line without materialising the full
/// request tree. The canonical encoder writes `op` first and `requests`
/// last, so the control fields stream in before the entries and each entry
/// can be parsed, served, and its response rendered with only one entry
/// resident at a time — on a 400-entry grid that keeps the working set
/// cache-hot instead of walking a multi-hundred-KB document three times.
///
/// Returns `None` (always before any entry has been served) when the line
/// doesn't match the canonical shape; the caller falls back to the
/// tree-based [`handle_batch`]. The streaming path only engages when the
/// effective fan-out is one worker: with real parallelism available,
/// materialise-and-fan-out wins.
fn handle_batch_streaming(
    line: &str,
    engine: &Arc<CachedCompiler>,
    options: ServeOptions,
    ctx: &RequestCtx,
) -> Option<Json> {
    use crate::json as js;
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    js::skip_ws(bytes, &mut pos);
    js::expect(bytes, &mut pos, b'{').ok()?;
    let mut timeout = options.default_timeout;
    let mut requested_cap = options.batch_parallelism;
    let mut defaults: Option<Json> = None;
    let mut saw_op = false;
    loop {
        js::skip_ws(bytes, &mut pos);
        let key = js::parse_key(bytes, &mut pos).ok()?;
        js::skip_ws(bytes, &mut pos);
        js::expect(bytes, &mut pos, b':').ok()?;
        if key.as_ref() == "requests" {
            break;
        }
        let value = js::parse_value(bytes, &mut pos).ok()?;
        match key.as_ref() {
            "op" => {
                if value.as_str() != Some("compile_batch") {
                    return None;
                }
                saw_op = true;
            }
            "timeout_ms" => match value.as_f64() {
                Some(ms) if ms >= 0.0 => timeout = Duration::from_millis(ms as u64),
                _ => {
                    engine.stats().error();
                    return Some(error_response("bad `timeout_ms`"));
                }
            },
            "parallelism" => match value.as_f64() {
                Some(p) if p >= 1.0 => requested_cap = p as usize,
                _ => {
                    engine.stats().error();
                    return Some(error_response("bad `parallelism`"));
                }
            },
            "defaults" => defaults = Some(value),
            // Unrecognised control field: let the tree handler decide.
            _ => return None,
        }
        js::skip_ws(bytes, &mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            // Object ended without `requests`; the tree handler reports it.
            _ => return None,
        }
    }
    if !saw_op {
        return None;
    }
    // Streaming trades fan-out for locality, which only pays off when
    // there is no fan-out to be had.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if requested_cap.min(options.batch_parallelism).min(cores) > 1 {
        return None;
    }
    js::skip_ws(bytes, &mut pos);
    if bytes.get(pos) != Some(&b'[') {
        engine.stats().error();
        return Some(error_response("compile_batch op missing `requests` array"));
    }
    pos += 1;
    let default_machine = defaults
        .as_ref()
        .and_then(|d| d.get("machine"))
        .and_then(Json::as_str);
    let default_config = defaults
        .as_ref()
        .and_then(|d| d.get("config"))
        .and_then(Json::as_str);
    engine.stats().batch();
    let mut results = String::with_capacity(1024);
    let mut n = 0usize;
    js::skip_ws(bytes, &mut pos);
    if bytes.get(pos) == Some(&b']') {
        pos += 1;
    } else {
        loop {
            let entry = match js::parse_value(bytes, &mut pos) {
                Ok(e) => e,
                Err(e) => {
                    engine.stats().error();
                    return Some(error_response(e.to_string()));
                }
            };
            if n > 0 {
                results.push(',');
            }
            let resp = match CompileRequest::take_from_json(entry, default_machine, default_config)
            {
                Ok(req) => compile_entry_ctx(engine, &req, timeout, "compile", ctx),
                Err(m) => {
                    engine.stats().error();
                    error_response(m)
                }
            };
            match resp {
                Json::Raw(doc) => results.push_str(&doc),
                other => results.push_str(&other.render()),
            }
            n += 1;
            js::skip_ws(bytes, &mut pos);
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b']') => {
                    pos += 1;
                    break;
                }
                _ => {
                    engine.stats().error();
                    return Some(error_response(format!(
                        "offset {pos}: expected `,` or `]` in `requests`"
                    )));
                }
            }
        }
    }
    js::skip_ws(bytes, &mut pos);
    if bytes.get(pos) != Some(&b'}') {
        // Entries are already served, so control fields can no longer
        // apply; reject rather than silently mis-serve.
        engine.stats().error();
        return Some(error_response(
            "compile_batch fields after `requests` are not supported",
        ));
    }
    pos += 1;
    js::skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        engine.stats().error();
        return Some(error_response(format!(
            "offset {pos}: trailing characters after document"
        )));
    }
    // Assemble the aggregate response in the same key order the tree
    // handler's sorted-map rendering produces.
    let mut out = String::with_capacity(results.len() + 64);
    out.push_str("{\"n\":");
    out.push_str(&n.to_string());
    out.push_str(",\"ok\":true,\"op\":\"compile_batch\",\"results\":[");
    out.push_str(&results);
    out.push_str("]}");
    Some(Json::Raw(out.into()))
}

/// Dispatch one protocol line. Public for the in-process tests; the wire
/// path goes through [`Server::run`].
pub fn handle_line(
    line: &str,
    engine: &Arc<CachedCompiler>,
    shutdown: &Arc<AtomicBool>,
    options: ServeOptions,
) -> Json {
    handle_line_ctx(line, engine, shutdown, options, &RequestCtx::default())
}

/// [`handle_line`] with the serving core's request context (queue wait,
/// lane, governor) threaded into the compile paths.
pub fn handle_line_ctx(
    line: &str,
    engine: &Arc<CachedCompiler>,
    shutdown: &Arc<AtomicBool>,
    options: ServeOptions,
    ctx: &RequestCtx,
) -> Json {
    // Canonical batch lines (op first, requests last) stream straight off
    // the wire bytes; anything else takes the general tree path below.
    if line.starts_with("{\"op\":\"compile_batch\"") {
        if let Some(resp) = handle_batch_streaming(line, engine, options, ctx) {
            return resp;
        }
    }
    let doc = match parse_json(line) {
        Ok(d) => d,
        Err(e) => {
            engine.stats().error();
            return error_response(e.to_string());
        }
    };
    // The batch handler consumes the document (entries move out of it), so
    // it dispatches before the borrowing match below.
    if doc.get("op").and_then(Json::as_str) == Some("compile_batch") {
        return handle_batch(doc, engine, options, ctx);
    }
    match doc.get("op").and_then(Json::as_str) {
        Some("ping") => Json::obj([("ok", Json::Bool(true)), ("op", Json::Str("ping".into()))]),
        Some("stats") => Json::obj([
            ("ok", Json::Bool(true)),
            ("op", Json::Str("stats".into())),
            (
                "stats",
                stats_json_governed(
                    &engine.stats().snapshot(),
                    engine.evictions(),
                    ctx.governor.as_deref(),
                ),
            ),
        ]),
        Some("shutdown") => {
            shutdown.store(true, Ordering::SeqCst);
            Json::obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("shutdown".into())),
            ])
        }
        Some("compile") => {
            let req = match doc.get("request").map(CompileRequest::from_json) {
                Some(Ok(r)) => r,
                Some(Err(m)) => {
                    engine.stats().error();
                    return error_response(m);
                }
                None => {
                    engine.stats().error();
                    return error_response("compile op missing `request` object");
                }
            };
            let timeout = match request_timeout(&doc, options.default_timeout) {
                Ok(t) => t,
                Err(resp) => {
                    engine.stats().error();
                    return resp;
                }
            };
            compile_entry_ctx(engine, &req, timeout, "compile", ctx)
        }
        _ => {
            engine.stats().error();
            error_response("missing or unknown `op`")
        }
    }
}

/// Render a stats snapshot for the `stats` endpoint.
pub fn stats_json(snap: &StatsSnapshot, evictions: u64) -> Json {
    stats_json_governed(snap, evictions, None)
}

/// [`stats_json`] including the governor's live gauges. The fields are
/// always present (zero without a governor) so the sharded aggregator's
/// summed keys stay consistent across peers and cores.
pub fn stats_json_governed(
    snap: &StatsSnapshot,
    evictions: u64,
    governor: Option<&Governor>,
) -> Json {
    let relaxed = std::sync::atomic::Ordering::Relaxed;
    let (depth_i, depth_h, inflight, sheds, rejects, pool_used, pool_limit) = match governor {
        Some(g) => {
            let ga = g.gauges();
            (
                ga.queue_depth_interactive.load(relaxed),
                ga.queue_depth_heavy.load(relaxed),
                ga.inflight_grants.load(relaxed),
                ga.sheds.load(relaxed),
                ga.rejects.load(relaxed),
                g.pool().used(),
                g.pool().limit(),
            )
        }
        None => (0, 0, 0, 0, 0, 0, 0),
    };
    let mut fields = base_stats_fields(snap, evictions);
    fields.extend([
        ("queue_depth_interactive", Json::Num(depth_i as f64)),
        ("queue_depth_heavy", Json::Num(depth_h as f64)),
        ("inflight_grants", Json::Num(inflight as f64)),
        ("sheds", Json::Num(sheds as f64)),
        ("rejects", Json::Num(rejects as f64)),
        ("pool_bytes_used", Json::Num(pool_used as f64)),
        ("pool_bytes_limit", Json::Num(pool_limit as f64)),
    ]);
    Json::obj(fields)
}

fn base_stats_fields(snap: &StatsSnapshot, evictions: u64) -> Vec<(&'static str, Json)> {
    Vec::from([
        ("mem_hits", Json::Num(snap.mem_hits as f64)),
        ("disk_hits", Json::Num(snap.disk_hits as f64)),
        ("canon_hits", Json::Num(snap.canon_hits as f64)),
        ("hits", Json::Num(snap.hits() as f64)),
        ("misses", Json::Num(snap.misses as f64)),
        ("compiles", Json::Num(snap.compiles as f64)),
        ("dedup_waits", Json::Num(snap.dedup_waits as f64)),
        ("timeouts", Json::Num(snap.timeouts as f64)),
        ("joint_truncated", Json::Num(snap.joint_truncated as f64)),
        ("errors", Json::Num(snap.errors as f64)),
        ("batches", Json::Num(snap.batches as f64)),
        ("sync_writes", Json::Num(snap.sync_writes as f64)),
        ("evictions", Json::Num(evictions as f64)),
        ("samples", Json::Num(snap.samples as f64)),
        ("p50_us", Json::Num(snap.p50_us as f64)),
        ("p90_us", Json::Num(snap.p90_us as f64)),
        ("p99_us", Json::Num(snap.p99_us as f64)),
        ("accepts", Json::Num(snap.accepts as f64)),
        ("conns_rejected", Json::Num(snap.conns_rejected as f64)),
        ("idle_closed", Json::Num(snap.idle_closed as f64)),
        ("oversize_closed", Json::Num(snap.oversize_closed as f64)),
        ("queue_samples", Json::Num(snap.queue_samples as f64)),
        ("queue_p50_us", Json::Num(snap.queue_p50_us as f64)),
        ("queue_p99_us", Json::Num(snap.queue_p99_us as f64)),
        ("latency_hist", hist_json(&snap.latency_hist)),
        ("queue_hist", hist_json(&snap.queue_hist)),
    ])
}

/// Whether a rendered response document is a typed shed (the serving core
/// counts these per lane and never sheds interactive work).
pub(crate) fn doc_is_shed(doc: &str) -> bool {
    doc.contains("\"error_kind\":\"shed\"")
}

/// Render a sparse histogram as `[[bucket, count], ...]` for the stats
/// wire; the sharded aggregator sums these across peers and recomputes
/// honest fleet-wide percentiles.
fn hist_json(sparse: &[(u32, u64)]) -> Json {
    Json::Arr(
        sparse
            .iter()
            .map(|&(i, c)| Json::Arr(vec![Json::Num(i as f64), Json::Num(c as f64)]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::TieredCache;

    fn engine() -> Arc<CachedCompiler> {
        CachedCompiler::new(TieredCache::new(64, None))
    }

    fn test_options() -> ServeOptions {
        ServeOptions {
            default_timeout: Duration::from_secs(10),
            batch_parallelism: 4,
        }
    }

    fn dispatch(line: &str, engine: &Arc<CachedCompiler>) -> Json {
        let shutdown = Arc::new(AtomicBool::new(false));
        handle_line(line, engine, &shutdown, test_options())
    }

    #[test]
    fn ping_and_unknown_ops() {
        let engine = engine();
        let pong = dispatch("{\"op\":\"ping\"}", &engine);
        assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
        let bad = dispatch("{\"op\":\"frobnicate\"}", &engine);
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
        let nojson = dispatch("not json", &engine);
        assert_eq!(nojson.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(engine.stats().snapshot().errors, 2);
    }

    #[test]
    fn shutdown_op_sets_flag() {
        let engine = engine();
        let shutdown = Arc::new(AtomicBool::new(false));
        let resp = handle_line("{\"op\":\"shutdown\"}", &engine, &shutdown, test_options());
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert!(shutdown.load(Ordering::SeqCst));
    }

    #[test]
    fn stats_op_reports_counters() {
        let engine = engine();
        let resp = dispatch("{\"op\":\"stats\"}", &engine);
        let stats = resp.get("stats").expect("stats object");
        assert_eq!(stats.get("hits").and_then(Json::as_f64), Some(0.0));
        assert_eq!(stats.get("evictions").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn compile_op_requires_request_object() {
        let engine = engine();
        let resp = dispatch("{\"op\":\"compile\"}", &engine);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    }
}
