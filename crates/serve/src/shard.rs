//! Multi-node sharded client: consistent-hash routing over a peer list.
//!
//! [`ShardedClient`] holds one lazy connection per peer and routes every
//! compile by the content-addressed cache key through a [`HashRing`], so
//! identical requests always land on the same peer and each peer's cache
//! accumulates a disjoint slice of the corpus. Requests are canonicalised
//! client-side (the client links the same parsers as the server), so the
//! routed key is exactly the key the server will compute.
//!
//! On a transport failure ([`ClientError::is_transport`]) the request is
//! retried on the next distinct ring successor and the `failovers` counter
//! advances; server-reported errors are never retried. Batches are split
//! into one `compile_batch` sub-request per live peer and reassembled in
//! request order; a peer that dies mid-batch gets its slice rerouted the
//! same way.

use crate::client::{Client, ClientError, ServedResult};
use crate::envelope::CompileRequest;
use crate::hist;
use crate::json::Json;
use crate::ring::HashRing;
use crate::server::AGGREGATE_SUM_FIELDS;
use std::collections::BTreeMap;

/// One peer's `stats` snapshot (or the failure fetching it), tagged with
/// its address.
pub type PeerStats = (String, Result<Json, ClientError>);

/// Decode a wire histogram (`[[bucket, count], ...]`) into sparse pairs;
/// anything malformed decodes as empty rather than failing the aggregate.
fn sparse_from_json(v: Option<&Json>) -> Vec<(u32, u64)> {
    v.and_then(Json::as_arr)
        .map(|pairs| {
            pairs
                .iter()
                .filter_map(|pair| {
                    let pair = pair.as_arr()?;
                    let idx = pair.first()?.as_f64()? as u32;
                    let count = pair.get(1)?.as_f64()? as u64;
                    Some((idx, count))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// A sharded view over several `vliw-served` peers.
pub struct ShardedClient {
    ring: HashRing,
    conns: Vec<Option<Client>>,
    failovers: u64,
}

impl ShardedClient {
    /// A client over `peers` (host:port strings). Connections are opened
    /// lazily on first use and reopened after failures.
    pub fn new<I, S>(peers: I) -> ShardedClient
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let ring = HashRing::new(peers);
        let n = ring.peers().len();
        ShardedClient {
            ring,
            conns: (0..n).map(|_| None).collect(),
            failovers: 0,
        }
    }

    /// The peer list the ring was built over.
    pub fn peers(&self) -> &[String] {
        self.ring.peers()
    }

    /// Requests rerouted to a ring successor after a transport failure.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// The routing ring (for balance inspection and tests).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    fn conn(&mut self, peer: usize) -> Result<&mut Client, ClientError> {
        if self.conns[peer].is_none() {
            let addr = self.ring.peer(peer).to_string();
            let client = Client::connect(&addr)
                .map_err(|e| ClientError::Disconnected(format!("connect {addr}: {e}")))?;
            self.conns[peer] = Some(client);
        }
        Ok(self.conns[peer].as_mut().expect("just connected"))
    }

    /// Run `op` against `peer`, dropping the cached connection on a
    /// transport failure so the next attempt reconnects.
    fn on_peer<T>(
        &mut self,
        peer: usize,
        op: impl FnOnce(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let out = self.conn(peer).and_then(op);
        if let Err(e) = &out {
            if e.is_transport() {
                self.conns[peer] = None;
            }
        }
        out
    }

    /// Compile one request on the peer owning its **semantic** cache key
    /// (the key of its alpha-canonical form), failing over along the ring
    /// on transport errors. Routing by semantic key lands every isomorphic
    /// variant of a loop on the same peer, so a renamed request warm-hits
    /// the alias entry its representative populated. Returns the served
    /// result and the address of the peer that answered.
    pub fn compile(
        &mut self,
        req: &CompileRequest,
        timeout_ms: Option<u64>,
    ) -> Result<(ServedResult, String), ClientError> {
        let canonical = req
            .canonicalize()
            .map_err(|e| ClientError::BadRequest(e.to_string()))?;
        let key = canonical
            .semantic_key()
            .map_err(|e| ClientError::BadRequest(e.to_string()))?;
        let order = self.ring.successors(&key);
        if order.is_empty() {
            return Err(ClientError::BadRequest("no peers configured".into()));
        }
        let mut last = None;
        for (attempt, peer) in order.into_iter().enumerate() {
            if attempt > 0 {
                self.failovers += 1;
            }
            match self.on_peer(peer, |c| c.compile(&canonical, timeout_ms)) {
                Ok(res) => return Ok((res, self.ring.peer(peer).to_string())),
                Err(e) if e.is_transport() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Compile a batch: entries are grouped per owning peer, shipped as one
    /// `compile_batch` per peer, and reassembled in request order. A peer
    /// that fails mid-batch is marked dead and its entries reroute to their
    /// ring successors (counted per rerouted entry in `failovers`).
    pub fn compile_batch(
        &mut self,
        reqs: &[CompileRequest],
        timeout_ms: Option<u64>,
        parallelism: Option<usize>,
    ) -> Result<Vec<Result<ServedResult, String>>, ClientError> {
        let n_peers = self.ring.peers().len();
        if n_peers == 0 {
            return Err(ClientError::BadRequest("no peers configured".into()));
        }
        let mut out: Vec<Option<Result<ServedResult, String>>> = Vec::new();
        out.resize_with(reqs.len(), || None);

        // Canonicalise every entry once; invalid entries fail in place.
        // Entries route by semantic key so isomorphic variants group onto
        // the same peer (and its alias entries).
        let mut pending: Vec<(usize, CompileRequest, String)> = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            match req.canonicalize().and_then(|canonical| {
                let key = canonical.semantic_key()?;
                Ok((canonical, key))
            }) {
                Ok((canonical, key)) => pending.push((i, canonical, key)),
                Err(e) => out[i] = Some(Err(format!("bad request: {e}"))),
            }
        }

        let mut dead = vec![false; n_peers];
        while !pending.is_empty() {
            // Group by the first live successor of each entry's key.
            let mut groups: BTreeMap<usize, Vec<(usize, CompileRequest, String)>> = BTreeMap::new();
            for (i, req, key) in pending.drain(..) {
                match self.ring.successors(&key).into_iter().find(|&p| !dead[p]) {
                    Some(peer) => groups.entry(peer).or_default().push((i, req, key)),
                    None => return Err(ClientError::Disconnected("all peers unreachable".into())),
                }
            }
            for (peer, group) in groups {
                let batch: Vec<CompileRequest> =
                    group.iter().map(|(_, req, _)| req.clone()).collect();
                match self.on_peer(peer, |c| c.compile_batch(&batch, timeout_ms, parallelism)) {
                    Ok(results) => {
                        for ((i, _, _), res) in group.into_iter().zip(results) {
                            out[i] = Some(res);
                        }
                    }
                    Err(e) if e.is_transport() => {
                        dead[peer] = true;
                        self.failovers += group.len() as u64;
                        pending.extend(group);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(out
            .into_iter()
            .map(|slot| slot.expect("every entry settled"))
            .collect())
    }

    /// Fetch every reachable peer's stats snapshot plus a merged view:
    /// counters are summed, and the fleet-wide latency percentiles are
    /// computed from the *sum* of the peers' histogram buckets (shipped as
    /// `latency_hist` / `queue_hist` in each snapshot), so `p50_us`,
    /// `p90_us`, `p99_us`, `queue_p50_us` and `queue_p99_us` describe the
    /// true merged distribution rather than any single peer. The older
    /// worst-peer view is kept alongside as `max_p50_us` etc. Unreachable
    /// peers are reported with `Err` and skipped in the merge.
    pub fn stats_aggregate(&mut self) -> Result<(Vec<PeerStats>, Json), ClientError> {
        let n_peers = self.ring.peers().len();
        let mut per_peer = Vec::with_capacity(n_peers);
        let mut sums: BTreeMap<&'static str, f64> = BTreeMap::new();
        let mut maxima: BTreeMap<&'static str, f64> = BTreeMap::new();
        let mut lat_acc = [0u64; hist::NBUCKETS];
        let mut queue_acc = [0u64; hist::NBUCKETS];
        let mut reporting = 0u64;
        for peer in 0..n_peers {
            let addr = self.ring.peer(peer).to_string();
            let snap = self.on_peer(peer, Client::stats);
            if let Ok(stats) = &snap {
                reporting += 1;
                for field in AGGREGATE_SUM_FIELDS {
                    if let Some(v) = stats.get(field).and_then(Json::as_f64) {
                        *sums.entry(field).or_insert(0.0) += v;
                    }
                }
                for field in ["p50_us", "p90_us", "p99_us"] {
                    if let Some(v) = stats.get(field).and_then(Json::as_f64) {
                        let slot = maxima.entry(field).or_insert(0.0);
                        *slot = slot.max(v);
                    }
                }
                hist::merge_sparse(&mut lat_acc, &sparse_from_json(stats.get("latency_hist")));
                hist::merge_sparse(&mut queue_acc, &sparse_from_json(stats.get("queue_hist")));
            }
            per_peer.push((addr, snap));
        }
        let mut merged: BTreeMap<std::borrow::Cow<'static, str>, Json> = BTreeMap::new();
        for (k, v) in sums {
            merged.insert(k.into(), Json::Num(v));
        }
        for (k, v) in maxima {
            merged.insert(format!("max_{k}").into(), Json::Num(v));
        }
        for (k, p) in [("p50_us", 0.50), ("p90_us", 0.90), ("p99_us", 0.99)] {
            merged.insert(k.into(), Json::Num(hist::percentile_of(&lat_acc, p) as f64));
        }
        for (k, p) in [("queue_p50_us", 0.50), ("queue_p99_us", 0.99)] {
            merged.insert(
                k.into(),
                Json::Num(hist::percentile_of(&queue_acc, p) as f64),
            );
        }
        merged.insert("peers".into(), Json::Num(n_peers as f64));
        merged.insert("peers_reporting".into(), Json::Num(reporting as f64));
        merged.insert("failovers".into(), Json::Num(self.failovers as f64));
        Ok((per_peer, Json::Obj(merged)))
    }

    /// Best-effort shutdown of every reachable peer; returns how many
    /// acknowledged.
    pub fn shutdown_all(&mut self) -> usize {
        let n_peers = self.ring.peers().len();
        (0..n_peers)
            .filter(|&peer| self.on_peer(peer, Client::shutdown).is_ok())
            .count()
    }
}
