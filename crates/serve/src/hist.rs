//! Lock-free log-linear latency histograms.
//!
//! The serve tier used to keep a mutex-guarded ring of raw latency samples
//! and sort a copy per snapshot; that had two problems the reactor core
//! makes acute. First, every request took the mutex on the hot path.
//! Second — worse — percentiles of a ring cannot be merged across peers,
//! so the sharded `stats --aggregate` view "merged" them by taking the max,
//! which systematically overstates the fleet-wide p50/p99.
//!
//! [`Hist`] fixes both: values land in fixed log-linear buckets
//! (`fetch_add` on a relaxed atomic, no lock), and bucket counts are
//! additive, so any number of peers' histograms sum into one honest
//! distribution. Resolution is exact below [`LINEAR_MAX`] and within
//! 1/[`SUB_BUCKETS`] (≈6%) above it, which is far inside the noise floor
//! of a latency percentile.
//!
//! Bucket layout (values are `u64` microseconds, but the type is unit-
//! agnostic): values `< 32` map to bucket `v` exactly; above that, each
//! power-of-two octave splits into 16 equal sub-buckets. A bucket's
//! reported value is its midpoint.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this land in exact single-value buckets.
const LINEAR_MAX: u64 = 32;
/// Sub-buckets per power-of-two octave above the linear range.
const SUB_BUCKETS: usize = 16;
/// Octaves covered above the linear range (up to `32 * 2^31`, ~19 hours in
/// microseconds); larger values clamp into the top bucket.
const OCTAVES: usize = 32;
/// Total bucket count.
pub const NBUCKETS: usize = LINEAR_MAX as usize + OCTAVES * SUB_BUCKETS;

/// Bucket index for a value.
fn index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    // v >= 32, so the leading bit is at position >= 5.
    let lz = 63 - v.leading_zeros() as usize; // v in [2^lz, 2^(lz+1))
    let octave = (lz - 5).min(OCTAVES - 1);
    let sub = if octave == OCTAVES - 1 && lz - 5 >= OCTAVES {
        SUB_BUCKETS - 1 // clamp: beyond the covered range
    } else {
        ((v >> (lz - 4)) & 0xF) as usize
    };
    LINEAR_MAX as usize + octave * SUB_BUCKETS + sub
}

/// The midpoint value a bucket reports.
fn midpoint(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        return idx as u64;
    }
    let rel = idx - LINEAR_MAX as usize;
    let octave = rel / SUB_BUCKETS;
    let sub = (rel % SUB_BUCKETS) as u64;
    let width = 1u64 << (octave + 1); // octave range / SUB_BUCKETS
    let lo = (1u64 << (octave + 5)) + sub * width;
    lo + width / 2
}

/// A fixed-size, lock-free histogram.
pub struct Hist {
    buckets: Vec<AtomicU64>,
    total: AtomicU64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
        }
    }

    /// Record one value (relaxed atomics; safe from any thread).
    pub fn record(&self, v: u64) {
        self.buckets[index(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The `p`-quantile (0.0..=1.0) of the recorded distribution, or 0 when
    /// empty. Reported as the containing bucket's midpoint.
    pub fn percentile(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        percentile_of(&counts, p)
    }

    /// Sparse `(bucket, count)` pairs for the wire (only non-empty buckets).
    pub fn sparse(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((i as u32, c))
            })
            .collect()
    }
}

/// Percentile over a dense bucket-count array (shared by [`Hist`] and the
/// merged multi-peer path). Matches the nearest-rank convention the old
/// sorted-ring implementation used: the element at index
/// `round((n-1) * p)` of the sorted sample list.
pub fn percentile_of(counts: &[u64], p: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as u64;
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen > rank {
            return midpoint(i);
        }
    }
    midpoint(NBUCKETS - 1)
}

/// Fold sparse `(bucket, count)` pairs from one peer into a dense
/// accumulator (out-of-range indices are ignored rather than trusted).
pub fn merge_sparse(acc: &mut [u64; NBUCKETS], sparse: &[(u32, u64)]) {
    for &(i, c) in sparse {
        if let Some(slot) = acc.get_mut(i as usize) {
            *slot = slot.saturating_add(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_linear_max() {
        let h = Hist::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
        }
        assert_eq!(h.count(), LINEAR_MAX);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), LINEAR_MAX - 1);
    }

    #[test]
    fn buckets_are_monotone_and_self_consistent() {
        // index() must be monotone non-decreasing in v, and midpoint(index(v))
        // must stay within ~7% of v across the whole range.
        let mut last = 0usize;
        let mut v = 1u64;
        while v < 1 << 40 {
            let i = index(v);
            assert!(i >= last, "index not monotone at {v}");
            assert!(i < NBUCKETS);
            last = i;
            if v < 1 << 36 {
                // Inside the covered range the midpoint tracks the value;
                // beyond it values clamp into the top bucket.
                let mid = midpoint(i);
                let err = (mid as f64 - v as f64).abs() / v as f64;
                assert!(err <= 0.07, "v={v} mid={mid} err={err}");
            }
            v = v * 13 / 11 + 1;
        }
    }

    #[test]
    fn percentiles_of_uniform_1_to_100() {
        let h = Hist::new();
        for v in 1..=100 {
            h.record(v);
        }
        let p50 = h.percentile(0.50);
        let p90 = h.percentile(0.90);
        let p99 = h.percentile(0.99);
        assert!((49..=51).contains(&p50), "p50={p50}");
        assert!((89..=91).contains(&p90), "p90={p90}");
        assert!((98..=100).contains(&p99), "p99={p99}");
    }

    #[test]
    fn huge_values_clamp_into_top_bucket() {
        let h = Hist::new();
        h.record(u64::MAX);
        h.record(1u64 << 62);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(1.0) > 1u64 << 35);
    }

    #[test]
    fn sparse_merge_reproduces_the_sum_distribution() {
        let a = Hist::new();
        let b = Hist::new();
        for v in 1..=50 {
            a.record(v);
        }
        for v in 51..=100 {
            b.record(v);
        }
        let mut acc = [0u64; NBUCKETS];
        merge_sparse(&mut acc, &a.sparse());
        merge_sparse(&mut acc, &b.sparse());
        let merged_p50 = percentile_of(&acc, 0.50);
        assert!(
            (49..=51).contains(&merged_p50),
            "merged p50={merged_p50} (max-merge would have said ~75)"
        );
        // A bogus out-of-range bucket index is dropped, not a panic.
        merge_sparse(&mut acc, &[(u32::MAX, 5)]);
        assert_eq!(percentile_of(&acc, 0.50), merged_p50);
    }

    #[test]
    fn empty_hist_reports_zero() {
        let h = Hist::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.count(), 0);
    }
}
