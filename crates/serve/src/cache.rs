//! Two-tier artifact cache: sharded in-memory LRU over an on-disk
//! content-addressed store.
//!
//! * **Memory tier** — [`MemCache`]: N mutex-guarded shards (key-sharded by
//!   the first hex byte of the SHA-256 key, which is uniformly distributed),
//!   each an exact LRU bounded by entry count. Eviction order is tracked
//!   with a monotone tick per shard and a `BTreeMap<tick, key>`, so the
//!   oldest untouched entry pops in O(log n) without a linked list.
//! * **Disk tier** — [`DiskStore`]: one single-line JSON file per key under
//!   `<root>/ab/<key>.json` (two-hex-char fan-out). Writes go to a unique
//!   temp file in the same directory and are published with an atomic
//!   rename, so readers never observe a torn file. Reads tolerate
//!   corruption: any unparseable file is deleted and reported as a miss.
//! * **Write-behind** — [`WriteBehind`]: persistence is off the request
//!   path. Puts enqueue onto a bounded channel drained by one writer
//!   thread; a full queue degrades to a synchronous write (results are
//!   never dropped), and drop/[`WriteBehind::flush`] drain every pending
//!   write before returning, so shutdown never loses artifacts. The writer
//!   appends to a per-process journal file (cheap even on one core) and
//!   fans it out into fsynced per-key files at every flush barrier, at
//!   shutdown, and past a size threshold; journals abandoned by crashed
//!   processes are compacted on the next startup.
//!
//! [`TieredCache`] composes the tiers with read-through promotion and keeps
//! hit/miss/eviction counters in [`crate::stats::StatsRegistry`].

use crate::envelope::{CacheKey, CompileResult};
use crate::stats::StatsRegistry;
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

/// Number of LRU shards. Sixteen matches the first hex digit of the key, so
/// sharding is a single nibble extraction.
const N_SHARDS: usize = 16;

struct Shard {
    /// key → (value, tick of last touch).
    map: HashMap<CacheKey, (CompileResult, u64)>,
    /// tick of last touch → key; the smallest tick is the LRU victim.
    order: BTreeMap<u64, CacheKey>,
    tick: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
        }
    }

    fn touch(&mut self, key: &str) {
        if let Some((_, t)) = self.map.get(key) {
            let old = *t;
            self.order.remove(&old);
            self.tick += 1;
            let now = self.tick;
            self.order.insert(now, key.to_string());
            self.map.get_mut(key).expect("present").1 = now;
        }
    }
}

/// Sharded in-memory LRU keyed by content hash.
pub struct MemCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    evictions: AtomicU64,
}

impl MemCache {
    /// A cache holding at most `capacity` entries (rounded up to a multiple
    /// of the shard count; minimum one entry per shard).
    pub fn new(capacity: usize) -> Self {
        MemCache {
            shards: (0..N_SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_cap: capacity.div_ceil(N_SHARDS).max(1),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        // First hex digit of the SHA-256 key: uniform over shards.
        let nibble = key
            .as_bytes()
            .first()
            .map(|b| (*b as char).to_digit(16).unwrap_or(0) as usize)
            .unwrap_or(0);
        &self.shards[nibble % N_SHARDS]
    }

    /// Look up `key`, refreshing its recency on hit.
    pub fn get(&self, key: &str) -> Option<CompileResult> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.touch(key);
        shard.map.get(key).map(|(v, _)| v.clone())
    }

    /// Insert (or refresh) `key`, evicting the least recently used entry of
    /// the shard if it is full.
    pub fn put(&self, key: CacheKey, value: CompileResult) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if let Some((_, old)) = shard.map.remove(&key) {
            shard.order.remove(&old);
        } else if shard.map.len() >= self.per_shard_cap {
            if let Some((&oldest, _)) = shard.order.iter().next() {
                let victim = shard.order.remove(&oldest).expect("present");
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.tick += 1;
        let now = shard.tick;
        shard.order.insert(now, key.clone());
        shard.map.insert(key, (value, now));
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// On-disk content-addressed store of compile results.
pub struct DiskStore {
    root: PathBuf,
    seq: AtomicU64,
}

impl DiskStore {
    /// A store rooted at `root` (created on first write).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DiskStore {
            root: root.into(),
            seq: AtomicU64::new(0),
        }
    }

    /// The default store location used by the bins: `target/vliw-cache/`
    /// relative to the working directory.
    pub fn default_root() -> PathBuf {
        PathBuf::from("target/vliw-cache")
    }

    fn path_for(&self, key: &str) -> PathBuf {
        // Two-hex-char fan-out keeps directory sizes bounded on large
        // corpora. Keys are validated hex, but fall back gracefully.
        let prefix = if key.len() >= 2 { &key[..2] } else { "xx" };
        self.root.join(prefix).join(format!("{key}.json"))
    }

    /// A fresh, collision-free journal path for one writer instance.
    fn new_journal_path(&self) -> PathBuf {
        static JOURNAL_SEQ: AtomicU64 = AtomicU64::new(0);
        self.root.join(format!(
            "journal-{}-{}.jsonl",
            std::process::id(),
            JOURNAL_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// Journal files abandoned by crashed writers: any `journal-<pid>-*`
    /// whose process is gone. Journals of live processes (including this
    /// one) are skipped — their writers still hold the file open.
    fn stale_journals(&self) -> Vec<PathBuf> {
        let mut out = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let pid = name
                    .strip_prefix("journal-")
                    .and_then(|rest| rest.split('-').next())
                    .and_then(|pid| pid.parse::<u32>().ok());
                let Some(pid) = pid else { continue };
                if !name.ends_with(".jsonl") || pid == std::process::id() {
                    continue;
                }
                let proc_root = Path::new("/proc");
                if proc_root.exists() && proc_root.join(pid.to_string()).exists() {
                    continue; // writer still running
                }
                out.push(entry.path());
            }
        }
        out
    }

    /// Fan a journal's entries out into per-key files (fsynced), then
    /// remove the journal. Idempotent: a crash mid-compaction leaves the
    /// journal in place and the rewrites are content-addressed.
    fn compact_journal(&self, journal: &Path) {
        let text = match fs::read_to_string(journal) {
            Ok(t) => t,
            Err(_) => return,
        };
        let mut dirty = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if let Ok(res) = CompileResult::from_json_text(line) {
                if self.put_with_sync(&res.key, &res, false) {
                    dirty.push(self.path_for(&res.key));
                }
            }
        }
        for path in dirty {
            if let Ok(f) = fs::File::open(&path) {
                let _ = f.sync_all();
            }
        }
        let _ = fs::remove_file(journal);
    }

    /// Read the result stored under `key`. A missing file is a miss; an
    /// unreadable or unparseable file is deleted and reported as a miss.
    pub fn get(&self, key: &str) -> Option<CompileResult> {
        let path = self.path_for(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return None,
        };
        match CompileResult::from_json_text(&text) {
            Ok(res) if res.key == key => Some(res),
            _ => {
                // Corrupt or mislabelled entry: drop it so the slot heals.
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Store `value` under `key` atomically (temp file + rename + fsync).
    /// Returns `false` if the filesystem rejected the write; the cache then
    /// simply degrades to memory-only for this entry.
    pub fn put(&self, key: &str, value: &CompileResult) -> bool {
        self.put_with_sync(key, value, true)
    }

    /// Like [`DiskStore::put`] but leaves the data in the page cache; the
    /// write-behind writer batches one fsync pass per flush instead of
    /// paying one per entry.
    fn put_with_sync(&self, key: &str, value: &CompileResult, sync: bool) -> bool {
        let path = self.path_for(key);
        let dir = match path.parent() {
            Some(d) => d,
            None => return false,
        };
        if fs::create_dir_all(dir).is_err() {
            return false;
        }
        let unique = self.seq.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(".{key}.{}.{unique}.tmp", std::process::id()));
        let write = (|| -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(value.to_json().render().as_bytes())?;
            f.write_all(b"\n")?;
            if sync {
                f.sync_all()?;
            }
            Ok(())
        })();
        if write.is_err() {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        if fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        true
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

/// Entries the write-behind queue buffers before degrading to synchronous
/// writes. Sized so a corpus-scale burst fits while the writer drains.
const WRITE_QUEUE_CAP: usize = 1024;

/// Journal size that triggers an inline compaction pass, bounding both
/// replay cost after a crash and duplicate storage.
const JOURNAL_COMPACT_BYTES: u64 = 8 * 1024 * 1024;

enum WriteCmd {
    /// The result carries its own content-addressed key.
    Put(CompileResult),
    /// Barrier: acknowledged only after every earlier `Put` is on disk.
    Flush(SyncSender<()>),
}

/// Bounded write-behind queue in front of a [`DiskStore`].
///
/// `put` enqueues and returns immediately; one writer thread journals the
/// entries and compacts them into per-key files (see [`writer_loop`]). A
/// full queue falls back to a synchronous write in the caller (counted in
/// [`StatsRegistry`] as `sync_writes`) — results are never dropped.
/// [`WriteBehind::flush`] is a barrier: when it returns, every earlier put
/// is an fsynced per-key file. Dropping the queue joins the writer after
/// draining and compacting everything still pending, so shutdown persists
/// all completed compiles.
pub struct WriteBehind {
    store: Arc<DiskStore>,
    tx: Option<SyncSender<WriteCmd>>,
    writer: Option<std::thread::JoinHandle<()>>,
    stats: Arc<StatsRegistry>,
}

impl WriteBehind {
    /// Wrap `store`, spawning the writer thread.
    pub fn new(store: DiskStore, stats: Arc<StatsRegistry>) -> Self {
        let store = Arc::new(store);
        let (tx, rx) = sync_channel::<WriteCmd>(WRITE_QUEUE_CAP);
        let writer_store = Arc::clone(&store);
        let writer = std::thread::spawn(move || writer_loop(&writer_store, &rx));
        WriteBehind {
            store,
            tx: Some(tx),
            writer: Some(writer),
            stats,
        }
    }

    /// The underlying store (reads bypass the queue; the memory tier holds
    /// every entry newer than the writer's progress).
    pub fn store(&self) -> &DiskStore {
        &self.store
    }

    /// Enqueue a persistence request; degrade to a synchronous write if the
    /// queue is full or the writer is gone.
    pub fn put(&self, key: &str, value: &CompileResult) {
        let tx = self.tx.as_ref().expect("writer alive until drop");
        match tx.try_send(WriteCmd::Put(value.clone())) {
            Ok(()) => {}
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.stats.sync_write();
                self.store.put(key, value);
            }
        }
    }

    /// Block until every previously enqueued write is on disk.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = sync_channel(1);
        if let Some(tx) = &self.tx {
            if tx.send(WriteCmd::Flush(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
    }
}

impl Drop for WriteBehind {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the channel; the writer drains and exits
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// The write-behind writer: appends results to a per-process journal
/// (one buffered file — cheap on the request path even on a single core)
/// and fans the journal out into fsynced per-key files on every flush
/// barrier, at shutdown, and whenever the journal grows past
/// [`JOURNAL_COMPACT_BYTES`]. On startup any journal left behind by a
/// crashed process is compacted first, so no acknowledged result is ever
/// lost.
fn writer_loop(store: &DiskStore, rx: &std::sync::mpsc::Receiver<WriteCmd>) {
    for journal in store.stale_journals() {
        store.compact_journal(&journal);
    }
    let journal_path = store.new_journal_path();
    let mut journal: Option<std::io::BufWriter<fs::File>> = None;
    let mut journal_bytes = 0u64;

    let compact = |journal: &mut Option<std::io::BufWriter<fs::File>>, journal_bytes: &mut u64| {
        if let Some(mut w) = journal.take() {
            let _ = w.flush();
            let _ = w.into_inner().map(|f| f.sync_all());
        }
        store.compact_journal(&journal_path);
        *journal_bytes = 0;
    };

    // `recv` drains every buffered command before reporting the channel
    // closed, so dropping the sender flushes the queue.
    while let Ok(cmd) = rx.recv() {
        match cmd {
            WriteCmd::Put(value) => {
                if journal.is_none() {
                    if fs::create_dir_all(store.root()).is_err() {
                        continue;
                    }
                    journal = fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&journal_path)
                        .ok()
                        .map(std::io::BufWriter::new);
                }
                if let Some(w) = &mut journal {
                    let mut line = value.to_json().render();
                    line.push('\n');
                    if w.write_all(line.as_bytes()).is_ok() {
                        journal_bytes += line.len() as u64;
                    }
                }
                if journal_bytes >= JOURNAL_COMPACT_BYTES {
                    compact(&mut journal, &mut journal_bytes);
                }
            }
            WriteCmd::Flush(ack) => {
                compact(&mut journal, &mut journal_bytes);
                let _ = ack.send(());
            }
        }
    }
    compact(&mut journal, &mut journal_bytes);
}

/// Memory LRU in front of the write-behind disk store, with shared
/// statistics.
pub struct TieredCache {
    mem: MemCache,
    disk: Option<WriteBehind>,
    stats: Arc<StatsRegistry>,
}

impl TieredCache {
    /// A tiered cache with `mem_capacity` in-memory entries over `disk`
    /// (pass `None` for a memory-only cache).
    pub fn new(mem_capacity: usize, disk: Option<DiskStore>) -> Self {
        let stats = Arc::new(StatsRegistry::new());
        TieredCache {
            mem: MemCache::new(mem_capacity),
            disk: disk.map(|d| WriteBehind::new(d, Arc::clone(&stats))),
            stats,
        }
    }

    /// Look up `key` in memory, then on disk (promoting a disk hit into
    /// memory). Updates hit/miss counters.
    pub fn get(&self, key: &str) -> Option<CompileResult> {
        self.get_impl(key, true)
    }

    /// Like [`TieredCache::get`] but a miss is not counted: used for the
    /// raw-key fast path, where the canonical lookup that follows is the
    /// authoritative miss.
    pub fn probe(&self, key: &str) -> Option<CompileResult> {
        self.get_impl(key, false)
    }

    fn get_impl(&self, key: &str, count_miss: bool) -> Option<CompileResult> {
        if let Some(hit) = self.mem.get(key) {
            self.stats.mem_hit();
            return Some(hit);
        }
        if let Some(disk) = &self.disk {
            if let Some(hit) = disk.store().get(key) {
                self.stats.disk_hit();
                self.mem.put(key.to_string(), hit.clone());
                return Some(hit);
            }
        }
        if count_miss {
            self.stats.miss();
        }
        None
    }

    /// Store `value` in both tiers. The disk write is asynchronous
    /// (write-behind); use [`TieredCache::flush`] to force persistence.
    pub fn put(&self, key: &str, value: &CompileResult) {
        self.mem.put(key.to_string(), value.clone());
        if let Some(disk) = &self.disk {
            disk.put(key, value);
        }
    }

    /// Barrier: every completed `put` is on disk when this returns.
    pub fn flush(&self) {
        if let Some(disk) = &self.disk {
            disk.flush();
        }
    }

    /// The statistics registry (shared with the server).
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// Memory-tier evictions so far.
    pub fn evictions(&self) -> u64 {
        self.mem.evictions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::CompileRequest;
    use vliw_loopgen::{corpus_with, CorpusSpec};
    use vliw_machine::MachineDesc;
    use vliw_pipeline::{run_loop, PipelineConfig};

    fn make_results(n: usize) -> Vec<CompileResult> {
        let spec = CorpusSpec {
            n,
            ..Default::default()
        };
        let machine = MachineDesc::embedded(2, 4);
        let cfg = PipelineConfig::default();
        corpus_with(&spec)
            .iter()
            .map(|l| {
                let req = CompileRequest::from_parts(l, &machine, &cfg);
                CompileResult::from_loop_result(req.cache_key(), &run_loop(l, &machine, &cfg))
            })
            .collect()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vliw-serve-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn mem_cache_hits_and_evicts_lru() {
        let results = make_results(8);
        // One entry per shard: inserting two keys in the same shard evicts
        // the older one.
        let cache = MemCache::new(1);
        for r in &results {
            cache.put(r.key.clone(), r.clone());
        }
        assert!(cache.len() <= N_SHARDS);
        // Most recent insertions are present unless a same-shard collision
        // evicted them; at minimum the last one must be live.
        let last = results.last().unwrap();
        assert_eq!(cache.get(&last.key).unwrap(), *last);
        assert!(cache.get("0".repeat(64).as_str()).is_none());
    }

    #[test]
    fn mem_cache_lru_order_respects_touches() {
        let results = make_results(3);
        let cache = MemCache::new(0); // per-shard capacity clamps to 1
        let shard_of = |k: &str| (k.as_bytes()[0] as char).to_digit(16).unwrap();
        // Find two results in the same shard, if any; otherwise synthesise
        // keys that collide.
        let (a, b) = (&results[0], &results[1]);
        if shard_of(&a.key) == shard_of(&b.key) {
            cache.put(a.key.clone(), a.clone());
            cache.put(b.key.clone(), b.clone());
            assert!(cache.get(&a.key).is_none(), "older entry should evict");
            assert!(cache.get(&b.key).is_some());
            assert_eq!(cache.evictions(), 1);
        } else {
            let mut fake_a = a.clone();
            fake_a.key = format!("a{}", &a.key[1..]);
            let mut fake_b = b.clone();
            fake_b.key = format!("a{}", &b.key[1..]);
            cache.put(fake_a.key.clone(), fake_a.clone());
            cache.put(fake_b.key.clone(), fake_b.clone());
            assert!(cache.get(&fake_a.key).is_none());
            assert!(cache.get(&fake_b.key).is_some());
            assert_eq!(cache.evictions(), 1);
        }
    }

    #[test]
    fn disk_store_round_trips_and_heals_corruption() {
        let root = tmpdir("disk");
        let store = DiskStore::new(&root);
        let results = make_results(2);
        let r = &results[0];
        assert!(store.get(&r.key).is_none(), "cold store misses");
        assert!(store.put(&r.key, r));
        assert_eq!(store.get(&r.key).unwrap(), *r);

        // Corrupt the file: the next read must miss and delete it.
        let path = root.join(&r.key[..2]).join(format!("{}.json", r.key));
        fs::write(&path, b"{ not json").unwrap();
        assert!(store.get(&r.key).is_none());
        assert!(!path.exists(), "corrupt entry should be removed");

        // A mislabelled entry (valid JSON, wrong key) is also healed.
        let other = &results[1];
        fs::write(&path, other.to_json().render()).unwrap();
        assert!(store.get(&r.key).is_none());
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&root);
    }

    /// A disk entry written by an older format (no `v` field, or an
    /// explicit `v: 3`) must fail closed: the read misses and the entry is
    /// deleted so the slot heals with a fresh compile.
    #[test]
    fn disk_store_rejects_and_heals_pre_v4_entries() {
        let root = tmpdir("disk-v3");
        let store = DiskStore::new(&root);
        let r = &make_results(1)[0];
        let path = root.join(&r.key[..2]).join(format!("{}.json", r.key));
        let mut doc = match r.to_json() {
            crate::Json::Obj(m) => m,
            _ => unreachable!(),
        };

        // v3-era layout: no version field at all.
        doc.remove("v");
        store.put(&r.key, r);
        fs::write(&path, crate::Json::Obj(doc.clone()).render()).unwrap();
        assert!(store.get(&r.key).is_none(), "versionless entry must miss");
        assert!(!path.exists(), "versionless entry must be deleted");

        // Explicitly versioned foreign entry.
        doc.insert("v".into(), crate::Json::Num(3.0));
        store.put(&r.key, r);
        fs::write(&path, crate::Json::Obj(doc).render()).unwrap();
        assert!(store.get(&r.key).is_none(), "v3 entry must miss");
        assert!(!path.exists(), "v3 entry must be deleted");

        // The current format still round-trips through the same slot.
        store.put(&r.key, r);
        assert_eq!(store.get(&r.key).unwrap(), *r);
        let _ = fs::remove_dir_all(&root);
    }

    /// Stale journals left by a crashed pre-v4 writer compact without
    /// resurrecting old-format lines: undecodable entries are dropped on
    /// the floor, current-format lines fan out normally.
    #[test]
    fn stale_journal_compaction_drops_pre_v4_lines() {
        let root = tmpdir("journal-v3");
        let store = DiskStore::new(&root);
        let results = make_results(2);
        let (current, old) = (&results[0], &results[1]);
        let mut old_doc = match old.to_json() {
            crate::Json::Obj(m) => m,
            _ => unreachable!(),
        };
        old_doc.insert("v".into(), crate::Json::Num(3.0));
        fs::create_dir_all(&root).unwrap();
        let journal = root.join("journal-99999-0.jsonl");
        fs::write(
            &journal,
            format!(
                "{}\n{}\nnot json at all\n",
                current.to_json().render(),
                crate::Json::Obj(old_doc).render()
            ),
        )
        .unwrap();

        store.compact_journal(&journal);
        assert!(!journal.exists(), "journal must be consumed");
        assert_eq!(store.get(&current.key).unwrap(), *current);
        assert!(
            store.get(&old.key).is_none(),
            "pre-v4 journal line must not be resurrected"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn write_behind_persists_on_drop_and_flush() {
        let root = tmpdir("wb");
        let results = make_results(4);
        {
            let wb = WriteBehind::new(DiskStore::new(&root), Arc::new(StatsRegistry::new()));
            for r in &results[..2] {
                wb.put(&r.key, r);
            }
            // Flush is a barrier: both writes are observable immediately.
            wb.flush();
            for r in &results[..2] {
                assert_eq!(wb.store().get(&r.key).unwrap(), *r);
            }
            for r in &results[2..] {
                wb.put(&r.key, r);
            }
            // No flush: drop must drain the queue before joining.
        }
        let store = DiskStore::new(&root);
        for r in &results {
            assert_eq!(store.get(&r.key).unwrap(), *r, "{} lost on drop", r.key);
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn tiered_cache_promotes_disk_hits() {
        let root = tmpdir("tiered");
        let results = make_results(1);
        let r = &results[0];

        // Populate via one cache instance, read via a fresh one (cold
        // memory, warm disk) to exercise promotion.
        let warm = TieredCache::new(64, Some(DiskStore::new(&root)));
        assert!(warm.get(&r.key).is_none());
        warm.put(&r.key, r);
        assert_eq!(warm.get(&r.key).unwrap(), *r);
        let snap = warm.stats().snapshot();
        assert_eq!((snap.mem_hits, snap.disk_hits, snap.misses), (1, 0, 1));

        // The disk write is behind the queue; barrier before reading the
        // store from a second cache instance.
        warm.flush();
        let fresh = TieredCache::new(64, Some(DiskStore::new(&root)));
        assert_eq!(fresh.get(&r.key).unwrap(), *r, "disk hit");
        assert_eq!(fresh.get(&r.key).unwrap(), *r, "promoted to memory");
        let snap = fresh.stats().snapshot();
        assert_eq!((snap.mem_hits, snap.disk_hits, snap.misses), (1, 1, 0));
        let _ = fs::remove_dir_all(&root);
    }
}
