//! Two-tier artifact cache: sharded in-memory LRU over an on-disk
//! content-addressed store.
//!
//! * **Memory tier** — [`MemCache`]: N mutex-guarded shards (key-sharded by
//!   the first hex byte of the SHA-256 key, which is uniformly distributed),
//!   each an exact LRU bounded by entry count. Eviction order is tracked
//!   with a monotone tick per shard and a `BTreeMap<tick, key>`, so the
//!   oldest untouched entry pops in O(log n) without a linked list.
//! * **Disk tier** — [`DiskStore`]: one single-line JSON file per key under
//!   `<root>/ab/<key>.json` (two-hex-char fan-out). Writes go to a unique
//!   temp file in the same directory and are published with an atomic
//!   rename, so readers never observe a torn file. Reads tolerate
//!   corruption: any unparseable file is deleted and reported as a miss.
//!
//! [`TieredCache`] composes the two with read-through promotion and keeps
//! hit/miss/eviction counters in [`crate::stats::StatsRegistry`].

use crate::envelope::{CacheKey, CompileResult};
use crate::stats::StatsRegistry;
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of LRU shards. Sixteen matches the first hex digit of the key, so
/// sharding is a single nibble extraction.
const N_SHARDS: usize = 16;

struct Shard {
    /// key → (value, tick of last touch).
    map: HashMap<CacheKey, (CompileResult, u64)>,
    /// tick of last touch → key; the smallest tick is the LRU victim.
    order: BTreeMap<u64, CacheKey>,
    tick: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
        }
    }

    fn touch(&mut self, key: &str) {
        if let Some((_, t)) = self.map.get(key) {
            let old = *t;
            self.order.remove(&old);
            self.tick += 1;
            let now = self.tick;
            self.order.insert(now, key.to_string());
            self.map.get_mut(key).expect("present").1 = now;
        }
    }
}

/// Sharded in-memory LRU keyed by content hash.
pub struct MemCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    evictions: AtomicU64,
}

impl MemCache {
    /// A cache holding at most `capacity` entries (rounded up to a multiple
    /// of the shard count; minimum one entry per shard).
    pub fn new(capacity: usize) -> Self {
        MemCache {
            shards: (0..N_SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_cap: capacity.div_ceil(N_SHARDS).max(1),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        // First hex digit of the SHA-256 key: uniform over shards.
        let nibble = key
            .as_bytes()
            .first()
            .map(|b| (*b as char).to_digit(16).unwrap_or(0) as usize)
            .unwrap_or(0);
        &self.shards[nibble % N_SHARDS]
    }

    /// Look up `key`, refreshing its recency on hit.
    pub fn get(&self, key: &str) -> Option<CompileResult> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.touch(key);
        shard.map.get(key).map(|(v, _)| v.clone())
    }

    /// Insert (or refresh) `key`, evicting the least recently used entry of
    /// the shard if it is full.
    pub fn put(&self, key: CacheKey, value: CompileResult) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if let Some((_, old)) = shard.map.remove(&key) {
            shard.order.remove(&old);
        } else if shard.map.len() >= self.per_shard_cap {
            if let Some((&oldest, _)) = shard.order.iter().next() {
                let victim = shard.order.remove(&oldest).expect("present");
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.tick += 1;
        let now = shard.tick;
        shard.order.insert(now, key.clone());
        shard.map.insert(key, (value, now));
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// On-disk content-addressed store of compile results.
pub struct DiskStore {
    root: PathBuf,
    seq: AtomicU64,
}

impl DiskStore {
    /// A store rooted at `root` (created on first write).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DiskStore {
            root: root.into(),
            seq: AtomicU64::new(0),
        }
    }

    /// The default store location used by the bins: `target/vliw-cache/`
    /// relative to the working directory.
    pub fn default_root() -> PathBuf {
        PathBuf::from("target/vliw-cache")
    }

    fn path_for(&self, key: &str) -> PathBuf {
        // Two-hex-char fan-out keeps directory sizes bounded on large
        // corpora. Keys are validated hex, but fall back gracefully.
        let prefix = if key.len() >= 2 { &key[..2] } else { "xx" };
        self.root.join(prefix).join(format!("{key}.json"))
    }

    /// Read the result stored under `key`. A missing file is a miss; an
    /// unreadable or unparseable file is deleted and reported as a miss.
    pub fn get(&self, key: &str) -> Option<CompileResult> {
        let path = self.path_for(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return None,
        };
        match CompileResult::from_json_text(&text) {
            Ok(res) if res.key == key => Some(res),
            _ => {
                // Corrupt or mislabelled entry: drop it so the slot heals.
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Store `value` under `key` atomically (temp file + rename). Returns
    /// `false` if the filesystem rejected the write; the cache then simply
    /// degrades to memory-only for this entry.
    pub fn put(&self, key: &str, value: &CompileResult) -> bool {
        let path = self.path_for(key);
        let dir = match path.parent() {
            Some(d) => d,
            None => return false,
        };
        if fs::create_dir_all(dir).is_err() {
            return false;
        }
        let unique = self.seq.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(".{key}.{}.{unique}.tmp", std::process::id()));
        let write = (|| -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(value.to_json().render().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
            Ok(())
        })();
        if write.is_err() {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        if fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        true
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

/// Memory LRU in front of the disk store, with shared statistics.
pub struct TieredCache {
    mem: MemCache,
    disk: Option<DiskStore>,
    stats: StatsRegistry,
}

impl TieredCache {
    /// A tiered cache with `mem_capacity` in-memory entries over `disk`
    /// (pass `None` for a memory-only cache).
    pub fn new(mem_capacity: usize, disk: Option<DiskStore>) -> Self {
        TieredCache {
            mem: MemCache::new(mem_capacity),
            disk,
            stats: StatsRegistry::new(),
        }
    }

    /// Look up `key` in memory, then on disk (promoting a disk hit into
    /// memory). Updates hit/miss counters.
    pub fn get(&self, key: &str) -> Option<CompileResult> {
        if let Some(hit) = self.mem.get(key) {
            self.stats.mem_hit();
            return Some(hit);
        }
        if let Some(disk) = &self.disk {
            if let Some(hit) = disk.get(key) {
                self.stats.disk_hit();
                self.mem.put(key.to_string(), hit.clone());
                return Some(hit);
            }
        }
        self.stats.miss();
        None
    }

    /// Store `value` in both tiers.
    pub fn put(&self, key: &str, value: &CompileResult) {
        self.mem.put(key.to_string(), value.clone());
        if let Some(disk) = &self.disk {
            disk.put(key, value);
        }
    }

    /// The statistics registry (shared with the server).
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// Memory-tier evictions so far.
    pub fn evictions(&self) -> u64 {
        self.mem.evictions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::CompileRequest;
    use vliw_loopgen::{corpus_with, CorpusSpec};
    use vliw_machine::MachineDesc;
    use vliw_pipeline::{run_loop, PipelineConfig};

    fn make_results(n: usize) -> Vec<CompileResult> {
        let spec = CorpusSpec {
            n,
            ..Default::default()
        };
        let machine = MachineDesc::embedded(2, 4);
        let cfg = PipelineConfig::default();
        corpus_with(&spec)
            .iter()
            .map(|l| {
                let req = CompileRequest::from_parts(l, &machine, &cfg);
                CompileResult::from_loop_result(req.cache_key(), &run_loop(l, &machine, &cfg))
            })
            .collect()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vliw-serve-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn mem_cache_hits_and_evicts_lru() {
        let results = make_results(8);
        // One entry per shard: inserting two keys in the same shard evicts
        // the older one.
        let cache = MemCache::new(1);
        for r in &results {
            cache.put(r.key.clone(), r.clone());
        }
        assert!(cache.len() <= N_SHARDS);
        // Most recent insertions are present unless a same-shard collision
        // evicted them; at minimum the last one must be live.
        let last = results.last().unwrap();
        assert_eq!(cache.get(&last.key).unwrap(), *last);
        assert!(cache.get("0".repeat(64).as_str()).is_none());
    }

    #[test]
    fn mem_cache_lru_order_respects_touches() {
        let results = make_results(3);
        let cache = MemCache::new(0); // per-shard capacity clamps to 1
        let shard_of = |k: &str| (k.as_bytes()[0] as char).to_digit(16).unwrap();
        // Find two results in the same shard, if any; otherwise synthesise
        // keys that collide.
        let (a, b) = (&results[0], &results[1]);
        if shard_of(&a.key) == shard_of(&b.key) {
            cache.put(a.key.clone(), a.clone());
            cache.put(b.key.clone(), b.clone());
            assert!(cache.get(&a.key).is_none(), "older entry should evict");
            assert!(cache.get(&b.key).is_some());
            assert_eq!(cache.evictions(), 1);
        } else {
            let mut fake_a = a.clone();
            fake_a.key = format!("a{}", &a.key[1..]);
            let mut fake_b = b.clone();
            fake_b.key = format!("a{}", &b.key[1..]);
            cache.put(fake_a.key.clone(), fake_a.clone());
            cache.put(fake_b.key.clone(), fake_b.clone());
            assert!(cache.get(&fake_a.key).is_none());
            assert!(cache.get(&fake_b.key).is_some());
            assert_eq!(cache.evictions(), 1);
        }
    }

    #[test]
    fn disk_store_round_trips_and_heals_corruption() {
        let root = tmpdir("disk");
        let store = DiskStore::new(&root);
        let results = make_results(2);
        let r = &results[0];
        assert!(store.get(&r.key).is_none(), "cold store misses");
        assert!(store.put(&r.key, r));
        assert_eq!(store.get(&r.key).unwrap(), *r);

        // Corrupt the file: the next read must miss and delete it.
        let path = root.join(&r.key[..2]).join(format!("{}.json", r.key));
        fs::write(&path, b"{ not json").unwrap();
        assert!(store.get(&r.key).is_none());
        assert!(!path.exists(), "corrupt entry should be removed");

        // A mislabelled entry (valid JSON, wrong key) is also healed.
        let other = &results[1];
        fs::write(&path, other.to_json().render()).unwrap();
        assert!(store.get(&r.key).is_none());
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn tiered_cache_promotes_disk_hits() {
        let root = tmpdir("tiered");
        let results = make_results(1);
        let r = &results[0];

        // Populate via one cache instance, read via a fresh one (cold
        // memory, warm disk) to exercise promotion.
        let warm = TieredCache::new(64, Some(DiskStore::new(&root)));
        assert!(warm.get(&r.key).is_none());
        warm.put(&r.key, r);
        assert_eq!(warm.get(&r.key).unwrap(), *r);
        let snap = warm.stats().snapshot();
        assert_eq!((snap.mem_hits, snap.disk_hits, snap.misses), (1, 0, 1));

        let fresh = TieredCache::new(64, Some(DiskStore::new(&root)));
        assert_eq!(fresh.get(&r.key).unwrap(), *r, "disk hit");
        assert_eq!(fresh.get(&r.key).unwrap(), *r, "promoted to memory");
        let snap = fresh.stats().snapshot();
        assert_eq!((snap.mem_hits, snap.disk_hits, snap.misses), (1, 1, 0));
        let _ = fs::remove_dir_all(&root);
    }
}
