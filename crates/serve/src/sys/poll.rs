//! Portable `poll(2)` backend: the fallback where `epoll` is unavailable,
//! and a second implementation of the same interface so tests can prove the
//! reactor is backend-agnostic.
//!
//! Registrations live in a flat `pollfd` array plus a parallel token array;
//! each wait hands the whole array to the kernel, so waits are
//! O(registered) rather than O(ready) — fine for hundreds of connections,
//! which is exactly the regime the fallback serves.

use super::{timeout_ms, Event, Interest};
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

const EINTR: i32 = 4;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

fn mask(interest: Interest) -> i16 {
    let mut m = 0;
    if interest.readable {
        m |= POLLIN;
    }
    if interest.writable {
        m |= POLLOUT;
    }
    m
}

/// The registered fd set for the `poll(2)` backend.
#[derive(Default)]
pub struct PollSet {
    fds: Vec<PollFd>,
    tokens: Vec<u64>,
}

impl PollSet {
    /// An empty set.
    pub fn new() -> PollSet {
        PollSet::default()
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.fds.iter().position(|p| p.fd == fd)
    }

    /// Watch `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.fds.push(PollFd {
            fd,
            events: mask(interest),
            revents: 0,
        });
        self.tokens.push(token);
        Ok(())
    }

    /// Update the interest mask for `fd`.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self.position(fd) {
            Some(i) => {
                self.fds[i].events = mask(interest);
                self.tokens[i] = token;
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    /// Stop watching `fd`.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self.position(fd) {
            Some(i) => {
                self.fds.swap_remove(i);
                self.tokens.swap_remove(i);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    /// Wait for events (see [`super::Poller::wait`]).
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        // SAFETY: the array is live and nfds matches its length (poll with
        // zero fds is a plain interruptible sleep, which is what we want).
        let n = unsafe {
            poll(
                self.fds.as_mut_ptr(),
                self.fds.len() as u64,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(EINTR) {
                return Ok(());
            }
            return Err(err);
        }
        for (p, &token) in self.fds.iter().zip(&self.tokens) {
            if p.revents == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: p.revents & POLLIN != 0,
                writable: p.revents & POLLOUT != 0,
                hangup: p.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
            });
        }
        Ok(())
    }
}
