//! Linux `epoll(7)` backend: O(ready) readiness waits.
//!
//! Level-triggered (the reactor re-arms interest explicitly, so edge
//! triggering would only add lost-wakeup hazards). The `epoll_event`
//! struct is packed on x86-64 — that is the kernel ABI — and `repr(C)`
//! elsewhere.

#![cfg(target_os = "linux")]

use super::{timeout_ms, Event, Interest};
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EINTR: i32 = 4;

#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

fn mask(interest: Interest) -> u32 {
    // RDHUP rides the read interest only: a half-closed peer that has been
    // read to EOF (and whose connection is merely waiting for its response)
    // must not keep waking the loop — the reactor drops read interest after
    // observing `read() == 0`, and the subscription must go with it.
    let mut m = 0;
    if interest.readable {
        m |= EPOLLIN | EPOLLRDHUP;
    }
    if interest.writable {
        m |= EPOLLOUT;
    }
    m
}

/// An epoll instance plus its scratch event buffer.
pub struct Epoll {
    epfd: RawFd,
    buf: Vec<EpollEvent>,
}

impl Epoll {
    /// A fresh epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall; a negative return is checked below.
        let epfd = unsafe { epoll_create1(0) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            epfd,
            buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: mask(interest),
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Watch `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Update the interest mask for `fd`.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Stop watching `fd`.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, Interest::NONE, 0)
    }

    /// Wait for events (see [`super::Poller::wait`]).
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        // SAFETY: `buf` is a live, correctly sized array of EpollEvent.
        let n = unsafe {
            epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(EINTR) {
                return Ok(()); // interrupted: spurious empty wakeup
            }
            return Err(err);
        }
        for ev in &self.buf[..n as usize] {
            // Copy the packed fields out before use (unaligned reference
            // would be UB); `{ ... }` forces the move.
            let bits = { ev.events };
            let token = { ev.data };
            events.push(Event {
                token,
                // RDHUP surfaces as readability: the owner reads to EOF and
                // decides. It is NOT a hangup — the peer only closed its
                // write side and can still receive our response; lumping it
                // into `hangup` made the reactor drop half-closed clients
                // whose replies were still in flight.
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: epfd came from epoll_create1 and is closed exactly once.
        unsafe {
            close(self.epfd);
        }
    }
}
