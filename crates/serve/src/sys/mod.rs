//! Thin readiness-polling layer over raw OS primitives.
//!
//! The container vendors no `libc` crate, but every Rust binary links the
//! platform C library, so the handful of syscall wrappers the reactor needs
//! are declared directly (the same trick `vliw-served` uses for `signal`).
//! Two interchangeable backends implement [`Poller`]:
//!
//! * [`epoll`] — Linux `epoll(7)`, O(ready) wakeups, the default on Linux;
//! * [`poll`] — portable `poll(2)`, O(registered) per wait, the fallback on
//!   other Unixes and selectable everywhere for tests
//!   ([`PollerConfig::force_poll`]).
//!
//! Both speak the same token-based interface: register a file descriptor
//! with a `u64` token and an [`Interest`] mask, wait for [`Event`]s, and the
//! reactor never touches a raw fd outside this module. A [`Waker`]
//! (nonblocking socketpair, write end async-signal-safe) lets worker
//! threads and signal handlers interrupt a blocked wait.

pub mod epoll;
pub mod poll;

use std::io;
use std::os::unix::io::RawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Readiness classes a registration can subscribe to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Neither direction (keeps the registration, delivers only hangups).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or a hangup to observe via `read() == 0`).
    pub readable: bool,
    /// The fd can accept more bytes.
    pub writable: bool,
    /// Error or hangup condition; the owner should read to EOF and close.
    pub hangup: bool,
}

/// Backend selection for [`Poller::with_config`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PollerConfig {
    /// Use the portable `poll(2)` backend even where `epoll` is available
    /// (exercised by tests so the fallback cannot rot).
    pub force_poll: bool,
}

/// A level-triggered readiness poller over one of the two backends.
pub enum Poller {
    /// Linux `epoll(7)`.
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    /// Portable `poll(2)`.
    Poll(poll::PollSet),
}

impl Poller {
    /// The platform-preferred backend (`epoll` on Linux, `poll` elsewhere).
    pub fn new() -> io::Result<Poller> {
        Self::with_config(PollerConfig::default())
    }

    /// A poller honouring `config.force_poll`.
    pub fn with_config(config: PollerConfig) -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if !config.force_poll {
                return Ok(Poller::Epoll(epoll::Epoll::new()?));
            }
        }
        let _ = config;
        Ok(Poller::Poll(poll::PollSet::new()))
    }

    /// The backend's name, for logs and tests.
    pub fn backend(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Poll(_) => "poll",
        }
    }

    /// Start watching `fd` under `token`. The fd must stay open until
    /// [`Poller::deregister`].
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.register(fd, token, interest),
            Poller::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Change the interest mask of an existing registration.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.reregister(fd, token, interest),
            Poller::Poll(p) => p.reregister(fd, token, interest),
        }
    }

    /// Stop watching `fd`. Safe to call with an fd that is about to close.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.deregister(fd),
            Poller::Poll(p) => p.deregister(fd),
        }
    }

    /// Block until at least one registration is ready or `timeout` elapses
    /// (`None` blocks indefinitely). Ready events are appended to `events`
    /// (cleared first). Spurious wakeups are allowed; EINTR is swallowed.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.wait(events, timeout),
            Poller::Poll(p) => p.wait(events, timeout),
        }
    }
}

/// Clamp a `Duration` to the millisecond argument `poll`/`epoll_wait` take.
/// `None` means "block forever" (-1); sub-millisecond waits round up so a
/// short timeout never busy-spins at 0ms.
pub(crate) fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms.min(i32::MAX as u128) as i32
            }
        }
    }
}

/// Cross-thread (and signal-handler) wakeup for a blocked [`Poller::wait`].
///
/// A nonblocking socketpair: the read end is registered with the poller, any
/// thread writes one byte to wake it. A full pipe means a wake is already
/// pending, so `WouldBlock` on write is success. `write(2)` is
/// async-signal-safe, which is what lets `vliw-served`'s SIGTERM handler
/// call [`Waker::wake_raw`] directly instead of parking a polling thread.
pub struct Waker {
    read: UnixStream,
    write: UnixStream,
}

impl Waker {
    /// A fresh waker pair, both ends nonblocking.
    pub fn new() -> io::Result<Waker> {
        let (read, write) = UnixStream::pair()?;
        read.set_nonblocking(true)?;
        write.set_nonblocking(true)?;
        Ok(Waker { read, write })
    }

    /// The fd to register with the poller (readable when woken).
    pub fn fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.read.as_raw_fd()
    }

    /// The raw write-end fd, for [`Waker::wake_raw`] from a signal handler.
    pub fn write_fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.write.as_raw_fd()
    }

    /// Wake the poller. Idempotent while a wake is pending.
    pub fn wake(&self) {
        use std::io::Write;
        // WouldBlock: the pipe already holds an unconsumed wake byte.
        let _ = (&self.write).write(&[1u8]);
    }

    /// Async-signal-safe wake through a raw fd previously obtained from
    /// [`Waker::write_fd`]. Only `write(2)` is invoked.
    pub fn wake_raw(fd: RawFd) {
        let buf = [1u8];
        // SAFETY: plain write(2) on an open fd; short or failed writes are
        // fine (a pending byte already guarantees the wakeup).
        unsafe {
            ffi::write(fd, buf.as_ptr().cast(), 1);
        }
    }

    /// Drain all pending wake bytes (called by the reactor once awake).
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.read).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

/// Shrink a socket's kernel receive buffer — test hook for forcing the
/// server into short writes (the partial-write torture path). Returns the
/// OS error if `setsockopt` rejects the size.
pub fn set_recv_buffer_size(socket: &std::net::TcpStream, bytes: i32) -> io::Result<()> {
    use std::os::unix::io::AsRawFd;
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    // SAFETY: standard setsockopt with an i32 optval on an open socket fd.
    let rc = unsafe {
        ffi::setsockopt(
            socket.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            (&raw const bytes).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// The raw C symbols this module links from the platform libc.
pub(crate) mod ffi {
    extern "C" {
        pub fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
        pub fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn backends() -> Vec<Poller> {
        let mut v = vec![Poller::with_config(PollerConfig { force_poll: true }).unwrap()];
        if cfg!(target_os = "linux") {
            v.push(Poller::new().unwrap());
        }
        v
    }

    #[test]
    fn waker_wakes_a_blocked_wait_on_every_backend() {
        for mut poller in backends() {
            let waker = Waker::new().unwrap();
            poller.register(waker.fd(), 7, Interest::READ).unwrap();
            waker.wake();
            waker.wake(); // coalesces, never errors
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 7 && e.readable),
                "{}: waker event missing: {events:?}",
                poller.backend()
            );
            waker.drain();
            // Drained: a short wait now times out with no events.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{}: {events:?}", poller.backend());
        }
    }

    #[test]
    fn socket_readiness_and_reregister() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (sock, _) = listener.accept().unwrap();
            sock.set_nonblocking(true).unwrap();
            poller
                .register(sock.as_raw_fd(), 42, Interest::READ)
                .unwrap();

            let mut events = Vec::new();
            // Nothing sent yet: no readable event.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.iter().all(|e| e.token != 42));

            (&peer).write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 42 && e.readable),
                "{}: expected readable, got {events:?}",
                poller.backend()
            );

            // Writable interest on an idle socket fires immediately.
            poller
                .reregister(sock.as_raw_fd(), 42, Interest::WRITE)
                .unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 42 && e.writable),
                "{}: expected writable, got {events:?}",
                poller.backend()
            );

            poller.deregister(sock.as_raw_fd()).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{}: {events:?}", poller.backend());
        }
    }

    #[test]
    fn hangup_is_reported() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (sock, _) = listener.accept().unwrap();
            sock.set_nonblocking(true).unwrap();
            poller
                .register(sock.as_raw_fd(), 9, Interest::READ)
                .unwrap();
            drop(peer);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events
                    .iter()
                    .any(|e| e.token == 9 && (e.hangup || e.readable)),
                "{}: hangup not visible: {events:?}",
                poller.backend()
            );
        }
    }
}
