//! Consistent-hash ring for multi-node cache sharding.
//!
//! Content-addressed cache keys make compile results location-independent,
//! so any peer can serve any key — routing only decides which peer's cache
//! accumulates which slice of the corpus. [`HashRing`] places
//! [`VNODES_PER_PEER`] virtual nodes per peer on a 64-bit ring (each point
//! is the truncated SHA-256 of `"<peer>\0<vnode>"`), and a key routes to
//! the owner of the first point at or clockwise after the key's own hash.
//! Virtual nodes smooth the load split; the ring is *stable*: adding or
//! removing a peer only remaps keys owned by that peer's points, never
//! keys settled on other peers (the property tests in
//! `tests/ring_prop.rs` pin this).
//!
//! On a connection failure the sharded client walks
//! [`HashRing::successors`] — the distinct peers in ring order from the
//! key's position — so failover lands exactly where the key would route if
//! the dead peer were removed.

use crate::hash::Sha256;

/// Virtual nodes per peer. 128 keeps the max/min shard-load ratio over the
/// 422-key corpus grid comfortably under 2× for small clusters.
pub const VNODES_PER_PEER: usize = 128;

/// A stable consistent-hash ring over a fixed peer list.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, peer index)`, sorted by point.
    points: Vec<(u64, usize)>,
    peers: Vec<String>,
}

fn hash64(data: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(data);
    let digest = h.finish();
    u64::from_be_bytes(digest[..8].try_into().expect("8-byte prefix"))
}

impl HashRing {
    /// Build a ring over `peers` with [`VNODES_PER_PEER`] points each.
    /// Duplicate peer names are collapsed; an empty peer list yields an
    /// empty ring (every route returns `None`).
    pub fn new<I, S>(peers: I) -> HashRing
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut unique: Vec<String> = Vec::new();
        for p in peers {
            let p = p.into();
            if !unique.contains(&p) {
                unique.push(p);
            }
        }
        let mut points = Vec::with_capacity(unique.len() * VNODES_PER_PEER);
        for (idx, peer) in unique.iter().enumerate() {
            for vnode in 0..VNODES_PER_PEER {
                let mut preimage = Vec::with_capacity(peer.len() + 9);
                preimage.extend_from_slice(peer.as_bytes());
                preimage.push(0);
                preimage.extend_from_slice(&(vnode as u64).to_be_bytes());
                points.push((hash64(&preimage), idx));
            }
        }
        // Sort by (point, peer index) so the rare point collision resolves
        // deterministically regardless of peer-list order.
        points.sort_unstable();
        HashRing {
            points,
            peers: unique,
        }
    }

    /// The deduplicated peer list, in construction order.
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// Peer name for a peer index.
    pub fn peer(&self, idx: usize) -> &str {
        &self.peers[idx]
    }

    /// Index into the point list of the first point at or after the key's
    /// hash, wrapping at the top of the ring.
    fn first_point(&self, key: &str) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash64(key.as_bytes());
        let at = self.points.partition_point(|&(p, _)| p < h);
        Some(at % self.points.len())
    }

    /// The peer index owning `key`, or `None` on an empty ring.
    pub fn route(&self, key: &str) -> Option<usize> {
        self.first_point(key).map(|at| self.points[at].1)
    }

    /// Distinct peer indices in ring order starting at the key's owner: the
    /// failover sequence. Every peer appears exactly once.
    pub fn successors(&self, key: &str) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.peers.len());
        let Some(start) = self.first_point(key) else {
            return order;
        };
        let mut seen = vec![false; self.peers.len()];
        for i in 0..self.points.len() {
            let (_, peer) = self.points[(start + i) % self.points.len()];
            if !seen[peer] {
                seen[peer] = true;
                order.push(peer);
                if order.len() == self.peers.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(Vec::<String>::new());
        assert_eq!(ring.route("abc"), None);
        assert!(ring.successors("abc").is_empty());
    }

    #[test]
    fn single_peer_owns_everything() {
        let ring = HashRing::new(["127.0.0.1:1000"]);
        for key in ["a", "b", "0123", "deadbeef"] {
            assert_eq!(ring.route(key), Some(0));
            assert_eq!(ring.successors(key), vec![0]);
        }
    }

    #[test]
    fn duplicate_peers_collapse() {
        let ring = HashRing::new(["a:1", "a:1", "b:2"]);
        assert_eq!(ring.peers().len(), 2);
    }

    #[test]
    fn successors_enumerate_all_peers_once() {
        let ring = HashRing::new(["a:1", "b:2", "c:3"]);
        let succ = ring.successors("some-key");
        let mut sorted = succ.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        assert_eq!(succ[0], ring.route("some-key").unwrap());
    }
}
