//! The event-driven serve core: one reactor thread multiplexing every
//! connection over an OS readiness facility ([`crate::sys::Poller`]), plus
//! a small compile worker pool.
//!
//! The thread-per-connection core holds a thread (and its stack) hostage
//! for every open socket, so a few hundred idle clients exhaust the pool
//! while zero compiles run. Here sockets are non-blocking and registered
//! with epoll (or `poll(2)` as a portable fallback); the reactor thread
//! owns all socket I/O and protocol parsing (via [`crate::conn::Conn`]),
//! and hands complete compile jobs to `workers` pool threads through a
//! queue. Completions come back through a wake-list drained after each
//! poll round, woken by a socketpair [`crate::sys::Waker`] — which is also
//! how `shutdown` (the wire op or a signal via
//! [`crate::server::ShutdownHandle`]) interrupts a sleeping reactor with
//! no polling loop anywhere.
//!
//! Connection slots live in a slab; tokens encode `(epoch << 32) | slot+2`
//! so a completion addressed to a closed-and-recycled slot is recognised
//! by its stale epoch and dropped. Back-pressure is interest-driven: a
//! connection with an unflushed response, an in-flight line job, or a
//! maxed-out batch keeps READ interest off and lets the kernel's TCP
//! window throttle the client.

use crate::compile::CachedCompiler;
use crate::conn::{Action, BatchDefaults, Conn, ConnLimits};
use crate::envelope::CompileRequest;
use crate::json as js;
use crate::server::{
    compile_entry_ctx, doc_is_shed, error_response, handle_line_ctx, reject_response,
    shed_response, RequestCtx, ServeOptions,
};
use crate::sys::{Interest, Poller, PollerConfig, Waker};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use vliw_governor::{Admission, DwrrQueue, Governor, Lane};

/// Poller token of the listening socket.
const LISTENER_TOKEN: u64 = 0;
/// Poller token of the wake pipe.
const WAKER_TOKEN: u64 = 1;
/// Most bytes pulled off one socket per readiness event; level-triggered
/// polling re-fires for the rest, so one firehose client cannot starve the
/// other connections.
const READ_BUDGET: usize = 256 * 1024;

fn conn_token(slot: usize, epoch: u32) -> u64 {
    ((epoch as u64) << 32) | (slot as u64 + 2)
}

fn split_token(token: u64) -> (usize, u32) {
    (((token & 0xFFFF_FFFF) as usize) - 2, (token >> 32) as u32)
}

/// Reactor tuning, assembled by the server front-end from `ServerConfig`.
pub(crate) struct ReactorConfig {
    /// Request-level options forwarded to the dispatcher.
    pub opts: ServeOptions,
    /// Compile worker pool size.
    pub workers: usize,
    /// Close connections idle longer than this (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Oversize guard for request lines.
    pub max_line_bytes: usize,
    /// Concurrent connection cap; excess accepts get a typed error.
    pub max_conns: usize,
    /// Use the `poll(2)` backend even where epoll is available.
    pub force_poll: bool,
    /// Resource governor: lane classification, admission policy, and the
    /// memory pool heavy compiles draw budgets from.
    pub governor: Arc<Governor>,
}

/// One streamed batch entry inside a [`Job::Entries`] group.
struct EntryJob {
    gen: u64,
    idx: usize,
    text: String,
    timeout_ms: Option<u64>,
    defaults: Arc<BatchDefaults>,
}

/// A parsed unit of work bound for the worker pool.
enum Job {
    /// One complete stand-alone request line.
    Line {
        slot: usize,
        epoch: u32,
        line: String,
        enqueued: Instant,
    },
    /// A group of streamed batch entries from one connection, executed
    /// sequentially by one worker. Entries that become ready together are
    /// chunked across the pool, so a bulk arrival pays one queue handoff
    /// per worker instead of one per entry, while entries that trickle in
    /// off the wire still dispatch individually.
    Entries {
        slot: usize,
        epoch: u32,
        entries: Vec<EntryJob>,
        enqueued: Instant,
    },
}

/// A finished job's rendered response, routed back by slot+epoch.
enum Done {
    Line {
        slot: usize,
        epoch: u32,
        doc: String,
    },
    Entry {
        slot: usize,
        epoch: u32,
        gen: u64,
        idx: usize,
        doc: Arc<str>,
    },
}

/// The two-lane job queue. Each lane is a deficit-weighted round-robin
/// queue keyed by connection slot, so one client flooding a lane gets one
/// queue's worth of service per rotation instead of the whole pool.
/// `heavy_inflight` counts heavy jobs currently held by workers; it is
/// capped by [`PoolShared::heavy_quota`] so heavy solves can never occupy
/// every worker while interactive requests queue behind them.
struct LaneQueues {
    interactive: DwrrQueue<Job>,
    heavy: DwrrQueue<Job>,
    heavy_inflight: usize,
    /// Consecutive interactive dequeues since a heavy job was last served
    /// while heavy work sat backlogged. Drives [`serve_heavy_first`].
    interactive_streak: u32,
}

/// After this many consecutive interactive dequeues, a backlogged heavy job
/// is served first. Strict interactive priority would let an *admitted*
/// heavy job — one the governor already granted memory — wait unboundedly
/// behind a steady interactive stream; letting one heavy job through every
/// ninth dequeue bounds that wait while keeping interactive latency
/// dominated by the interactive lane.
const HEAVY_AGING_RATIO: u32 = 8;

/// Whether a worker should try the heavy lane before the interactive one.
/// `heavy_ready` means heavy work is queued *and* under the inflight quota.
fn serve_heavy_first(interactive_streak: u32, heavy_ready: bool) -> bool {
    heavy_ready && interactive_streak >= HEAVY_AGING_RATIO
}

/// State shared between the reactor and the worker threads.
struct PoolShared {
    lanes: Mutex<LaneQueues>,
    cv: Condvar,
    stop: AtomicBool,
    completions: Mutex<Vec<Done>>,
    waker: Arc<Waker>,
    governor: Arc<Governor>,
    /// Most workers that may simultaneously run heavy-lane jobs.
    heavy_quota: usize,
}

impl PoolShared {
    fn submit(&self, lane: Lane, client: u64, cost: u64, job: Job) {
        {
            let mut q = self.lanes.lock().unwrap();
            let gauges = self.governor.gauges();
            match lane {
                Lane::Interactive => {
                    q.interactive.push(client, cost, job);
                    gauges
                        .queue_depth_interactive
                        .store(q.interactive.len() as u64, Ordering::Relaxed);
                }
                Lane::Heavy => {
                    q.heavy.push(client, cost, job);
                    gauges
                        .queue_depth_heavy
                        .store(q.heavy.len() as u64, Ordering::Relaxed);
                }
            }
        }
        self.cv.notify_one();
    }

    /// Heavy-lane queue depth, the admission policy's congestion signal.
    fn heavy_depth(&self) -> usize {
        self.lanes.lock().unwrap().heavy.len()
    }

    fn complete(&self, done: Done) {
        let was_empty = {
            let mut c = self.completions.lock().unwrap();
            let was_empty = c.is_empty();
            c.push(done);
            was_empty
        };
        // One wake per drain cycle: while the vec is non-empty a wake is
        // already pending (the reactor swaps the whole vec under the lock,
        // so a push after the swap sees an empty vec and wakes again).
        if was_empty {
            self.waker.wake();
        }
    }
}

fn worker_loop(
    shared: Arc<PoolShared>,
    engine: Arc<CachedCompiler>,
    shutdown: Arc<AtomicBool>,
    opts: ServeOptions,
) {
    loop {
        // Workers prefer the interactive lane, with two carve-outs for
        // heavy work: at most `heavy_quota` heavy jobs run at once (leaving
        // `workers - heavy_quota` threads always answerable to interactive
        // traffic), and after `HEAVY_AGING_RATIO` consecutive interactive
        // dequeues one backlogged heavy job is served first so an admitted
        // heavy job cannot wait forever behind a steady interactive stream.
        let picked = {
            let mut q = shared.lanes.lock().unwrap();
            loop {
                let heavy_ready = q.heavy_inflight < shared.heavy_quota && !q.heavy.is_empty();
                if serve_heavy_first(q.interactive_streak, heavy_ready) {
                    if let Some(j) = q.heavy.pop() {
                        q.heavy_inflight += 1;
                        q.interactive_streak = 0;
                        shared
                            .governor
                            .gauges()
                            .queue_depth_heavy
                            .store(q.heavy.len() as u64, Ordering::Relaxed);
                        break Some((j, Lane::Heavy));
                    }
                }
                if let Some(j) = q.interactive.pop() {
                    q.interactive_streak = q.interactive_streak.saturating_add(1);
                    shared
                        .governor
                        .gauges()
                        .queue_depth_interactive
                        .store(q.interactive.len() as u64, Ordering::Relaxed);
                    break Some((j, Lane::Interactive));
                }
                if q.heavy_inflight < shared.heavy_quota {
                    if let Some(j) = q.heavy.pop() {
                        q.heavy_inflight += 1;
                        q.interactive_streak = 0;
                        shared
                            .governor
                            .gauges()
                            .queue_depth_heavy
                            .store(q.heavy.len() as u64, Ordering::Relaxed);
                        break Some((j, Lane::Heavy));
                    }
                }
                if shared.stop.load(Ordering::Acquire) {
                    break None;
                }
                q = shared.cv.wait(q).unwrap();
            }
        };
        let Some((job, lane)) = picked else { return };
        match job {
            Job::Line {
                slot,
                epoch,
                line,
                enqueued,
            } => {
                let wait = enqueued.elapsed();
                engine.stats().observe_queue_us(wait.as_micros() as u64);
                let ctx = RequestCtx {
                    queue_wait: wait,
                    lane: Some(lane),
                    governor: Some(Arc::clone(&shared.governor)),
                };
                let served = Instant::now();
                let doc = handle_line_ctx(&line, &engine, &shutdown, opts, &ctx).render();
                // A shed renders in microseconds; feeding that to the
                // classifier would demote genuinely heavy shapes into the
                // interactive lane.
                if !doc_is_shed(&doc) {
                    shared
                        .governor
                        .observe_service(&line, lane, served.elapsed());
                }
                shared.complete(Done::Line { slot, epoch, doc });
            }
            Job::Entries {
                slot,
                epoch,
                entries,
                enqueued,
            } => {
                let wait = enqueued.elapsed();
                engine.stats().observe_queue_us(wait.as_micros() as u64);
                let ctx = RequestCtx {
                    queue_wait: wait,
                    lane: Some(lane),
                    governor: Some(Arc::clone(&shared.governor)),
                };
                for e in entries {
                    let served = Instant::now();
                    let doc = run_entry(&engine, opts, &e.text, e.timeout_ms, &e.defaults, &ctx);
                    if !doc_is_shed(&doc) {
                        shared
                            .governor
                            .observe_service(&e.text, lane, served.elapsed());
                    }
                    shared.complete(Done::Entry {
                        slot,
                        epoch,
                        gen: e.gen,
                        idx: e.idx,
                        doc,
                    });
                }
            }
        }
        if lane == Lane::Heavy {
            {
                let mut q = shared.lanes.lock().unwrap();
                q.heavy_inflight -= 1;
            }
            // A queued heavy job may be runnable now that a slot freed.
            shared.cv.notify_one();
        }
    }
}

/// Compile one streamed batch entry into its rendered slot document.
/// Per-entry failures (parse or compile) fail that entry alone, matching
/// the tree batch handler's contract.
fn run_entry(
    engine: &Arc<CachedCompiler>,
    opts: ServeOptions,
    text: &str,
    timeout_ms: Option<u64>,
    defaults: &BatchDefaults,
    ctx: &RequestCtx,
) -> Arc<str> {
    let entry = match js::parse_json(text) {
        Ok(v) => v,
        Err(e) => {
            engine.stats().error();
            return error_response(e.to_string()).render().into();
        }
    };
    let resp = match CompileRequest::take_from_json(
        entry,
        defaults.machine.as_deref(),
        defaults.config.as_deref(),
    ) {
        Ok(req) => {
            let timeout = timeout_ms
                .map(Duration::from_millis)
                .unwrap_or(opts.default_timeout);
            compile_entry_ctx(engine, &req, timeout, "compile", ctx)
        }
        Err(m) => {
            engine.stats().error();
            error_response(m)
        }
    };
    match resp {
        js::Json::Raw(doc) => doc,
        other => other.render().into(),
    }
}

struct Slot {
    stream: TcpStream,
    conn: Conn,
    epoch: u32,
    interest: Interest,
}

struct Reactor {
    poller: Poller,
    listener: TcpListener,
    engine: Arc<CachedCompiler>,
    shutdown: Arc<AtomicBool>,
    pool: Arc<PoolShared>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    next_epoch: u32,
    live: usize,
    limits: ConnLimits,
    /// Pool size; sizes the entry-group chunking in [`Reactor::drive`].
    workers: usize,
    idle_timeout: Option<Duration>,
    max_conns: usize,
    draining: bool,
    /// Lane classification and admission policy for incoming requests.
    governor: Arc<Governor>,
}

/// Run the reactor core on `listener` until a shutdown is signalled and
/// every in-flight connection drains. Blocks the calling thread.
pub(crate) fn run(
    listener: TcpListener,
    engine: Arc<CachedCompiler>,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Waker>,
    config: ReactorConfig,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut poller = Poller::with_config(PollerConfig {
        force_poll: config.force_poll,
    })?;
    poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
    poller.register(waker.fd(), WAKER_TOKEN, Interest::READ)?;
    let workers = config.workers.max(1);
    let pool = Arc::new(PoolShared {
        lanes: Mutex::new(LaneQueues {
            interactive: DwrrQueue::new(1),
            heavy: DwrrQueue::new(1),
            heavy_inflight: 0,
            interactive_streak: 0,
        }),
        cv: Condvar::new(),
        stop: AtomicBool::new(false),
        completions: Mutex::new(Vec::new()),
        waker: Arc::clone(&waker),
        governor: Arc::clone(&config.governor),
        heavy_quota: config.governor.heavy_workers().clamp(1, workers),
    });
    let handles: Vec<_> = (0..workers)
        .map(|i| {
            let shared = Arc::clone(&pool);
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            let opts = config.opts;
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(shared, engine, shutdown, opts))
                .expect("spawn worker thread")
        })
        .collect();

    let mut reactor = Reactor {
        poller,
        listener,
        engine,
        shutdown,
        pool: Arc::clone(&pool),
        slots: Vec::new(),
        free: Vec::new(),
        next_epoch: 0,
        live: 0,
        limits: ConnLimits {
            opts: config.opts,
            max_line_bytes: config.max_line_bytes,
        },
        workers,
        idle_timeout: config.idle_timeout,
        max_conns: config.max_conns.max(1),
        draining: false,
        governor: Arc::clone(&config.governor),
    };
    let result = reactor.event_loop(&waker);

    // Stop the pool: jobs for closed connections would be dropped on
    // completion anyway, so clear them instead of compiling into the void.
    {
        let mut q = pool.lanes.lock().unwrap();
        q.interactive.clear();
        q.heavy.clear();
    }
    pool.stop.store(true, Ordering::Release);
    pool.cv.notify_all();
    for h in handles {
        let _ = h.join();
    }
    reactor.engine.flush();
    result
}

impl Reactor {
    fn event_loop(&mut self, waker: &Waker) -> io::Result<()> {
        let mut events = Vec::with_capacity(128);
        loop {
            // With no idle timeout the loop sleeps until a socket or the
            // waker fires; with one it ticks often enough to sweep.
            let timeout = if self.draining {
                Some(Duration::from_millis(100))
            } else {
                self.idle_timeout
                    .map(|t| (t / 4).clamp(Duration::from_millis(10), Duration::from_secs(1)))
            };
            self.poller.wait(&mut events, timeout)?;
            let round = std::mem::take(&mut events);
            for ev in &round {
                match ev.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => waker.drain(),
                    token => {
                        let (slot, epoch) = split_token(token);
                        let valid = self
                            .slots
                            .get(slot)
                            .and_then(Option::as_ref)
                            .is_some_and(|s| s.epoch == epoch);
                        if !valid {
                            continue;
                        }
                        if ev.hangup && !ev.readable && !ev.writable {
                            // Pure error/hangup with nothing to read: the
                            // peer is gone and nothing more can flush.
                            self.close(slot);
                            continue;
                        }
                        if ev.readable {
                            self.on_readable(slot);
                        }
                        if ev.writable {
                            self.settle(slot);
                        }
                    }
                }
            }
            events = round;
            self.drain_completions();
            if !self.draining && self.shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            self.sweep_idle();
            if self.draining && self.live == 0 {
                return Ok(());
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let (stream, _addr) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // transient (e.g. peer reset mid-accept)
            };
            self.engine.stats().accept();
            if self.live >= self.max_conns || self.draining {
                self.engine.stats().conn_rejected();
                // Best-effort courtesy error on the still-blocking socket;
                // a full send buffer on a brand-new connection is not worth
                // waiting for.
                let mut stream = stream;
                let _ = stream.set_nonblocking(true);
                let doc = error_response("server at connection capacity").render();
                let _ = stream.write_all(doc.as_bytes());
                let _ = stream.write_all(b"\n");
                continue; // drop => close
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let slot = self.free.pop().unwrap_or_else(|| {
                self.slots.push(None);
                self.slots.len() - 1
            });
            let epoch = self.next_epoch;
            self.next_epoch = self.next_epoch.wrapping_add(1);
            let token = conn_token(slot, epoch);
            if self
                .poller
                .register(stream.as_raw_fd(), token, Interest::READ)
                .is_err()
            {
                self.free.push(slot);
                continue;
            }
            self.slots[slot] = Some(Slot {
                stream,
                conn: Conn::new(),
                epoch,
                interest: Interest::READ,
            });
            self.live += 1;
        }
    }

    fn on_readable(&mut self, idx: usize) {
        let mut scratch = [0u8; 64 * 1024];
        let mut taken = 0usize;
        loop {
            let Some(slot) = self.slots[idx].as_mut() else {
                return;
            };
            match slot.stream.read(&mut scratch) {
                Ok(0) => {
                    slot.conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    slot.conn.push_bytes(&scratch[..n]);
                    taken += n;
                    if taken >= READ_BUDGET {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
        self.drive(idx);
    }

    /// Run the connection's state machine and dispatch the work it yields,
    /// then flush, close, and recompute poller interest as appropriate.
    fn drive(&mut self, idx: usize) {
        loop {
            let actions = {
                let stats = self.engine.stats();
                let Some(slot) = self.slots[idx].as_mut() else {
                    return;
                };
                slot.conn.advance(&self.limits, stats)
            };
            if actions.is_empty() {
                break;
            }
            let epoch = match self.slots[idx].as_ref() {
                Some(s) => s.epoch,
                None => return,
            };
            let mut group_interactive: Vec<EntryJob> = Vec::new();
            let mut group_heavy: Vec<EntryJob> = Vec::new();
            for action in actions {
                match action {
                    Action::Line(line) => {
                        let lane = self.governor.classify(&line);
                        match self.governor.admit(lane, self.pool.heavy_depth()) {
                            Admission::Admit => {
                                if let Some(s) = self.slots[idx].as_mut() {
                                    s.conn.busy = true;
                                }
                                self.pool.submit(
                                    lane,
                                    idx as u64,
                                    1,
                                    Job::Line {
                                        slot: idx,
                                        epoch,
                                        line,
                                        enqueued: Instant::now(),
                                    },
                                );
                            }
                            // Shed/reject on the reactor thread: the typed
                            // response goes straight onto the connection
                            // without touching a worker or the pool.
                            Admission::Shed { retry_after_ms } => {
                                if let Some(s) = self.slots[idx].as_mut() {
                                    s.conn.busy = true;
                                    s.conn
                                        .on_line_response(&shed_response(retry_after_ms).render());
                                }
                            }
                            Admission::Reject => {
                                if let Some(s) = self.slots[idx].as_mut() {
                                    s.conn.busy = true;
                                    s.conn.on_line_response(&reject_response().render());
                                }
                            }
                        }
                    }
                    Action::Entry {
                        gen,
                        idx: entry_idx,
                        text,
                        timeout_ms,
                        defaults,
                    } => {
                        let lane = self.governor.classify(&text);
                        // Count this round's still-ungrouped heavy entries
                        // toward the depth the policy sees, since they are
                        // only enqueued after the loop.
                        let depth = self.pool.heavy_depth() + group_heavy.len();
                        match self.governor.admit(lane, depth) {
                            Admission::Admit => {
                                let e = EntryJob {
                                    gen,
                                    idx: entry_idx,
                                    text,
                                    timeout_ms,
                                    defaults,
                                };
                                match lane {
                                    Lane::Interactive => group_interactive.push(e),
                                    Lane::Heavy => group_heavy.push(e),
                                }
                            }
                            Admission::Shed { retry_after_ms } => {
                                if let Some(s) = self.slots[idx].as_mut() {
                                    s.conn.on_entry_result(
                                        gen,
                                        entry_idx,
                                        shed_response(retry_after_ms).render().into(),
                                    );
                                }
                            }
                            Admission::Reject => {
                                if let Some(s) = self.slots[idx].as_mut() {
                                    s.conn.on_entry_result(
                                        gen,
                                        entry_idx,
                                        reject_response().render().into(),
                                    );
                                }
                            }
                        }
                    }
                    Action::CloseAfterFlush => {} // `closing` is already set
                }
            }
            self.submit_entry_group(idx, epoch, Lane::Interactive, group_interactive);
            self.submit_entry_group(idx, epoch, Lane::Heavy, group_heavy);
        }
        self.settle(idx);
    }

    /// Chunk one lane's ready entries across that lane's workers: enough
    /// jobs to occupy every worker the lane may hold, as few queue
    /// handoffs as that allows.
    fn submit_entry_group(&self, idx: usize, epoch: u32, lane: Lane, group: Vec<EntryJob>) {
        if group.is_empty() {
            return;
        }
        let lane_workers = match lane {
            Lane::Interactive => self.workers,
            Lane::Heavy => self.pool.heavy_quota,
        };
        let jobs = lane_workers.max(1).min(group.len());
        let per = group.len().div_ceil(jobs);
        let mut it = group.into_iter();
        loop {
            let chunk: Vec<EntryJob> = it.by_ref().take(per).collect();
            if chunk.is_empty() {
                break;
            }
            // DWRR cost = entry count, so a bulk batch pays for its size.
            let cost = chunk.len() as u64;
            self.pool.submit(
                lane,
                idx as u64,
                cost,
                Job::Entries {
                    slot: idx,
                    epoch,
                    entries: chunk,
                    enqueued: Instant::now(),
                },
            );
        }
    }

    /// Flush pending response bytes, close if the connection is finished,
    /// otherwise reconcile poller interest with the connection's state.
    fn settle(&mut self, idx: usize) {
        self.try_flush(idx);
        let Some(slot) = self.slots[idx].as_ref() else {
            return;
        };
        let conn = &slot.conn;
        let flushed = !conn.has_pending_write();
        let finished =
            conn.closing || ((conn.peer_closed || self.draining) && !conn.waiting_on_server());
        if finished && flushed {
            self.close(idx);
            return;
        }
        let want = Interest {
            readable: !self.draining && conn.wants_read(),
            writable: conn.has_pending_write(),
        };
        if want != slot.interest {
            let fd = slot.stream.as_raw_fd();
            let token = conn_token(idx, slot.epoch);
            if self.poller.reregister(fd, token, want).is_err() {
                self.close(idx);
                return;
            }
            if let Some(s) = self.slots[idx].as_mut() {
                s.interest = want;
            }
        }
    }

    fn try_flush(&mut self, idx: usize) {
        loop {
            let Some(slot) = self.slots[idx].as_mut() else {
                return;
            };
            let Some(bytes) = slot.conn.pending_write() else {
                return;
            };
            match slot.stream.write(bytes) {
                Ok(0) => {
                    self.close(idx);
                    return;
                }
                Ok(n) => {
                    slot.conn.consume_written(n);
                    slot.conn.note_activity();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    fn close(&mut self, idx: usize) {
        if let Some(slot) = self.slots[idx].take() {
            let _ = self.poller.deregister(slot.stream.as_raw_fd());
            self.free.push(idx);
            self.live -= 1;
            // `slot.stream` drops here, closing the fd after deregistration.
        }
    }

    /// Route finished jobs back to their connections; stale epochs (the
    /// slot was closed and possibly recycled) and stale batch generations
    /// are dropped on the floor.
    fn drain_completions(&mut self) {
        let done: Vec<Done> = std::mem::take(&mut *self.pool.completions.lock().unwrap());
        for d in done {
            let (slot_idx, epoch) = match &d {
                Done::Line { slot, epoch, .. } | Done::Entry { slot, epoch, .. } => (*slot, *epoch),
            };
            let live = self
                .slots
                .get_mut(slot_idx)
                .and_then(Option::as_mut)
                .filter(|s| s.epoch == epoch);
            let Some(slot) = live else { continue };
            match d {
                Done::Line { doc, .. } => slot.conn.on_line_response(&doc),
                Done::Entry { gen, idx, doc, .. } => slot.conn.on_entry_result(gen, idx, doc),
            }
            slot.conn.note_activity();
            self.drive(slot_idx);
        }
    }

    /// Shutdown observed: stop accepting, let in-flight work finish, flush
    /// and close everything else.
    fn begin_drain(&mut self) {
        self.draining = true;
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        for idx in 0..self.slots.len() {
            if self.slots[idx].is_some() {
                self.settle(idx);
            }
        }
    }

    /// Close connections idle past the configured timeout. Connections the
    /// *server* owes work to are exempt — the slowness is ours. A closing
    /// connection that still cannot flush a tick later is dropped hard.
    fn sweep_idle(&mut self) {
        let Some(limit) = self.idle_timeout else {
            return;
        };
        for idx in 0..self.slots.len() {
            enum Verdict {
                Keep,
                Courtesy,
                Hard,
            }
            let verdict = match self.slots[idx].as_ref() {
                Some(s)
                    if !s.conn.waiting_on_server() && s.conn.last_activity.elapsed() > limit =>
                {
                    if s.conn.closing {
                        Verdict::Hard
                    } else {
                        Verdict::Courtesy
                    }
                }
                _ => Verdict::Keep,
            };
            match verdict {
                Verdict::Keep => {}
                Verdict::Hard => self.close(idx),
                Verdict::Courtesy => {
                    self.engine.stats().idle_close();
                    if let Some(s) = self.slots[idx].as_mut() {
                        s.conn.fail_and_close("idle timeout: closing connection");
                    }
                    self.settle(idx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{serve_heavy_first, HEAVY_AGING_RATIO};

    #[test]
    fn interactive_wins_until_the_streak_ages() {
        for streak in 0..HEAVY_AGING_RATIO {
            assert!(!serve_heavy_first(streak, true));
        }
        assert!(serve_heavy_first(HEAVY_AGING_RATIO, true));
        assert!(serve_heavy_first(HEAVY_AGING_RATIO + 100, true));
    }

    #[test]
    fn aging_never_fires_without_ready_heavy_work() {
        // Quota exhausted or an empty heavy queue both clear `heavy_ready`;
        // the streak alone must never divert a worker.
        assert!(!serve_heavy_first(HEAVY_AGING_RATIO, false));
        assert!(!serve_heavy_first(u32::MAX, false));
    }

    #[test]
    fn heavy_wait_is_bounded_under_interactive_flood() {
        // Simulate the worker pick loop's streak bookkeeping with both
        // lanes permanently backlogged: heavy must be served at least once
        // every `HEAVY_AGING_RATIO + 1` dequeues, so an admitted heavy job
        // waits a bounded number of service slots, never unboundedly.
        let mut streak = 0u32;
        let mut since_heavy = 0u32;
        for _ in 0..1000 {
            if serve_heavy_first(streak, true) {
                streak = 0;
                since_heavy = 0;
            } else {
                streak += 1;
                since_heavy += 1;
            }
            assert!(since_heavy <= HEAVY_AGING_RATIO);
        }
    }
}
