//! Per-connection protocol state machine for the reactor core.
//!
//! A [`Conn`] owns a connection's buffered wire bytes and pending response
//! bytes but never touches a socket or the compile engine: the reactor
//! feeds it raw bytes ([`Conn::push_bytes`]), asks it to make progress
//! ([`Conn::advance`]), and gets back [`Action`]s describing work to
//! dispatch. That split keeps every protocol edge case — partial lines,
//! pipelined requests, streamed batches, oversized lines — unit-testable
//! without sockets or threads.
//!
//! The interesting state is the **streamed batch**. A canonical
//! `compile_batch` line (`op` first, `requests` last) is recognised from
//! its first bytes; the control fields are parsed as they arrive, and each
//! entry of `requests` is handed to the compile workers the moment its
//! closing brace lands — entry `k` compiles while entry `k+1` is still on
//! the wire. Entry dispatch stops while `inflight == cap`, which (via
//! [`Conn::wants_read`]) pauses read interest and lets TCP back-pressure
//! throttle a fast client. Results come back out of order and are
//! reassembled into request-order slots; the aggregate response renders
//! once the wire side is fully parsed and every slot is filled.
//!
//! Lines that cannot take the streaming path (non-canonical field order,
//! unknown control fields) fall back to whole-line accumulation and are
//! served by the ordinary dispatcher, exactly as the thread-pool core
//! serves them.

use crate::json::{self as js, Json, Scan};
use crate::server::{error_response, ServeOptions};
use crate::stats::StatsRegistry;
use std::sync::Arc;
use std::time::Instant;

/// The exact first bytes of a canonical batch line (matching the check in
/// `handle_line`, so both cores agree on what is streamable).
const BATCH_PREFIX: &[u8] = b"{\"op\":\"compile_batch\"";

/// Per-connection parsing limits and dispatch knobs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConnLimits {
    /// Request-level options (default timeout, batch fan-out cap).
    pub opts: ServeOptions,
    /// Longest tolerated request line / unconsumed residue, in bytes.
    pub max_line_bytes: usize,
}

/// Batch-level defaults shared by every entry job of one batch.
#[derive(Debug, Default)]
pub(crate) struct BatchDefaults {
    /// `defaults.machine`, spliced into entries that omit `machine`.
    pub machine: Option<String>,
    /// `defaults.config`, spliced into entries that omit `config`.
    pub config: Option<String>,
}

/// Work the state machine hands back to the reactor.
#[derive(Debug)]
pub(crate) enum Action {
    /// A complete stand-alone request line (trimmed, non-empty). At most
    /// one per [`Conn::advance`] call: the reactor either answers it inline
    /// or marks the connection busy and dispatches it to a worker.
    Line(String),
    /// One complete batch entry to compile into result slot `idx` of batch
    /// generation `gen` (stale generations are dropped on completion).
    Entry {
        /// Batch generation the entry belongs to.
        gen: u64,
        /// Result slot index, in request order.
        idx: usize,
        /// The entry's raw JSON text.
        text: String,
        /// Batch-level `timeout_ms`, if the client sent one.
        timeout_ms: Option<u64>,
        /// Batch-level defaults for entries omitting machine/config.
        defaults: Arc<BatchDefaults>,
    },
    /// A fatal guard tripped (oversized line); the typed error response is
    /// already queued — flush it, then close the connection.
    CloseAfterFlush,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Accumulating a line; still deciding whether it streams as a batch.
    Line,
    /// The current line cannot stream; wait for its newline and emit whole.
    WholeLine,
    /// Streaming a canonical batch body (state in `Conn::batch`).
    Batch,
    /// A batch aborted mid-line: the error response is queued; discard wire
    /// bytes until the terminating newline, then resume `Line`.
    DrainLine,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Inside `requests`, expecting an entry value or `]`.
    Entry,
    /// After an entry, expecting `,` or `]`.
    Separator,
    /// After `]`, expecting `}` and the line's newline.
    Tail,
    /// Wire side fully parsed; waiting for outstanding entry results.
    Await,
}

#[derive(Debug)]
struct BatchState {
    phase: Phase,
    timeout_ms: Option<u64>,
    /// In-flight entry cap: `min(parallelism, batch_parallelism)`. The cap
    /// deliberately exceeds the worker count so the queue stays non-empty
    /// and a worker can start the next entry without waiting for the
    /// reactor to observe the previous completion first.
    cap: usize,
    defaults: Arc<BatchDefaults>,
    next_idx: usize,
    /// Request-ordered result slots; `None` while the entry is compiling.
    results: Vec<Option<Arc<str>>>,
    done: usize,
    inflight: usize,
    /// Entry count, known once `]` is parsed.
    total: Option<usize>,
}

/// Outcome of one header-parse attempt over buffered (possibly truncated)
/// bytes.
enum Header {
    /// Undecidable yet; wait for more bytes.
    NeedMore,
    /// Not a canonical streaming batch; serve the whole line normally.
    Fallback,
    /// A batch-level protocol error; respond and drain the line.
    Error(Json),
    /// Canonical: control fields parsed, `requests` array opened.
    Commit {
        /// Bytes consumed through the `[` of `requests`.
        consumed: usize,
        state: BatchState,
    },
}

/// One connection's protocol state.
pub(crate) struct Conn {
    /// Unconsumed wire bytes.
    buf: Vec<u8>,
    /// Pending response bytes.
    out: Vec<u8>,
    /// How much of `out` has been written to the socket.
    out_pos: usize,
    mode: Mode,
    batch: Option<BatchState>,
    /// A stand-alone line job is in flight on a worker.
    pub(crate) busy: bool,
    /// Close once `out` drains.
    pub(crate) closing: bool,
    /// The peer half-closed; finish outstanding work, flush, then close.
    pub(crate) peer_closed: bool,
    /// Last wire activity (read bytes or write progress), for idle sweeps.
    pub(crate) last_activity: Instant,
    /// Batch generation; bumped on abort/finish so late entry results from
    /// a dead batch are dropped.
    gen: u64,
}

fn push_doc(out: &mut Vec<u8>, doc: &Json) {
    out.extend_from_slice(doc.render().as_bytes());
    out.push(b'\n');
}

fn find_newline(buf: &[u8]) -> Option<usize> {
    buf.iter().position(|&b| b == b'\n')
}

impl Conn {
    pub(crate) fn new() -> Conn {
        Conn {
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            mode: Mode::Line,
            batch: None,
            busy: false,
            closing: false,
            peer_closed: false,
            last_activity: Instant::now(),
            gen: 0,
        }
    }

    /// Buffer freshly read wire bytes.
    pub(crate) fn push_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
        self.last_activity = Instant::now();
    }

    /// Mark non-read activity (write progress) for the idle sweep.
    pub(crate) fn note_activity(&mut self) {
        self.last_activity = Instant::now();
    }

    /// Response bytes not yet written, if any.
    pub(crate) fn pending_write(&self) -> Option<&[u8]> {
        let rest = &self.out[self.out_pos..];
        (!rest.is_empty()).then_some(rest)
    }

    /// Whether any response bytes await the socket.
    pub(crate) fn has_pending_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Record `n` response bytes as written.
    pub(crate) fn consume_written(&mut self, n: usize) {
        self.out_pos += n;
        debug_assert!(self.out_pos <= self.out.len());
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
    }

    /// Whether the reactor should keep READ interest: back-pressure pauses
    /// reads while a response is unflushed, a line job is in flight, or a
    /// batch has no free in-flight slot.
    pub(crate) fn wants_read(&self) -> bool {
        if self.closing || self.peer_closed || self.busy || self.has_pending_write() {
            return false;
        }
        match self.mode {
            Mode::Line | Mode::WholeLine | Mode::DrainLine => true,
            Mode::Batch => match &self.batch {
                Some(st) => st.phase != Phase::Await && st.inflight < st.cap,
                None => true,
            },
        }
    }

    /// Whether the server itself owes this connection work (a line job or
    /// batch entries in flight). Such connections are exempt from the idle
    /// sweep — the slowness is ours, not the client's.
    pub(crate) fn waiting_on_server(&self) -> bool {
        self.busy || self.batch.as_ref().is_some_and(|st| st.inflight > 0)
    }

    /// Queue a rendered response for a stand-alone line and clear `busy`.
    pub(crate) fn on_line_response(&mut self, doc: &str) {
        self.out.extend_from_slice(doc.as_bytes());
        self.out.push(b'\n');
        self.busy = false;
    }

    /// Queue a typed error response and close once it flushes.
    pub(crate) fn fail_and_close(&mut self, message: &str) {
        push_doc(&mut self.out, &error_response(message));
        self.closing = true;
    }

    /// Deliver one batch entry's rendered result. Stale generations (from
    /// an aborted batch) are dropped. Call [`Conn::advance`] afterwards:
    /// the freed in-flight slot may unblock parsing, and the last result
    /// triggers the aggregate response.
    pub(crate) fn on_entry_result(&mut self, gen: u64, idx: usize, doc: Arc<str>) {
        if gen != self.gen {
            return;
        }
        if let Some(st) = self.batch.as_mut() {
            if let Some(slot @ None) = st.results.get_mut(idx) {
                *slot = Some(doc);
                st.done += 1;
                st.inflight -= 1;
            }
        }
    }

    /// Drive the state machine over the buffered bytes, returning dispatch
    /// actions. Stops at the first [`Action::Line`] (the reactor decides
    /// how to serve it before more lines are parsed) and when more input,
    /// a free in-flight slot, or an entry result is needed.
    pub(crate) fn advance(&mut self, limits: &ConnLimits, stats: &StatsRegistry) -> Vec<Action> {
        let mut actions = Vec::new();
        loop {
            if self.closing {
                break;
            }
            let progressed = match self.mode {
                Mode::Line => self.step_line(limits, stats, &mut actions),
                Mode::WholeLine => self.step_whole_line(limits, stats, &mut actions),
                Mode::Batch => self.step_batch(limits, stats, &mut actions),
                Mode::DrainLine => self.step_drain(),
            };
            if matches!(actions.last(), Some(Action::Line(_))) || !progressed {
                break;
            }
        }
        actions
    }

    fn oversize(&mut self, stats: &StatsRegistry, actions: &mut Vec<Action>) {
        stats.oversize_close();
        push_doc(
            &mut self.out,
            &error_response("request line exceeds the server's length limit"),
        );
        self.closing = true;
        actions.push(Action::CloseAfterFlush);
    }

    fn step_line(
        &mut self,
        limits: &ConnLimits,
        stats: &StatsRegistry,
        actions: &mut Vec<Action>,
    ) -> bool {
        if self.busy {
            return false;
        }
        // Blank space between lines (including the newlines themselves) is
        // skipped, mirroring the thread-pool core's trim-and-skip.
        let lead = self
            .buf
            .iter()
            .take_while(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
            .count();
        if lead > 0 {
            self.buf.drain(..lead);
        }
        if self.buf.is_empty() {
            return false;
        }
        let probe = self.buf.len().min(BATCH_PREFIX.len());
        if self.buf[..probe] != BATCH_PREFIX[..probe] {
            self.mode = Mode::WholeLine;
            return true;
        }
        if self.buf.len() < BATCH_PREFIX.len() {
            return false; // prefix still undecided — a handful of bytes
        }
        let header = match find_newline(&self.buf) {
            // The whole line is here: every outcome is decidable now.
            Some(i) => header_of(&self.buf[..i], limits, true),
            None => header_of(&self.buf, limits, false),
        };
        match header {
            Header::NeedMore => {
                if self.buf.len() > limits.max_line_bytes {
                    self.oversize(stats, actions);
                    return true;
                }
                false
            }
            Header::Fallback => {
                self.mode = Mode::WholeLine;
                true
            }
            Header::Error(doc) => {
                stats.error();
                push_doc(&mut self.out, &doc);
                self.mode = Mode::DrainLine;
                true
            }
            Header::Commit { consumed, state } => {
                self.buf.drain(..consumed);
                stats.batch();
                self.batch = Some(state);
                self.mode = Mode::Batch;
                true
            }
        }
    }

    fn step_whole_line(
        &mut self,
        limits: &ConnLimits,
        stats: &StatsRegistry,
        actions: &mut Vec<Action>,
    ) -> bool {
        if self.busy {
            return false;
        }
        match find_newline(&self.buf) {
            None => {
                if self.buf.len() > limits.max_line_bytes {
                    self.oversize(stats, actions);
                    return true;
                }
                false
            }
            Some(i) => {
                let line = String::from_utf8_lossy(&self.buf[..i]).trim().to_string();
                self.buf.drain(..=i);
                self.mode = Mode::Line;
                if !line.is_empty() {
                    actions.push(Action::Line(line));
                }
                true
            }
        }
    }

    fn step_batch(
        &mut self,
        limits: &ConnLimits,
        stats: &StatsRegistry,
        actions: &mut Vec<Action>,
    ) -> bool {
        enum Fate {
            More,
            Stall,
            StallMaybeOversize,
            Abort { doc: Json, line_consumed: bool },
            Finish,
        }
        let gen = self.gen;
        let fate = {
            let Some(st) = self.batch.as_mut() else {
                self.mode = Mode::Line;
                return true;
            };
            let buf = &mut self.buf;
            match st.phase {
                Phase::Entry => {
                    let mut pos = 0;
                    js::skip_ws(buf, &mut pos);
                    if pos > 0 {
                        buf.drain(..pos);
                    }
                    match buf.first() {
                        None => Fate::Stall,
                        Some(b']') => {
                            buf.drain(..1);
                            st.total = Some(st.next_idx);
                            st.phase = Phase::Tail;
                            Fate::More
                        }
                        Some(_) if st.inflight >= st.cap => Fate::Stall,
                        Some(_) => match js::scan_value(buf, 0) {
                            Err(_) => Fate::Abort {
                                doc: error_response("malformed `requests` array"),
                                line_consumed: false,
                            },
                            Ok(Scan::Partial) => Fate::StallMaybeOversize,
                            Ok(Scan::Complete(end)) => {
                                let text = String::from_utf8_lossy(&buf[..end]).into_owned();
                                buf.drain(..end);
                                actions.push(Action::Entry {
                                    gen,
                                    idx: st.next_idx,
                                    text,
                                    timeout_ms: st.timeout_ms,
                                    defaults: Arc::clone(&st.defaults),
                                });
                                st.results.push(None);
                                st.next_idx += 1;
                                st.inflight += 1;
                                st.phase = Phase::Separator;
                                Fate::More
                            }
                        },
                    }
                }
                Phase::Separator => {
                    let mut pos = 0;
                    js::skip_ws(buf, &mut pos);
                    if pos > 0 {
                        buf.drain(..pos);
                    }
                    match buf.first() {
                        None => Fate::Stall,
                        Some(b',') => {
                            buf.drain(..1);
                            st.phase = Phase::Entry;
                            Fate::More
                        }
                        Some(b']') => {
                            buf.drain(..1);
                            st.total = Some(st.next_idx);
                            st.phase = Phase::Tail;
                            Fate::More
                        }
                        Some(_) => Fate::Abort {
                            doc: error_response("expected `,` or `]` in `requests`"),
                            line_consumed: false,
                        },
                    }
                }
                Phase::Tail => match find_newline(buf) {
                    None => Fate::StallMaybeOversize,
                    Some(i) => {
                        let line = &buf[..i];
                        let mut pos = 0;
                        js::skip_ws(line, &mut pos);
                        let fate = if line.get(pos) != Some(&b'}') {
                            Fate::Abort {
                                doc: error_response(
                                    "compile_batch fields after `requests` are not supported",
                                ),
                                line_consumed: true,
                            }
                        } else {
                            pos += 1;
                            js::skip_ws(line, &mut pos);
                            if pos != line.len() {
                                Fate::Abort {
                                    doc: error_response("trailing characters after document"),
                                    line_consumed: true,
                                }
                            } else {
                                st.phase = Phase::Await;
                                Fate::More
                            }
                        };
                        buf.drain(..=i);
                        fate
                    }
                },
                Phase::Await => {
                    if st.total == Some(st.done) {
                        Fate::Finish
                    } else {
                        Fate::Stall
                    }
                }
            }
        };
        match fate {
            Fate::More => true,
            Fate::Stall => false,
            Fate::StallMaybeOversize => {
                if self.buf.len() > limits.max_line_bytes {
                    self.batch = None;
                    self.gen += 1;
                    self.oversize(stats, actions);
                    return true;
                }
                false
            }
            Fate::Abort { doc, line_consumed } => {
                self.batch = None;
                self.gen += 1;
                stats.error();
                push_doc(&mut self.out, &doc);
                self.mode = if line_consumed {
                    Mode::Line
                } else {
                    Mode::DrainLine
                };
                true
            }
            Fate::Finish => {
                let st = self.batch.take().expect("finishing batch state");
                self.gen += 1;
                self.mode = Mode::Line;
                let n = st.results.len();
                let body: usize = st
                    .results
                    .iter()
                    .map(|r| r.as_ref().map_or(0, |d| d.len() + 1))
                    .sum();
                // Same key order the tree handler's sorted-map rendering
                // produces, so clients see one response shape.
                let mut out = String::with_capacity(body + 64);
                out.push_str("{\"n\":");
                out.push_str(&n.to_string());
                out.push_str(",\"ok\":true,\"op\":\"compile_batch\",\"results\":[");
                for (i, slot) in st.results.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(slot.as_deref().expect("all batch slots filled"));
                }
                out.push_str("]}\n");
                self.out.extend_from_slice(out.as_bytes());
                true
            }
        }
    }

    fn step_drain(&mut self) -> bool {
        match find_newline(&self.buf) {
            Some(i) => {
                self.buf.drain(..=i);
                self.mode = Mode::Line;
                true
            }
            None => {
                // Everything buffered belongs to the doomed line.
                self.buf.clear();
                false
            }
        }
    }
}

/// Parse the control-field prefix of a canonical batch line. `strict` means
/// the slice is a complete line (a newline followed it), so parse failures
/// are final; otherwise failures mean "wait for more bytes".
fn header_of(bytes: &[u8], limits: &ConnLimits, strict: bool) -> Header {
    fn undecided(strict: bool) -> Header {
        if strict {
            Header::Fallback
        } else {
            Header::NeedMore
        }
    }
    let mut pos = 0usize;
    js::skip_ws(bytes, &mut pos);
    if js::expect(bytes, &mut pos, b'{').is_err() {
        return undecided(strict);
    }
    let mut timeout_ms: Option<u64> = None;
    let mut requested = limits.opts.batch_parallelism;
    let mut defaults = BatchDefaults::default();
    let mut saw_op = false;
    loop {
        js::skip_ws(bytes, &mut pos);
        if pos >= bytes.len() {
            return undecided(strict);
        }
        let key = match js::parse_key(bytes, &mut pos) {
            Ok(k) => k,
            Err(_) => return undecided(strict),
        };
        js::skip_ws(bytes, &mut pos);
        if js::expect(bytes, &mut pos, b':').is_err() {
            return undecided(strict);
        }
        if key.as_ref() == "requests" {
            if !saw_op {
                return Header::Fallback;
            }
            js::skip_ws(bytes, &mut pos);
            return match bytes.get(pos) {
                None => undecided(strict),
                Some(b'[') => {
                    let cap = requested.min(limits.opts.batch_parallelism).max(1);
                    Header::Commit {
                        consumed: pos + 1,
                        state: BatchState {
                            phase: Phase::Entry,
                            timeout_ms,
                            cap,
                            defaults: Arc::new(defaults),
                            next_idx: 0,
                            results: Vec::new(),
                            done: 0,
                            inflight: 0,
                            total: None,
                        },
                    }
                }
                Some(_) => {
                    Header::Error(error_response("compile_batch op missing `requests` array"))
                }
            };
        }
        // Control values must be complete before they can be interpreted.
        match js::scan_value(bytes, pos) {
            Err(_) | Ok(Scan::Partial) => return undecided(strict),
            Ok(Scan::Complete(_)) => {}
        }
        let value = match js::parse_value(bytes, &mut pos) {
            Ok(v) => v,
            Err(_) => return undecided(strict),
        };
        match key.as_ref() {
            "op" => {
                if value.as_str() != Some("compile_batch") {
                    return Header::Fallback;
                }
                saw_op = true;
            }
            "timeout_ms" => match value.as_f64() {
                Some(ms) if ms >= 0.0 => timeout_ms = Some(ms as u64),
                _ => return Header::Error(error_response("bad `timeout_ms`")),
            },
            "parallelism" => match value.as_f64() {
                Some(p) if p >= 1.0 => requested = p as usize,
                _ => return Header::Error(error_response("bad `parallelism`")),
            },
            "defaults" => {
                defaults = BatchDefaults {
                    machine: value
                        .get("machine")
                        .and_then(Json::as_str)
                        .map(str::to_string),
                    config: value
                        .get("config")
                        .and_then(Json::as_str)
                        .map(str::to_string),
                };
            }
            // Unrecognised control field: let the tree handler decide.
            _ => return Header::Fallback,
        }
        js::skip_ws(bytes, &mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            None => return undecided(strict),
            // The object ended without `requests`; the tree handler
            // reports it.
            Some(_) => return Header::Fallback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn limits() -> ConnLimits {
        ConnLimits {
            opts: ServeOptions {
                default_timeout: Duration::from_secs(10),
                batch_parallelism: 8,
            },
            max_line_bytes: 1 << 20,
        }
    }

    fn out_str(conn: &Conn) -> String {
        String::from_utf8_lossy(conn.pending_write().unwrap_or(b"")).into_owned()
    }

    #[test]
    fn plain_line_emits_once_complete() {
        let (limits, stats) = (limits(), StatsRegistry::new());
        let mut conn = Conn::new();
        let line = b"{\"op\":\"ping\"}\n";
        // Byte-at-a-time: nothing fires until the newline lands.
        for &b in &line[..line.len() - 1] {
            conn.push_bytes(&[b]);
            assert!(conn.advance(&limits, &stats).is_empty());
        }
        conn.push_bytes(b"\n");
        let actions = conn.advance(&limits, &stats);
        assert!(
            matches!(actions.as_slice(), [Action::Line(l)] if l == "{\"op\":\"ping\"}"),
            "{actions:?}"
        );
    }

    #[test]
    fn pipelined_lines_come_one_per_advance() {
        let (limits, stats) = (limits(), StatsRegistry::new());
        let mut conn = Conn::new();
        conn.push_bytes(b"{\"op\":\"ping\"}\n{\"op\":\"stats\"}\n");
        let first = conn.advance(&limits, &stats);
        assert!(matches!(first.as_slice(), [Action::Line(l)] if l.contains("ping")));
        // The reactor answered inline; the next line parses on re-entry.
        conn.on_line_response("{\"ok\":true}");
        let second = conn.advance(&limits, &stats);
        assert!(matches!(second.as_slice(), [Action::Line(l)] if l.contains("stats")));
    }

    #[test]
    fn busy_connection_defers_parsing() {
        let (limits, stats) = (limits(), StatsRegistry::new());
        let mut conn = Conn::new();
        conn.push_bytes(b"{\"op\":\"ping\"}\n");
        conn.busy = true;
        assert!(conn.advance(&limits, &stats).is_empty());
        assert!(!conn.wants_read());
        conn.on_line_response("{\"ok\":true}"); // clears busy
        conn.consume_written(conn.pending_write().unwrap().len());
        assert_eq!(conn.advance(&limits, &stats).len(), 1);
    }

    #[test]
    fn streamed_batch_dispatches_entries_under_cap_and_assembles_in_order() {
        let (limits, stats) = (limits(), StatsRegistry::new());
        let mut conn = Conn::new();
        conn.push_bytes(
            b"{\"op\":\"compile_batch\",\"timeout_ms\":100,\"parallelism\":2,\
              \"defaults\":{\"config\":\"c\",\"machine\":\"m\"},\
              \"requests\":[{\"loop\":\"a\"},{\"loop\":\"b\"},{\"loop\":\"c\"}]}\n",
        );
        // parallelism=2 caps in-flight entries at 2, so only two dispatch now.
        let actions = conn.advance(&limits, &stats);
        let entries: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Entry {
                    gen,
                    idx,
                    text,
                    timeout_ms,
                    defaults,
                } => Some((*gen, *idx, text.clone(), *timeout_ms, Arc::clone(defaults))),
                _ => None,
            })
            .collect();
        assert_eq!(entries.len(), 2, "{actions:?}");
        assert_eq!(entries[0].1, 0);
        assert_eq!(entries[0].2, "{\"loop\":\"a\"}");
        assert_eq!(entries[0].3, Some(100));
        assert_eq!(entries[0].4.machine.as_deref(), Some("m"));
        assert_eq!(entries[0].4.config.as_deref(), Some("c"));
        assert!(!conn.wants_read(), "cap reached: reads pause");
        // Completing slot 1 first exercises out-of-order reassembly and
        // frees budget for the third entry.
        let gen = entries[0].0;
        conn.on_entry_result(gen, 1, Arc::from("{\"r\":1}"));
        let more = conn.advance(&limits, &stats);
        assert!(
            matches!(more.as_slice(), [Action::Entry { idx: 2, .. }]),
            "{more:?}"
        );
        conn.on_entry_result(gen, 0, Arc::from("{\"r\":0}"));
        conn.on_entry_result(gen, 2, Arc::from("{\"r\":2}"));
        assert!(conn.advance(&limits, &stats).is_empty());
        assert_eq!(
            out_str(&conn),
            "{\"n\":3,\"ok\":true,\"op\":\"compile_batch\",\
             \"results\":[{\"r\":0},{\"r\":1},{\"r\":2}]}\n"
        );
        assert_eq!(stats.snapshot().batches, 1);
    }

    #[test]
    fn batch_streams_before_the_line_completes() {
        let (limits, stats) = (limits(), StatsRegistry::new());
        let mut conn = Conn::new();
        // Header plus one complete entry — the `]` is still on the wire.
        conn.push_bytes(b"{\"op\":\"compile_batch\",\"requests\":[{\"loop\":\"a\"},");
        let actions = conn.advance(&limits, &stats);
        assert!(
            matches!(actions.as_slice(), [Action::Entry { idx: 0, .. }]),
            "entry dispatched mid-line: {actions:?}"
        );
        // Rest of the line arrives; result lands; response renders.
        conn.push_bytes(b"{\"loop\":\"b\"}]}\n");
        let actions = conn.advance(&limits, &stats);
        assert!(matches!(actions.as_slice(), [Action::Entry { idx: 1, .. }]));
        conn.on_entry_result(conn.gen, 0, Arc::from("{\"r\":0}"));
        conn.on_entry_result(conn.gen, 1, Arc::from("{\"r\":1}"));
        assert!(conn.advance(&limits, &stats).is_empty());
        assert!(out_str(&conn).starts_with("{\"n\":2,"));
    }

    #[test]
    fn empty_batch_answers_immediately() {
        let (limits, stats) = (limits(), StatsRegistry::new());
        let mut conn = Conn::new();
        conn.push_bytes(b"{\"op\":\"compile_batch\",\"requests\":[]}\n");
        assert!(conn.advance(&limits, &stats).is_empty());
        assert_eq!(
            out_str(&conn),
            "{\"n\":0,\"ok\":true,\"op\":\"compile_batch\",\"results\":[]}\n"
        );
    }

    #[test]
    fn non_canonical_batch_falls_back_to_whole_line() {
        let (limits, stats) = (limits(), StatsRegistry::new());
        let mut conn = Conn::new();
        // `op` is not the first field: not streamable; served as one line.
        conn.push_bytes(b"{\"requests\":[],\"op\":\"compile_batch\"}\n");
        let actions = conn.advance(&limits, &stats);
        assert!(
            matches!(actions.as_slice(), [Action::Line(_)]),
            "{actions:?}"
        );
        // Unknown control field: same fallback.
        conn.on_line_response("{}");
        let mut conn2 = Conn::new();
        conn2.push_bytes(b"{\"op\":\"compile_batch\",\"zzz\":1,\"requests\":[]}\n");
        let actions = conn2.advance(&limits, &stats);
        assert!(
            matches!(actions.as_slice(), [Action::Line(_)]),
            "{actions:?}"
        );
    }

    #[test]
    fn control_fields_after_requests_are_rejected() {
        let (limits, stats) = (limits(), StatsRegistry::new());
        let mut conn = Conn::new();
        conn.push_bytes(b"{\"op\":\"compile_batch\",\"requests\":[],\"timeout_ms\":5}\n");
        assert!(conn.advance(&limits, &stats).is_empty());
        let out = out_str(&conn);
        assert!(out.contains("\"ok\":false"), "{out}");
        assert!(out.contains("after `requests`"), "{out}");
        assert_eq!(stats.snapshot().errors, 1);
        // The connection survives: a later line still parses.
        conn.consume_written(conn.pending_write().unwrap().len());
        conn.push_bytes(b"{\"op\":\"ping\"}\n");
        assert_eq!(conn.advance(&limits, &stats).len(), 1);
    }

    #[test]
    fn bad_timeout_in_header_errors_and_drains_the_line() {
        let (limits, stats) = (limits(), StatsRegistry::new());
        let mut conn = Conn::new();
        conn.push_bytes(b"{\"op\":\"compile_batch\",\"timeout_ms\":-3,\"requests\":[");
        assert!(conn.advance(&limits, &stats).is_empty());
        assert!(out_str(&conn).contains("bad `timeout_ms`"));
        // The rest of the doomed line is discarded; the next line works.
        conn.consume_written(conn.pending_write().unwrap().len());
        conn.push_bytes(b"{\"loop\":\"x\"}]}\n{\"op\":\"ping\"}\n");
        let actions = conn.advance(&limits, &stats);
        assert!(
            matches!(actions.as_slice(), [Action::Line(l)] if l.contains("ping")),
            "{actions:?}"
        );
    }

    #[test]
    fn aborted_batch_drops_stale_entry_results() {
        let (limits, stats) = (limits(), StatsRegistry::new());
        let mut conn = Conn::new();
        conn.push_bytes(b"{\"op\":\"compile_batch\",\"requests\":[{\"loop\":\"a\"},");
        let actions = conn.advance(&limits, &stats);
        let gen = match actions.as_slice() {
            [Action::Entry { gen, .. }] => *gen,
            other => panic!("expected entry, got {other:?}"),
        };
        // Garbage where the next entry should be: batch aborts.
        conn.push_bytes(b":::\n");
        assert!(conn.advance(&limits, &stats).is_empty());
        assert!(out_str(&conn).contains("\"ok\":false"));
        // The late result from the aborted batch is silently dropped.
        conn.on_entry_result(gen, 0, Arc::from("{\"r\":0}"));
        conn.consume_written(conn.pending_write().unwrap().len());
        conn.push_bytes(b"{\"op\":\"ping\"}\n");
        assert_eq!(conn.advance(&limits, &stats).len(), 1);
    }

    #[test]
    fn oversized_line_gets_typed_error_then_close() {
        let (mut limits, stats) = (limits(), StatsRegistry::new());
        limits.max_line_bytes = 64;
        let mut conn = Conn::new();
        conn.push_bytes(&[b'x'; 100]);
        let actions = conn.advance(&limits, &stats);
        assert!(
            matches!(actions.as_slice(), [Action::CloseAfterFlush]),
            "{actions:?}"
        );
        assert!(conn.closing);
        assert!(out_str(&conn).contains("length limit"));
        assert_eq!(stats.snapshot().oversize_closed, 1);
    }

    #[test]
    fn oversized_batch_entry_is_guarded_too() {
        let (mut limits, stats) = (limits(), StatsRegistry::new());
        limits.max_line_bytes = 64;
        let mut conn = Conn::new();
        conn.push_bytes(b"{\"op\":\"compile_batch\",\"requests\":[{\"loop\":\"");
        conn.push_bytes(&[b'y'; 100]);
        let actions = conn.advance(&limits, &stats);
        assert!(matches!(actions.as_slice(), [Action::CloseAfterFlush]));
        assert_eq!(stats.snapshot().oversize_closed, 1);
    }

    #[test]
    fn back_pressure_pauses_reads_while_writes_pend() {
        let mut conn = Conn::new();
        assert!(conn.wants_read());
        conn.on_line_response("{\"ok\":true}");
        assert!(!conn.wants_read(), "unflushed response pauses reads");
        let n = conn.pending_write().unwrap().len();
        conn.consume_written(n);
        assert!(conn.wants_read());
    }
}
