//! Blocking client for the JSON-lines compile protocol.
//!
//! Failures are typed ([`ClientError`]) so callers can distinguish a dead
//! peer (connection refused, reset, or closed — [`ClientError::is_transport`])
//! from a live server rejecting a request. The sharded client's failover
//! path retries transport errors on the next ring successor and surfaces
//! everything else unchanged.

use crate::envelope::{CompileRequest, CompileResult};
use crate::json::{parse_json, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// A connected protocol client. One request/response pair in flight at a
/// time; the connection is reused across calls.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A protocol failure, split by where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The peer is unreachable or hung up: connect failure, a read that
    /// returned 0 bytes, or a broken-pipe/reset write. Distinct from
    /// [`ClientError::Malformed`] so failover can tell "peer down" from
    /// "peer replied garbage".
    Disconnected(String),
    /// Transport-level IO failure other than a disconnect.
    Io(String),
    /// The reply arrived but violated the protocol.
    Malformed(String),
    /// The server processed the request and reported an error.
    Server(String),
    /// The server shed the request under load (`error_kind: "shed"`): the
    /// request is fine, the moment is not. `retry_after_ms` is the
    /// server's backoff hint; [`Client::compile_with_retry`] honors it.
    Shed {
        /// The server's backoff hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// The server rejected the request as permanently over its resource
    /// limits (`error_kind: "rejected"`); retrying cannot help.
    Rejected(String),
    /// The request was invalid before it ever reached the wire (client-side
    /// canonicalisation failure in the sharded path).
    BadRequest(String),
}

impl ClientError {
    /// Whether retrying on another peer could help (the peer, not the
    /// request, is the problem).
    pub fn is_transport(&self) -> bool {
        matches!(self, ClientError::Disconnected(_) | ClientError::Io(_))
    }

    /// Whether retrying the same peer later could help.
    pub fn is_shed(&self) -> bool {
        matches!(self, ClientError::Shed { .. })
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Disconnected(m) => write!(f, "peer disconnected: {m}"),
            ClientError::Io(m) => write!(f, "io error: {m}"),
            ClientError::Malformed(m) => write!(f, "malformed reply: {m}"),
            ClientError::Server(m) => write!(f, "{m}"),
            ClientError::Shed { retry_after_ms } => {
                write!(f, "server overloaded, retry after {retry_after_ms} ms")
            }
            ClientError::Rejected(m) => write!(f, "{m}"),
            ClientError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

fn write_error(e: std::io::Error) -> ClientError {
    match e.kind() {
        std::io::ErrorKind::BrokenPipe
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted
        | std::io::ErrorKind::NotConnected => ClientError::Disconnected(e.to_string()),
        _ => ClientError::Io(e.to_string()),
    }
}

/// A compile response: the result plus how the server satisfied it
/// (`"cache"`, `"compiled"` or `"deduped"`).
#[derive(Debug, Clone, PartialEq)]
pub struct ServedResult {
    /// The artifact set.
    pub result: CompileResult,
    /// The server's `served` label.
    pub served: String,
}

impl ServedResult {
    /// Whether the server answered from its cache.
    pub fn is_cache_hit(&self) -> bool {
        self.served == "cache"
    }
}

fn served_from_entry(entry: &Json) -> Result<ServedResult, String> {
    let result = entry
        .get("result")
        .ok_or("compile response missing `result`")?;
    let result = CompileResult::from_json(result)?;
    let served = entry
        .get("served")
        .and_then(Json::as_str)
        .ok_or("compile response missing `served`")?
        .to_string();
    Ok(ServedResult { result, served })
}

/// Decode one batch response entry into its per-request slot.
fn decode_batch_entry(entry: &Json) -> Result<Result<ServedResult, String>, ClientError> {
    match entry.get("ok").and_then(Json::as_bool) {
        Some(true) => served_from_entry(entry)
            .map(Ok)
            .map_err(ClientError::Malformed),
        Some(false) => Ok(Err(entry
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown server error")
            .to_string())),
        None => Err(ClientError::Malformed("batch entry missing `ok`".into())),
    }
}

/// Decode a canonical batch response by walking the line directly: each
/// entry is parsed, decoded, and dropped before the next, instead of
/// materialising the whole multi-hundred-KB response tree first. Returns
/// `None` when the line doesn't match the canonical ok-envelope shape;
/// the caller re-parses it as a tree for a precise error.
fn decode_batch_stream(line: &str) -> Option<Vec<Result<ServedResult, String>>> {
    use crate::json as js;
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    js::skip_ws(bytes, &mut pos);
    js::expect(bytes, &mut pos, b'{').ok()?;
    let mut ok_flag = false;
    let mut out: Option<Vec<Result<ServedResult, String>>> = None;
    loop {
        js::skip_ws(bytes, &mut pos);
        let key = js::parse_key(bytes, &mut pos).ok()?;
        js::skip_ws(bytes, &mut pos);
        js::expect(bytes, &mut pos, b':').ok()?;
        if key.as_ref() == "results" {
            js::skip_ws(bytes, &mut pos);
            js::expect(bytes, &mut pos, b'[').ok()?;
            let mut v = Vec::new();
            js::skip_ws(bytes, &mut pos);
            if bytes.get(pos) == Some(&b']') {
                pos += 1;
            } else {
                loop {
                    let entry = js::parse_value(bytes, &mut pos).ok()?;
                    v.push(decode_batch_entry(&entry).ok()?);
                    js::skip_ws(bytes, &mut pos);
                    match bytes.get(pos) {
                        Some(b',') => pos += 1,
                        Some(b']') => {
                            pos += 1;
                            break;
                        }
                        _ => return None,
                    }
                }
            }
            out = Some(v);
        } else {
            let value = js::parse_value(bytes, &mut pos).ok()?;
            if key.as_ref() == "ok" {
                ok_flag = value.as_bool()?;
            }
        }
        js::skip_ws(bytes, &mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                pos += 1;
                break;
            }
            _ => return None,
        }
    }
    js::skip_ws(bytes, &mut pos);
    if !ok_flag || pos != bytes.len() {
        return None;
    }
    out
}

/// Spread `ms` to a uniform-ish value in `[75%, 125%)` of itself, seeded
/// from the clock's sub-second nanos (no RNG dependency): enough to
/// de-synchronise shed clients backing off from the same hint.
fn jitter(ms: u64) -> u64 {
    let mut x = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()))
        .unwrap_or(0)
        | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let span = (ms / 2).max(1);
    ms - ms / 4 + x % span
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // One-line request/response turnarounds stall badly under Nagle's
        // algorithm (~40ms delayed-ACK pauses per round trip).
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Write one request line and read back the matching response line.
    fn exchange(&mut self, request: &str) -> Result<String, ClientError> {
        writeln!(self.writer, "{request}").map_err(write_error)?;
        self.writer.flush().map_err(write_error)?;
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                // 0 bytes is EOF, not an empty line: the peer hung up.
                Ok(0) => {
                    return Err(ClientError::Disconnected(
                        "connection closed mid-exchange".into(),
                    ))
                }
                Ok(_) if line.trim().is_empty() => continue,
                Ok(_) => break,
                Err(e) => return Err(write_error(e)),
            }
        }
        Ok(line)
    }

    /// Check a parsed response's `ok` envelope. Typed overload errors
    /// (`error_kind` of `shed`/`rejected`) map to their own variants so
    /// callers can back off or give up instead of treating them as
    /// request failures.
    fn envelope_ok(doc: Json) -> Result<Json, ClientError> {
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(doc),
            Some(false) => {
                let error = doc
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown server error")
                    .to_string();
                Err(match doc.get("error_kind").and_then(Json::as_str) {
                    Some("shed") => ClientError::Shed {
                        retry_after_ms: doc
                            .get("retry_after_ms")
                            .and_then(Json::as_f64)
                            .map(|v| v as u64)
                            .unwrap_or(100),
                    },
                    Some("rejected") => ClientError::Rejected(error),
                    _ => ClientError::Server(error),
                })
            }
            None => Err(ClientError::Malformed("response missing `ok`".into())),
        }
    }

    fn round_trip(&mut self, request: &Json) -> Result<Json, ClientError> {
        let line = self.exchange(&request.render())?;
        let doc = parse_json(line.trim()).map_err(|e| ClientError::Malformed(e.to_string()))?;
        Self::envelope_ok(doc)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.round_trip(&Json::obj([("op", Json::Str("ping".into()))]))
            .map(|_| ())
    }

    /// Submit one compile job. `timeout_ms` bounds this request's wait on
    /// the server side; `None` uses the server default.
    pub fn compile(
        &mut self,
        req: &CompileRequest,
        timeout_ms: Option<u64>,
    ) -> Result<ServedResult, ClientError> {
        let mut pairs = vec![
            ("op", Json::Str("compile".into())),
            ("request", req.to_json()),
        ];
        if let Some(ms) = timeout_ms {
            pairs.push(("timeout_ms", Json::Num(ms as f64)));
        }
        let doc = self.round_trip(&Json::obj(pairs))?;
        served_from_entry(&doc).map_err(ClientError::Malformed)
    }

    /// [`Client::compile`], but honoring shed responses: on
    /// [`ClientError::Shed`] the call sleeps out the server's
    /// `retry_after_ms` hint — doubled per attempt and jittered ±25% so a
    /// herd of shed clients does not re-arrive in lockstep — and resends,
    /// up to `max_retries` times. Returns the served result plus how many
    /// retries it took; any other error (including `Rejected`) surfaces
    /// immediately.
    pub fn compile_with_retry(
        &mut self,
        req: &CompileRequest,
        timeout_ms: Option<u64>,
        max_retries: u32,
    ) -> Result<(ServedResult, u32), ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.compile(req, timeout_ms) {
                Ok(served) => return Ok((served, attempt)),
                Err(ClientError::Shed { retry_after_ms }) if attempt < max_retries => {
                    let backoff = retry_after_ms
                        .max(1)
                        .saturating_mul(1 << attempt.min(6))
                        .min(5_000);
                    std::thread::sleep(std::time::Duration::from_millis(jitter(backoff)));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Submit many compile jobs as one `compile_batch` wire round trip.
    /// Returns one slot per request, in order: `Ok` with the served result,
    /// or `Err` with the server's per-entry error (a bad entry never fails
    /// its batch-mates). `parallelism` caps the server-side fan-out for
    /// this batch; `None` uses the server default.
    pub fn compile_batch(
        &mut self,
        reqs: &[CompileRequest],
        timeout_ms: Option<u64>,
        parallelism: Option<usize>,
    ) -> Result<Vec<Result<ServedResult, String>>, ClientError> {
        // Hoist the most common machine/config text into batch-level
        // defaults; matching entries omit those sections. A corpus-grid
        // sweep repeats a handful of machine models over hundreds of loops,
        // so this cuts roughly a third of the encoded batch.
        let modal = |section: fn(&CompileRequest) -> &str| -> Option<&str> {
            let mut counts: std::collections::HashMap<&str, usize> =
                std::collections::HashMap::new();
            for r in reqs {
                *counts.entry(section(r)).or_default() += 1;
            }
            counts
                .into_iter()
                // Tie-break on the text itself: max over bare counts would
                // resolve ties by HashMap iteration order and make the
                // encoded batch line nondeterministic across runs.
                .max_by_key(|&(s, n)| (n, s))
                .filter(|&(_, n)| n > 1)
                .map(|(s, _)| s)
        };
        let default_machine = modal(|r| &r.machine_text);
        let default_config = modal(|r| &r.config_text);
        // Hand-render the batch line in the canonical field order — `op`
        // first, `requests` last — so the server can stream the control
        // fields off the wire and then serve entries as they parse, and
        // each entry is one escape pass with no tree build.
        let payload: usize = reqs.iter().map(|r| r.loop_text.len() + 96).sum();
        let mut line = String::with_capacity(payload + 256);
        line.push_str("{\"op\":\"compile_batch\"");
        if let Some(ms) = timeout_ms {
            line.push_str(",\"timeout_ms\":");
            line.push_str(&ms.to_string());
        }
        if let Some(p) = parallelism {
            line.push_str(",\"parallelism\":");
            line.push_str(&p.to_string());
        }
        if default_machine.is_some() || default_config.is_some() {
            line.push_str(",\"defaults\":{");
            if let Some(c) = default_config {
                line.push_str("\"config\":");
                crate::json::write_str(c, &mut line);
            }
            if let Some(m) = default_machine {
                if default_config.is_some() {
                    line.push(',');
                }
                line.push_str("\"machine\":");
                crate::json::write_str(m, &mut line);
            }
            line.push('}');
        }
        line.push_str(",\"requests\":[");
        for (i, r) in reqs.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str("{\"loop\":");
            crate::json::write_str(&r.loop_text, &mut line);
            if default_machine != Some(r.machine_text.as_str()) {
                line.push_str(",\"machine\":");
                crate::json::write_str(&r.machine_text, &mut line);
            }
            if default_config != Some(r.config_text.as_str()) {
                line.push_str(",\"config\":");
                crate::json::write_str(&r.config_text, &mut line);
            }
            line.push('}');
        }
        line.push_str("]}");
        let resp = self.exchange(&line)?;
        let trimmed = resp.trim();
        // Fast path: decode the canonical response shape entry by entry
        // without materialising the full tree.
        let entries = match decode_batch_stream(trimmed) {
            Some(entries) => entries,
            None => {
                // Anything unexpected — batch-level errors included — goes
                // through the general parser for a precise diagnosis.
                let doc = Self::envelope_ok(
                    parse_json(trimmed).map_err(|e| ClientError::Malformed(e.to_string()))?,
                )?;
                let entries = doc.get("results").and_then(Json::as_arr).ok_or_else(|| {
                    ClientError::Malformed("batch response missing `results`".into())
                })?;
                entries
                    .iter()
                    .map(decode_batch_entry)
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        if entries.len() != reqs.len() {
            return Err(ClientError::Malformed(format!(
                "batch response has {} entries for {} requests",
                entries.len(),
                reqs.len()
            )));
        }
        Ok(entries)
    }

    /// Fetch the server's counters as a JSON object.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let doc = self.round_trip(&Json::obj([("op", Json::Str("stats".into()))]))?;
        doc.get("stats")
            .cloned()
            .ok_or_else(|| ClientError::Malformed("stats response missing `stats`".into()))
    }

    /// Ask the server to drain and stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.round_trip(&Json::obj([("op", Json::Str("shutdown".into()))]))
            .map(|_| ())
    }
}
