//! Blocking client for the JSON-lines compile protocol.

use crate::envelope::{CompileRequest, CompileResult};
use crate::json::{parse_json, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// A connected protocol client. One request/response pair in flight at a
/// time; the connection is reused across calls.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A compile response: the result plus how the server satisfied it
/// (`"cache"`, `"compiled"` or `"deduped"`).
#[derive(Debug, Clone, PartialEq)]
pub struct ServedResult {
    /// The artifact set.
    pub result: CompileResult,
    /// The server's `served` label.
    pub served: String,
}

impl ServedResult {
    /// Whether the server answered from its cache.
    pub fn is_cache_hit(&self) -> bool {
        self.served == "cache"
    }
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    fn round_trip(&mut self, request: &Json) -> Result<Json, String> {
        writeln!(self.writer, "{}", request.render()).map_err(|e| e.to_string())?;
        self.writer.flush().map_err(|e| e.to_string())?;
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) => return Err("server closed the connection".into()),
                Ok(_) if line.trim().is_empty() => continue,
                Ok(_) => break,
                Err(e) => return Err(e.to_string()),
            }
        }
        let doc = parse_json(line.trim()).map_err(|e| e.to_string())?;
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(doc),
            Some(false) => Err(doc
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown server error")
                .to_string()),
            None => Err("malformed server response".into()),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), String> {
        self.round_trip(&Json::obj([("op", Json::Str("ping".into()))]))
            .map(|_| ())
    }

    /// Submit one compile job. `timeout_ms` bounds this request's wait on
    /// the server side; `None` uses the server default.
    pub fn compile(
        &mut self,
        req: &CompileRequest,
        timeout_ms: Option<u64>,
    ) -> Result<ServedResult, String> {
        let mut pairs = vec![
            ("op", Json::Str("compile".into())),
            ("request", req.to_json()),
        ];
        if let Some(ms) = timeout_ms {
            pairs.push(("timeout_ms", Json::Num(ms as f64)));
        }
        let doc = self.round_trip(&Json::obj(pairs))?;
        let result = doc
            .get("result")
            .ok_or("compile response missing `result`")?;
        let result = CompileResult::from_json(result)?;
        let served = doc
            .get("served")
            .and_then(Json::as_str)
            .ok_or("compile response missing `served`")?
            .to_string();
        Ok(ServedResult { result, served })
    }

    /// Fetch the server's counters as a JSON object.
    pub fn stats(&mut self) -> Result<Json, String> {
        let doc = self.round_trip(&Json::obj([("op", Json::Str("stats".into()))]))?;
        doc.get("stats")
            .cloned()
            .ok_or_else(|| "stats response missing `stats`".into())
    }

    /// Ask the server to drain and stop.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.round_trip(&Json::obj([("op", Json::Str("shutdown".into()))]))
            .map(|_| ())
    }
}
