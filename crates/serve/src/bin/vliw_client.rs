//! `vliw-client` — CLI for the compile server.
//!
//! ```text
//! vliw-client (--addr HOST:PORT | --peers A,B,..) [--ping] [--stats]
//!             [--shutdown] [--compile] [--batch] [--concurrent N]
//!             [--loop-file PATH | --gen IDX | --gen-variant IDX:SEED | --gen-range LO:HI]
//!             [--machine SPEC] [--config-file PATH]
//!             [--timeout-ms N] [--repeat N] [--parallelism N] [--aggregate]
//!             [--max-retries N]
//! ```
//!
//! `--compile` sends one job built from either a canonical loop file
//! (`--loop-file`) or corpus loop number IDX (`--gen`, deterministic
//! loopgen); `--gen-variant IDX:SEED` sends a deterministic *isomorphic
//! renaming* of corpus loop IDX (fresh register/array/loop names,
//! commutative operand swaps, a dependence-legal statement permutation) —
//! a different exact cache key but the same semantic key, which is how the
//! CI smoke asserts renamed requests warm-hit the semantic alias.
//! `--batch` with `--gen-range LO:HI` ships corpus loops
//! `[LO, HI)` as a single `compile_batch` wire round trip (`--parallelism`
//! caps the server-side fan-out). `--machine` takes the short specs
//! understood by `vliw_machine::machine_from_spec` (`embedded:4x4`,
//! `copyunit:2x8`, `ideal:16`). `--repeat N` resends the identical request
//! N times and reports how each was served, which is how the CI smoke test
//! asserts the second send is a cache hit. `--concurrent N` holds N
//! simultaneous connections open and sends one request on each (the
//! `--compile` request if one is configured, a ping otherwise), then
//! prints `concurrent n=N ok=K errors=E` — the CI smoke uses it to assert
//! the reactor core multiplexes hundreds of connections on a small worker
//! pool without dropping any.
//!
//! An overloaded server may *shed* a heavy compile with a typed retryable
//! error carrying a `retry_after_ms` hint. `--max-retries N` (default 0)
//! makes compile modes honor it: bounded exponential backoff with jitter,
//! then resend, up to N times per request. Retries are counted in the
//! summary (`retries=N` after compile output, `retries=` field on the
//! `concurrent` line); exhausting the budget fails with the shed error.
//!
//! With `--peers A,B,..` every request routes by its content hash over a
//! consistent-hash ring: identical requests always land on the same peer,
//! and a dead peer's keys fail over to the next peer on the ring (the
//! `failovers=N` line counts rerouted requests). `--stats --peers` prints
//! one line per peer plus an `aggregate` line (`--aggregate` alone also
//! works); `--shutdown --peers` stops every reachable peer.

use vliw_machine::machine_from_spec;
use vliw_pipeline::{format_pipeline_config, PipelineConfig};
use vliw_serve::{Client, CompileRequest, Json, ServedResult, ShardedClient};

fn usage() -> ! {
    eprintln!(
        "usage: vliw-client (--addr HOST:PORT | --peers A,B,..) [--ping] [--stats]\n\
         \x20                  [--shutdown] [--compile] [--batch] [--concurrent N]\n\
         \x20                  [--loop-file PATH | --gen IDX | --gen-variant IDX:SEED\n\
         \x20                   | --gen-range LO:HI]\n\
         \x20                  [--machine SPEC] [--config-file PATH]\n\
         \x20                  [--timeout-ms N] [--repeat N] [--parallelism N] [--aggregate]\n\
         \x20                  [--max-retries N]"
    );
    std::process::exit(2);
}

fn fatal(msg: &str) -> ! {
    eprintln!("vliw-client: {msg}");
    std::process::exit(1);
}

/// One line per served entry, shared by every compile mode.
fn print_served(tag: &str, i: usize, served: &ServedResult, peer: Option<&str>) {
    let r = &served.result;
    let peer = peer.map(|p| format!(" peer={p}")).unwrap_or_default();
    // Joint-partitioner compiles carry the solver's audited claims; a
    // truncated search is visible here as `joint_optimal=false` with the
    // proven bound, never as a timeout.
    let joint = r
        .joint
        .map(|j| {
            format!(
                " joint_ii={} joint_lb={} joint_optimal={}",
                j.ii, j.lower_bound_ii, j.optimal
            )
        })
        .unwrap_or_default();
    println!(
        "{tag}[{i}] served={}{peer} key={} loop={} ideal_ii={} clustered_ii={} copies={} normalized={:.1}{joint}",
        served.served, r.key, r.name, r.ideal_ii, r.clustered_ii, r.n_copies, r.normalized
    );
}

fn print_stats_line(prefix: &str, stats: &Json) {
    // Merged aggregates carry percentiles as `max_p50_us` etc. (they merge
    // by worst peer, not by sum); fall back so one printer serves both.
    let n = |k: &str| {
        stats
            .get(k)
            .or_else(|| stats.get(&format!("max_{k}")))
            .and_then(Json::as_f64)
            .map(|v| v as u64)
            .unwrap_or(0)
    };
    println!(
        "{prefix} hits={} (mem={} disk={}) misses={} compiles={} dedup_waits={} batches={} sync_writes={} evictions={} timeouts={} joint_truncated={} errors={} accepts={} conns_rejected={} p50_us={} p90_us={} p99_us={} queue_p99_us={}",
        n("hits"),
        n("mem_hits"),
        n("disk_hits"),
        n("misses"),
        n("compiles"),
        n("dedup_waits"),
        n("batches"),
        n("sync_writes"),
        n("evictions"),
        n("timeouts"),
        n("joint_truncated"),
        n("errors"),
        n("accepts"),
        n("conns_rejected"),
        n("p50_us"),
        n("p90_us"),
        n("p99_us"),
        n("queue_p99_us")
    );
}

fn corpus_loop_text(idx: usize) -> String {
    let mut loops = vliw_loopgen::corpus();
    if idx >= loops.len() {
        fatal(&format!(
            "loop index {idx} out of range (corpus has {})",
            loops.len()
        ));
    }
    vliw_ir::format_loop_full(&loops.swap_remove(idx))
}

/// A deterministic isomorphic renaming of corpus loop `idx`: same semantic
/// cache key as the original, different exact key.
fn corpus_variant_text(idx: usize, seed: u64) -> String {
    let mut loops = vliw_loopgen::corpus();
    if idx >= loops.len() {
        fatal(&format!(
            "loop index {idx} out of range (corpus has {})",
            loops.len()
        ));
    }
    vliw_ir::format_loop_full(&vliw_normal::variant(&loops.swap_remove(idx), seed))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut peers: Option<Vec<String>> = None;
    let mut do_ping = false;
    let mut do_stats = false;
    let mut do_shutdown = false;
    let mut do_compile = false;
    let mut do_batch = false;
    let mut do_aggregate = false;
    let mut loop_file = None;
    let mut gen_idx = None;
    let mut gen_variant = None;
    let mut gen_range = None;
    let mut machine_spec = "embedded:4x4".to_string();
    let mut config_file = None;
    let mut timeout_ms = None;
    let mut repeat = 1usize;
    let mut parallelism = None;
    let mut concurrent: Option<usize> = None;
    let mut max_retries = 0u32;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => addr = Some(value()),
            "--peers" => {
                peers = Some(
                    value()
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from)
                        .collect(),
                )
            }
            "--ping" => do_ping = true,
            "--stats" => do_stats = true,
            "--shutdown" => do_shutdown = true,
            "--compile" => do_compile = true,
            "--batch" => do_batch = true,
            "--aggregate" => do_aggregate = true,
            "--loop-file" => loop_file = Some(value()),
            "--gen" => gen_idx = Some(value().parse::<usize>().unwrap_or_else(|_| usage())),
            "--gen-variant" => {
                let v = value();
                let (idx, seed) = v.split_once(':').unwrap_or_else(|| usage());
                gen_variant = Some((
                    idx.parse::<usize>().unwrap_or_else(|_| usage()),
                    seed.parse::<u64>().unwrap_or_else(|_| usage()),
                ));
            }
            "--gen-range" => {
                let v = value();
                let (lo, hi) = v.split_once(':').unwrap_or_else(|| usage());
                let lo: usize = lo.parse().unwrap_or_else(|_| usage());
                let hi: usize = hi.parse().unwrap_or_else(|_| usage());
                if lo >= hi {
                    usage();
                }
                gen_range = Some((lo, hi));
            }
            "--machine" => machine_spec = value(),
            "--config-file" => config_file = Some(value()),
            "--timeout-ms" => timeout_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--repeat" => repeat = value().parse().unwrap_or_else(|_| usage()),
            "--parallelism" => {
                parallelism = Some(value().parse::<usize>().unwrap_or_else(|_| usage()))
            }
            "--concurrent" => {
                concurrent = Some(value().parse::<usize>().unwrap_or_else(|_| usage()))
            }
            "--max-retries" => max_retries = value().parse::<u32>().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    if do_aggregate {
        do_stats = true;
    }
    if !(do_ping || do_stats || do_shutdown || do_compile || do_batch || concurrent.is_some()) {
        usage();
    }
    if addr.is_some() == peers.is_some() {
        usage(); // exactly one of --addr / --peers
    }

    let machine =
        machine_from_spec(&machine_spec).unwrap_or_else(|e| fatal(&format!("bad --machine: {e}")));
    let machine_text = vliw_machine::format_machine(&machine);
    let config_text = match &config_file {
        Some(path) => {
            std::fs::read_to_string(path).unwrap_or_else(|e| fatal(&format!("read {path}: {e}")))
        }
        None => format_pipeline_config(&PipelineConfig::default()),
    };
    let request_for = |loop_text: String| CompileRequest {
        loop_text,
        machine_text: machine_text.clone(),
        config_text: config_text.clone(),
    };

    let single_request = || {
        let loop_text = match (&loop_file, gen_idx, gen_variant) {
            (Some(path), None, None) => std::fs::read_to_string(path)
                .unwrap_or_else(|e| fatal(&format!("read {path}: {e}"))),
            (None, Some(idx), None) => corpus_loop_text(idx),
            (None, None, Some((idx, seed))) => corpus_variant_text(idx, seed),
            _ => fatal("--compile needs exactly one of --loop-file, --gen or --gen-variant"),
        };
        request_for(loop_text)
    };
    let batch_requests = || {
        let (lo, hi) = gen_range.unwrap_or_else(|| fatal("--batch needs --gen-range LO:HI"));
        let mut loops = vliw_loopgen::corpus();
        if hi > loops.len() {
            fatal(&format!(
                "--gen-range end {hi} out of range (corpus has {})",
                loops.len()
            ));
        }
        loops
            .drain(lo..hi)
            .map(|l| request_for(vliw_ir::format_loop_full(&l)))
            .collect::<Vec<_>>()
    };
    let print_batch = |results: &[Result<ServedResult, String>]| {
        for (i, res) in results.iter().enumerate() {
            match res {
                Ok(served) => print_served("batch", i, served, None),
                Err(e) => println!("batch[{i}] error: {e}"),
            }
        }
    };

    if let Some(peers) = peers {
        // ---- sharded mode -------------------------------------------------
        let mut sharded = ShardedClient::new(peers);
        if do_ping {
            fatal("--ping targets one server; use --addr");
        }
        if concurrent.is_some() {
            fatal("--concurrent targets one server; use --addr");
        }
        if do_compile {
            let req = single_request();
            for i in 0..repeat.max(1) {
                let (served, peer) = sharded
                    .compile(&req, timeout_ms)
                    .unwrap_or_else(|e| fatal(&e.to_string()));
                print_served("compile", i, &served, Some(&peer));
            }
            println!("failovers={}", sharded.failovers());
        }
        if do_batch {
            let reqs = batch_requests();
            let results = sharded
                .compile_batch(&reqs, timeout_ms, parallelism)
                .unwrap_or_else(|e| fatal(&e.to_string()));
            print_batch(&results);
            println!("failovers={}", sharded.failovers());
        }
        if do_stats {
            let (per_peer, merged) = sharded
                .stats_aggregate()
                .unwrap_or_else(|e| fatal(&e.to_string()));
            for (addr, snap) in &per_peer {
                match snap {
                    Ok(stats) => print_stats_line(&format!("stats[{addr}]"), stats),
                    Err(e) => println!("stats[{addr}] unreachable: {e}"),
                }
            }
            print_stats_line("aggregate", &merged);
            let n = |k: &str| merged.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
            println!(
                "aggregate peers={} reporting={} failovers={}",
                n("peers"),
                n("peers_reporting"),
                n("failovers")
            );
        }
        if do_shutdown {
            let acked = sharded.shutdown_all();
            println!("shutdown acknowledged by {acked} peer(s)");
        }
        return;
    }

    // ---- single-server mode ----------------------------------------------
    let addr = addr.expect("checked above");
    let mut client =
        Client::connect(&addr).unwrap_or_else(|e| fatal(&format!("connect {addr}: {e}")));

    if let Some(n) = concurrent {
        // Hold `n` simultaneous connections and send one request on each;
        // every connection stays open until all have been served, so the
        // server really multiplexes `n` live sockets at once.
        let req = if do_compile {
            Some(single_request())
        } else {
            None
        };
        let mut conns = Vec::with_capacity(n);
        let mut ok = 0u64;
        let mut errors = 0u64;
        for _ in 0..n {
            match Client::connect(&addr) {
                Ok(c) => conns.push(c),
                Err(_) => errors += 1,
            }
        }
        let mut retries = 0u64;
        for c in conns.iter_mut() {
            let sent = match &req {
                Some(req) => c
                    .compile_with_retry(req, timeout_ms, max_retries)
                    .map(|(_, r)| {
                        retries += u64::from(r);
                    }),
                None => c.ping(),
            };
            match sent {
                Ok(()) => ok += 1,
                Err(_) => errors += 1,
            }
        }
        println!("concurrent n={n} ok={ok} errors={errors} retries={retries}");
    }

    if do_ping {
        client.ping().unwrap_or_else(|e| fatal(&e.to_string()));
        println!("pong");
    }

    if do_compile && concurrent.is_none() {
        let req = single_request();
        let mut retries = 0u64;
        for i in 0..repeat.max(1) {
            let (served, r) = client
                .compile_with_retry(&req, timeout_ms, max_retries)
                .unwrap_or_else(|e| fatal(&e.to_string()));
            retries += u64::from(r);
            print_served("compile", i, &served, None);
        }
        println!("retries={retries}");
    }

    if do_batch {
        let reqs = batch_requests();
        let results = client
            .compile_batch(&reqs, timeout_ms, parallelism)
            .unwrap_or_else(|e| fatal(&e.to_string()));
        print_batch(&results);
    }

    if do_stats {
        let stats = client.stats().unwrap_or_else(|e| fatal(&e.to_string()));
        print_stats_line("stats", &stats);
    }

    if do_shutdown {
        client.shutdown().unwrap_or_else(|e| fatal(&e.to_string()));
        println!("shutdown acknowledged");
    }
}
