//! `vliw-client` — CLI for the compile server.
//!
//! ```text
//! vliw-client --addr HOST:PORT [--ping] [--stats] [--shutdown]
//!             [--compile] [--loop-file PATH | --gen IDX]
//!             [--machine SPEC] [--config-file PATH]
//!             [--timeout-ms N] [--repeat N]
//! ```
//!
//! `--compile` sends one job built from either a canonical loop file
//! (`--loop-file`) or corpus loop number IDX (`--gen`, deterministic
//! loopgen). `--machine` takes the short specs understood by
//! `vliw_machine::machine_from_spec` (`embedded:4x4`, `copyunit:2x8`,
//! `ideal:16`) or a path is not needed — full machine text can go through
//! a loop file's sibling. `--repeat N` resends the identical request N
//! times and reports how each was served, which is how the CI smoke test
//! asserts the second send is a cache hit.

use vliw_machine::machine_from_spec;
use vliw_pipeline::{format_pipeline_config, PipelineConfig};
use vliw_serve::{Client, CompileRequest, Json};

fn usage() -> ! {
    eprintln!(
        "usage: vliw-client --addr HOST:PORT [--ping] [--stats] [--shutdown]\n\
         \x20                  [--compile] [--loop-file PATH | --gen IDX]\n\
         \x20                  [--machine SPEC] [--config-file PATH]\n\
         \x20                  [--timeout-ms N] [--repeat N]"
    );
    std::process::exit(2);
}

fn fatal(msg: &str) -> ! {
    eprintln!("vliw-client: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut do_ping = false;
    let mut do_stats = false;
    let mut do_shutdown = false;
    let mut do_compile = false;
    let mut loop_file = None;
    let mut gen_idx = None;
    let mut machine_spec = "embedded:4x4".to_string();
    let mut config_file = None;
    let mut timeout_ms = None;
    let mut repeat = 1usize;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => addr = Some(value()),
            "--ping" => do_ping = true,
            "--stats" => do_stats = true,
            "--shutdown" => do_shutdown = true,
            "--compile" => do_compile = true,
            "--loop-file" => loop_file = Some(value()),
            "--gen" => gen_idx = Some(value().parse::<usize>().unwrap_or_else(|_| usage())),
            "--machine" => machine_spec = value(),
            "--config-file" => config_file = Some(value()),
            "--timeout-ms" => timeout_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--repeat" => repeat = value().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let addr = addr.unwrap_or_else(|| usage());
    if !(do_ping || do_stats || do_shutdown || do_compile) {
        usage();
    }
    let mut client =
        Client::connect(&addr).unwrap_or_else(|e| fatal(&format!("connect {addr}: {e}")));

    if do_ping {
        client.ping().unwrap_or_else(|e| fatal(&e));
        println!("pong");
    }

    if do_compile {
        let loop_text = match (&loop_file, gen_idx) {
            (Some(path), None) => std::fs::read_to_string(path)
                .unwrap_or_else(|e| fatal(&format!("read {path}: {e}"))),
            (None, Some(idx)) => {
                let mut loops = vliw_loopgen::corpus();
                if idx >= loops.len() {
                    fatal(&format!(
                        "--gen {idx} out of range (corpus has {})",
                        loops.len()
                    ));
                }
                vliw_ir::format_loop_full(&loops.swap_remove(idx))
            }
            _ => fatal("--compile needs exactly one of --loop-file or --gen"),
        };
        let machine = machine_from_spec(&machine_spec)
            .unwrap_or_else(|e| fatal(&format!("bad --machine: {e}")));
        let config_text = match &config_file {
            Some(path) => std::fs::read_to_string(path)
                .unwrap_or_else(|e| fatal(&format!("read {path}: {e}"))),
            None => format_pipeline_config(&PipelineConfig::default()),
        };
        let req = CompileRequest {
            loop_text,
            machine_text: vliw_machine::format_machine(&machine),
            config_text,
        };
        for i in 0..repeat.max(1) {
            let served = client
                .compile(&req, timeout_ms)
                .unwrap_or_else(|e| fatal(&e));
            let r = &served.result;
            println!(
                "compile[{i}] served={} key={} loop={} ideal_ii={} clustered_ii={} copies={} normalized={:.1}",
                served.served, r.key, r.name, r.ideal_ii, r.clustered_ii, r.n_copies, r.normalized
            );
        }
    }

    if do_stats {
        let stats = client.stats().unwrap_or_else(|e| fatal(&e));
        let n = |k: &str| {
            stats
                .get(k)
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .unwrap_or(0)
        };
        println!(
            "stats hits={} (mem={} disk={}) misses={} compiles={} dedup_waits={} evictions={} timeouts={} errors={} p50_us={} p90_us={} p99_us={}",
            n("hits"),
            n("mem_hits"),
            n("disk_hits"),
            n("misses"),
            n("compiles"),
            n("dedup_waits"),
            n("evictions"),
            n("timeouts"),
            n("errors"),
            n("p50_us"),
            n("p90_us"),
            n("p99_us")
        );
    }

    if do_shutdown {
        client.shutdown().unwrap_or_else(|e| fatal(&e));
        println!("shutdown acknowledged");
    }
}
