//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--table1] [--table2] [--fig5] [--fig6] [--fig7]
//!       [--example] [--ablation] [--gap] [--joint-gap] [--latency-sweep]
//!       [--all]
//!       [--loops N]   # truncate the corpus for a quick run
//!       [--partitioner greedy|exact|joint]  # table/figure sweeps' partitioner
//!       [--budget-ms N]               # exact/joint search budget (default 2000)
//!       [--max-regs N]                # vreg ceiling of the --gap/--joint-gap slice (default 12)
//!       [--cache] [--cache-dir PATH]
//! ```
//!
//! `--csv PATH` additionally writes per-loop rows for every paper machine
//! model to PATH. With no flags, `--all` is assumed.
//!
//! `--gap` prints the optimality-gap table: on the ≤12-register slice of
//! the corpus, the greedy partition is compared against the `vliw-exact`
//! branch-and-bound optimum — RCG objective and full-pipeline II/copies —
//! per paper machine model. The trailing `all_optimal=…` /
//! `exact<=greedy=…` line is what `ci.sh`'s gap smoke asserts on.
//!
//! `--joint-gap` prints the joint (II, slot, bank) solver table: on the same
//! ≤12-register slice (`--max-regs` raises the ceiling), the greedy
//! partition + IMS pipeline is compared against `vliw-joint`'s
//! branch-and-bound over complete bank assignments × exhaustive modulo
//! schedules, per paper machine model. The trailing `all_closed=…` /
//! `joint_ii<=greedy_ii=…` line is what `ci.sh`'s joint smoke asserts on.
//! A second *scaling* table follows: the 13–24-vreg pressure slice (the
//! corpus draws in that range plus `vliw-loopgen`'s pressure family) under
//! a 500 ms interactive budget, with every solve classified as closed /
//! bounded (ladder certified rungs beyond the analytic floor) /
//! budget-exceeded.
//!
//! `--cache` routes every per-loop compile of the table/figure sweeps
//! through a process-local content-addressed cache (in-memory LRU over
//! `--cache-dir`, default `target/vliw-cache/`), so a re-run of the same
//! corpus is served from disk. The ablation/scheduler/latency sweeps vary
//! configurations per row and keep their direct path.

use std::sync::Arc;
use vliw_ir::Loop;
use vliw_machine::MachineDesc;
use vliw_pipeline::{
    ablation, fig_histogram_with, latency_sweep, paper_example, render_ablation,
    render_scheduler_compare, scheduler_compare, table1_with, table2_with, LoopResult, LoopRunner,
    PipelineConfig,
};
use vliw_serve::{CachedCompiler, DiskStore, TieredCache};

/// Routes compiles through the content-addressed cache.
struct CachedRunner(Arc<CachedCompiler>);

impl LoopRunner for CachedRunner {
    fn run(&self, body: &Loop, machine: &MachineDesc, cfg: &PipelineConfig) -> LoopResult {
        match self.0.compile_parts(body, machine, cfg, None) {
            Ok((res, _)) => res.to_loop_result(),
            Err(e) => panic!("cached compile of {} failed: {e}", body.name),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    let all = args.is_empty() || has("--all");

    let mut n_loops = vliw_loopgen::CORPUS_SIZE;
    if let Some(pos) = args.iter().position(|a| a == "--loops") {
        n_loops = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(n_loops);
    }
    let mut corpus = vliw_loopgen::corpus();
    corpus.truncate(n_loops);

    let budget_ms: u64 = args
        .iter()
        .position(|a| a == "--budget-ms")
        .and_then(|pos| args.get(pos + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let max_regs: usize = args
        .iter()
        .position(|a| a == "--max-regs")
        .and_then(|pos| args.get(pos + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let mut cfg = PipelineConfig::default();
    if let Some(pos) = args.iter().position(|a| a == "--partitioner") {
        cfg.partitioner = match args.get(pos + 1).map(String::as_str) {
            Some("greedy") | None => vliw_pipeline::PartitionerKind::Greedy,
            Some("exact") => vliw_pipeline::PartitionerKind::Exact { budget_ms },
            Some("joint") => vliw_pipeline::PartitionerKind::Joint { budget_ms },
            Some(other) => panic!("--partitioner expects greedy|exact|joint, got `{other}`"),
        };
    }

    let engine = if has("--cache") {
        let root = args
            .iter()
            .position(|a| a == "--cache-dir")
            .and_then(|pos| args.get(pos + 1))
            .map(|p| DiskStore::new(p.clone()))
            .unwrap_or_else(|| DiskStore::new(DiskStore::default_root()));
        Some(CachedCompiler::new(TieredCache::new(8192, Some(root))))
    } else {
        None
    };
    let cached_runner = engine.as_ref().map(|e| CachedRunner(Arc::clone(e)));
    let direct: fn(&Loop, &MachineDesc, &PipelineConfig) -> LoopResult = vliw_pipeline::run_loop;
    let runner: &dyn LoopRunner = match &cached_runner {
        Some(r) => r,
        None => &direct,
    };

    println!(
        "rcg-vliw reproduction — {} loops, 16-wide machines, paper latencies{}\n",
        corpus.len(),
        if engine.is_some() { ", cached" } else { "" }
    );

    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        let path = args
            .get(pos + 1)
            .cloned()
            .unwrap_or_else(|| "repro.csv".into());
        let mut out = String::from(
            "machine,loop,ops,ideal_ii,clustered_ii,copies,hoisted,normalized,ideal_ipc,clustered_ipc,mve_unroll,fp_pressure,spills\n",
        );
        let machines = vliw_pipeline::paper_machines();
        let grid = vliw_pipeline::run_corpus_grid_with(&corpus, &machines, &cfg, runner);
        for (m, rows) in machines.iter().zip(grid) {
            for r in rows {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{:.2},{:.3},{:.3},{},{},{}\n",
                    m.name,
                    r.name,
                    r.n_ops,
                    r.ideal_ii,
                    r.clustered_ii,
                    r.n_copies,
                    r.n_hoisted,
                    r.normalized,
                    r.ideal_ipc,
                    r.clustered_ipc,
                    r.mve_unroll,
                    r.peak_float_pressure,
                    r.spills
                ));
            }
        }
        std::fs::write(&path, out).expect("write csv");
        println!("per-loop results written to {path}\n");
    }
    if all || has("--example") {
        let ex = paper_example();
        println!("Figures 1-3: the xpos worked example (2 FUs, unit latency)");
        println!(
            "  ideal schedule      : {} cycles (paper: 7)",
            ex.ideal_span
        );
        println!(
            "  2-bank partitioned  : {} cycles, {} copies (paper: 9 cycles, 2 copies)\n",
            ex.clustered_span, ex.n_copies
        );
    }
    if all || has("--table1") {
        println!("{}", table1_with(&corpus, &cfg, runner).render());
        println!("  (paper: Ideal 8.6; Clustered 9.3/6.2, 8.4/7.5, 6.9/6.8)\n");
    }
    if all || has("--table2") {
        println!("{}", table2_with(&corpus, &cfg, runner).render());
        println!("  (paper: arith 111/150, 126/122, 162/133; harm 109/127, 119/115, 138/124)\n");
    }
    for (flag, n, paper_zero) in [
        ("--fig5", 2usize, 60.0),
        ("--fig6", 4, 50.0),
        ("--fig7", 8, 40.0),
    ] {
        if all || has(flag) {
            let f = fig_histogram_with(&corpus, n, &cfg, runner);
            println!("{}", f.render());
            println!(
                "  zero-degradation: {:.1}% embedded / {:.1}% copy-unit (paper: ~{}%)\n",
                f.embedded.percent_undegraded(),
                f.copy_unit.percent_undegraded(),
                paper_zero
            );
        }
    }
    if all || has("--ablation") {
        let rows = ablation(&corpus, &MachineDesc::embedded(4, 4));
        println!(
            "{}",
            render_ablation(&rows, "Ablation A: partitioners on 4x4 embedded")
        );
        println!();
    }
    if all || has("--gap") {
        let table = vliw_pipeline::gap_table_with(
            &corpus,
            &vliw_pipeline::paper_machines(),
            budget_ms,
            max_regs,
            runner,
        );
        println!("{}", table.render());
        println!();
    }
    if all || has("--joint-gap") {
        let table = vliw_pipeline::joint_gap_table_with(
            &corpus,
            &vliw_pipeline::paper_machines(),
            budget_ms,
            max_regs,
        );
        println!("{}", table.render());
        println!();
        // The scaling slice: 13–24-vreg loops (corpus draws in range plus
        // the pressure family) under an interactive 500 ms budget.
        let mut slice = corpus.clone();
        slice.extend(vliw_loopgen::pressure_corpus());
        let scaling = vliw_pipeline::joint_scaling_table_with(
            &slice,
            &vliw_pipeline::paper_machines(),
            500,
            13,
            24,
        );
        println!("{}", scaling.render());
        println!();
    }
    if all || has("--schedulers") {
        let rows = scheduler_compare(&corpus, &MachineDesc::embedded(4, 4));
        println!(
            "{}",
            render_scheduler_compare(
                &rows,
                "Scheduler comparison (§6.3): Rau IMS vs Llosa swing, 4x4 embedded"
            )
        );
        println!();
    }
    if all || has("--whole-programs") {
        let (arith, harm, copies) = vliw_pipeline::whole_programs(40);
        println!("Whole programs ([16]'s experiment): 40 functions on a 4-wide machine, 4 partitions of 1 FU");
        println!(
            "  weighted degradation: arith {:.0}, harm {:.0} (companion study: ~111); total copies {}\n",
            arith, harm, copies
        );
    }
    if all || has("--latency-sweep") {
        let rows = latency_sweep(&corpus, 4);
        println!(
            "{}",
            render_ablation(&rows, "Ablation B: copy latency on 4-cluster machines")
        );
    }
    if let Some(engine) = &engine {
        let snap = engine.stats().snapshot();
        println!(
            "cache: hits={} (mem={} disk={}) misses={} compiles={} evictions={}",
            snap.hits(),
            snap.mem_hits,
            snap.disk_hits,
            snap.misses,
            snap.compiles,
            engine.evictions()
        );
    }
}
