//! `vliw-served` — the compile server.
//!
//! ```text
//! vliw-served [--addr HOST:PORT] [--workers N] [--mem-capacity N]
//!             [--cache-dir PATH | --no-disk] [--timeout-ms N]
//!             [--batch-parallelism N]
//! ```
//!
//! Binds (default `127.0.0.1:0`, an ephemeral port), prints
//! `vliw-served listening on ADDR` on stdout, then serves the JSON-lines
//! protocol until a `shutdown` request or SIGTERM/SIGINT arrives. The disk
//! tier defaults to `target/vliw-cache/`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use vliw_serve::{CachedCompiler, DiskStore, Server, ServerConfig, TieredCache};

/// Process-wide flag flipped by the signal handler; a bridge thread relays
/// it into the server's own shutdown handle.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    // The container has no libc crate, but every Rust binary links libc;
    // declare the one symbol we need. SIGTERM = 15, SIGINT = 2 on Linux.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(15, handler);
        signal(2, handler);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: vliw-served [--addr HOST:PORT] [--workers N] [--mem-capacity N]\n\
         \x20                  [--cache-dir PATH | --no-disk] [--timeout-ms N]\n\
         \x20                  [--batch-parallelism N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:0".to_string();
    let mut workers = 4usize;
    let mut mem_capacity = 4096usize;
    let mut cache_dir = Some(DiskStore::default_root());
    let mut timeout_ms = 30_000u64;
    let mut batch_parallelism = 8usize;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => addr = value(),
            "--workers" => workers = value().parse().unwrap_or_else(|_| usage()),
            "--mem-capacity" => mem_capacity = value().parse().unwrap_or_else(|_| usage()),
            "--cache-dir" => cache_dir = Some(value().into()),
            "--no-disk" => cache_dir = None,
            "--timeout-ms" => timeout_ms = value().parse().unwrap_or_else(|_| usage()),
            "--batch-parallelism" => {
                batch_parallelism = value().parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    install_signal_handlers();
    let disk = cache_dir.map(DiskStore::new);
    let engine = CachedCompiler::new(TieredCache::new(mem_capacity, disk));
    let server = Server::bind(
        ServerConfig {
            addr,
            workers,
            default_timeout: Duration::from_millis(timeout_ms),
            batch_parallelism,
        },
        engine,
    )
    .unwrap_or_else(|e| {
        eprintln!("vliw-served: bind failed: {e}");
        std::process::exit(1);
    });

    let bound = server.local_addr().expect("bound listener has an address");
    // The smoke tests parse this line to learn the ephemeral port.
    println!("vliw-served listening on {bound}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let handle = server.shutdown_handle();
    std::thread::spawn(move || loop {
        if SIGNALLED.load(Ordering::SeqCst) {
            handle.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    server.run();
    println!("vliw-served: drained, exiting");
}
