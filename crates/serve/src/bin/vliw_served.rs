//! `vliw-served` — the compile server.
//!
//! ```text
//! vliw-served [--addr HOST:PORT] [--workers N] [--mem-capacity N]
//!             [--cache-dir PATH | --no-disk] [--timeout-ms N]
//!             [--batch-parallelism N] [--max-conns N]
//!             [--idle-timeout-ms N] [--core reactor|threads] [--force-poll]
//!             [--mem-budget BYTES] [--heavy-lane-workers N]
//!             [--shed-policy never|depth:N|adaptive]
//! ```
//!
//! Binds (default `127.0.0.1:0`, an ephemeral port), prints
//! `vliw-served listening on ADDR` on stdout, then serves the JSON-lines
//! protocol until a `shutdown` request or SIGTERM/SIGINT arrives. The disk
//! tier defaults to `target/vliw-cache/`.
//!
//! The default core is the event-driven reactor: `--workers` sizes the
//! compile pool (not the connection count — one reactor thread holds every
//! connection), `--max-conns` caps concurrent connections, and
//! `--idle-timeout-ms` evicts idle connections (0 disables; default 5
//! minutes). `--core threads` selects the legacy thread-per-connection
//! core; `--force-poll` pins the reactor to the portable `poll(2)` backend.
//!
//! The reactor core runs a resource governor (DESIGN.md §15):
//! `--mem-budget` caps solver memory across all in-flight heavy compiles
//! (bytes, with optional `k`/`m`/`g` suffix; default 256m),
//! `--heavy-lane-workers` caps how many pool workers may run heavy
//! (exact/joint) solves at once (0 = half the pool), and `--shed-policy`
//! picks when heavy requests are shed with a typed retryable error:
//! `never`, `depth:N` (queue depth), or `adaptive` (projected wait;
//! default).

use std::sync::OnceLock;
use std::time::Duration;
use vliw_serve::{
    CachedCompiler, DiskStore, Server, ServerConfig, ServerCore, ShedPolicy, ShutdownHandle,
    TieredCache,
};

/// Set once the server is bound; the signal handler signals through it.
/// `ShutdownHandle::signal` is an atomic store plus one `write(2)` on a
/// pre-opened socketpair fd, so it is safe in signal context, and the wake
/// means shutdown needs no bridge thread polling a flag.
static HANDLE: OnceLock<ShutdownHandle> = OnceLock::new();

extern "C" fn on_signal(_sig: i32) {
    if let Some(handle) = HANDLE.get() {
        handle.signal();
    }
}

fn install_signal_handlers() {
    // The container has no libc crate, but every Rust binary links libc;
    // declare the one symbol we need. SIGTERM = 15, SIGINT = 2 on Linux.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(15, handler);
        signal(2, handler);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: vliw-served [--addr HOST:PORT] [--workers N] [--mem-capacity N]\n\
         \x20                  [--cache-dir PATH | --no-disk] [--timeout-ms N]\n\
         \x20                  [--batch-parallelism N] [--max-conns N]\n\
         \x20                  [--idle-timeout-ms N] [--core reactor|threads]\n\
         \x20                  [--force-poll] [--mem-budget BYTES[k|m|g]]\n\
         \x20                  [--heavy-lane-workers N]\n\
         \x20                  [--shed-policy never|depth:N|adaptive]"
    );
    std::process::exit(2);
}

/// Parse a byte count with an optional `k`/`m`/`g` suffix (`64m` = 64 MiB).
fn parse_bytes(s: &str) -> Option<u64> {
    let (digits, shift) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 10),
        b'm' | b'M' => (&s[..s.len() - 1], 20),
        b'g' | b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    digits.parse::<u64>().ok()?.checked_shl(shift)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:0".to_string();
    let mut workers = 4usize;
    let mut mem_capacity = 4096usize;
    let mut cache_dir = Some(DiskStore::default_root());
    let mut timeout_ms = 30_000u64;
    let mut batch_parallelism = 8usize;
    let mut max_conns = 4096usize;
    let mut idle_timeout_ms = 300_000u64; // 5 minutes; 0 disables
    let mut core = ServerCore::Reactor;
    let mut force_poll = false;
    let mut mem_budget = 256u64 << 20;
    let mut heavy_lane_workers = 0usize;
    let mut shed_policy = ShedPolicy::Adaptive;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => addr = value(),
            "--workers" => workers = value().parse().unwrap_or_else(|_| usage()),
            "--mem-capacity" => mem_capacity = value().parse().unwrap_or_else(|_| usage()),
            "--cache-dir" => cache_dir = Some(value().into()),
            "--no-disk" => cache_dir = None,
            "--timeout-ms" => timeout_ms = value().parse().unwrap_or_else(|_| usage()),
            "--batch-parallelism" => {
                batch_parallelism = value().parse().unwrap_or_else(|_| usage())
            }
            "--max-conns" => max_conns = value().parse().unwrap_or_else(|_| usage()),
            "--idle-timeout-ms" => idle_timeout_ms = value().parse().unwrap_or_else(|_| usage()),
            "--core" => {
                core = match value().as_str() {
                    "reactor" => ServerCore::Reactor,
                    "threads" => ServerCore::ThreadPool,
                    _ => usage(),
                }
            }
            "--force-poll" => force_poll = true,
            "--mem-budget" => mem_budget = parse_bytes(&value()).unwrap_or_else(|| usage()),
            "--heavy-lane-workers" => {
                heavy_lane_workers = value().parse().unwrap_or_else(|_| usage())
            }
            "--shed-policy" => {
                shed_policy = ShedPolicy::parse(&value()).unwrap_or_else(|e| {
                    eprintln!("vliw-served: {e}");
                    usage()
                })
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let disk = cache_dir.map(DiskStore::new);
    let engine = CachedCompiler::new(TieredCache::new(mem_capacity, disk));
    let server = Server::bind(
        ServerConfig {
            addr,
            workers,
            default_timeout: Duration::from_millis(timeout_ms),
            batch_parallelism,
            core,
            idle_timeout: (idle_timeout_ms > 0).then(|| Duration::from_millis(idle_timeout_ms)),
            max_conns,
            force_poll,
            mem_budget,
            heavy_lane_workers,
            shed_policy,
            ..ServerConfig::default()
        },
        engine,
    )
    .unwrap_or_else(|e| {
        eprintln!("vliw-served: bind failed: {e}");
        std::process::exit(1);
    });

    let bound = server.local_addr().expect("bound listener has an address");
    // The smoke tests parse this line to learn the ephemeral port.
    println!("vliw-served listening on {bound}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let _ = HANDLE.set(server.shutdown_handle());
    install_signal_handlers();

    server.run();
    println!("vliw-served: drained, exiting");
}
