//! Service counters and latency percentiles.
//!
//! Counters are relaxed atomics — they are monotone event tallies, so no
//! ordering is needed. Latencies go into a fixed-size mutex-guarded ring (the
//! last [`RING_CAP`] requests); percentiles are computed over a sorted copy
//! at snapshot time, which keeps the hot path to a push.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many recent request latencies the percentile ring retains.
const RING_CAP: usize = 4096;

/// Shared counters for one cache/server instance.
#[derive(Default)]
pub struct StatsRegistry {
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    canon_hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    dedup_waits: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    sync_writes: AtomicU64,
    /// `(samples, write cursor)`: once full, the cursor wraps and overwrites
    /// the oldest slot, keeping a rolling window of the last RING_CAP values.
    latencies_us: Mutex<(Vec<u64>, usize)>,
}

/// A point-in-time copy of the counters plus latency percentiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Memory-tier cache hits.
    pub mem_hits: u64,
    /// Disk-tier cache hits (served after a memory miss).
    pub disk_hits: u64,
    /// Semantic (alpha-equivalence) hits: the exact key missed but the
    /// canonical form's key held an alias entry, so an isomorphic variant
    /// of a cached loop was served without compiling. Each one is also
    /// counted as a mem/disk hit by the tier that held the alias.
    pub canon_hits: u64,
    /// Full misses (required a pipeline execution or a wait on one).
    pub misses: u64,
    /// Pipeline executions actually performed.
    pub compiles: u64,
    /// Requests that waited on an identical in-flight compile instead of
    /// executing their own.
    pub dedup_waits: u64,
    /// Requests that hit their deadline before the compile finished.
    pub timeouts: u64,
    /// Malformed or failed requests.
    pub errors: u64,
    /// `compile_batch` requests served (each carries many entries).
    pub batches: u64,
    /// Disk writes that ran synchronously because the write-behind queue
    /// was full (degraded mode — results are never dropped).
    pub sync_writes: u64,
    /// Number of latency samples currently in the ring.
    pub samples: u64,
    /// 50th-percentile request latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile request latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
}

impl StatsRegistry {
    /// Fresh zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a memory-tier hit.
    pub fn mem_hit(&self) {
        self.mem_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a disk-tier hit.
    pub fn disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a semantic (canonical-form alias) hit.
    pub fn canon_hit(&self) {
        self.canon_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a full miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an actual pipeline execution.
    pub fn compile(&self) {
        self.compiles.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request that piggybacked on an in-flight identical compile.
    pub fn dedup_wait(&self) {
        self.dedup_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request deadline expiry.
    pub fn timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a malformed or failed request.
    pub fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one served `compile_batch` request.
    pub fn batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a synchronous disk write forced by a full write-behind queue.
    pub fn sync_write(&self) {
        self.sync_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Push one request latency into the percentile ring.
    pub fn observe_latency_us(&self, us: u64) {
        let mut guard = self.latencies_us.lock().expect("latency ring poisoned");
        let (ring, cursor) = &mut *guard;
        if ring.len() < RING_CAP {
            ring.push(us);
        } else {
            ring[*cursor] = us;
        }
        *cursor = (*cursor + 1) % RING_CAP;
    }

    /// Copy out the counters and compute percentiles.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut lat = self
            .latencies_us
            .lock()
            .expect("latency ring poisoned")
            .0
            .clone();
        lat.sort_unstable();
        let pct = |p: f64| -> u64 {
            if lat.is_empty() {
                0
            } else {
                let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
                lat[idx.min(lat.len() - 1)]
            }
        };
        StatsSnapshot {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            canon_hits: self.canon_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            dedup_waits: self.dedup_waits.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            sync_writes: self.sync_writes.load(Ordering::Relaxed),
            samples: lat.len() as u64,
            p50_us: pct(0.50),
            p90_us: pct(0.90),
            p99_us: pct(0.99),
        }
    }
}

impl StatsSnapshot {
    /// Total cache hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = StatsRegistry::new();
        s.mem_hit();
        s.mem_hit();
        s.disk_hit();
        s.canon_hit();
        s.miss();
        s.compile();
        s.dedup_wait();
        s.timeout();
        s.error();
        s.batch();
        s.sync_write();
        let snap = s.snapshot();
        assert_eq!(snap.mem_hits, 2);
        assert_eq!(snap.disk_hits, 1);
        assert_eq!(snap.hits(), 3);
        assert_eq!(snap.canon_hits, 1);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.compiles, 1);
        assert_eq!(snap.dedup_waits, 1);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.sync_writes, 1);
    }

    #[test]
    fn percentiles_over_known_distribution() {
        let s = StatsRegistry::new();
        for us in 1..=100 {
            s.observe_latency_us(us);
        }
        let snap = s.snapshot();
        assert_eq!(snap.samples, 100);
        assert!((49..=51).contains(&snap.p50_us), "p50={}", snap.p50_us);
        assert!((89..=91).contains(&snap.p90_us), "p90={}", snap.p90_us);
        assert!((98..=100).contains(&snap.p99_us), "p99={}", snap.p99_us);
    }

    #[test]
    fn ring_wraps_and_drops_oldest() {
        let s = StatsRegistry::new();
        // Fill with large values, then overwrite the whole window with 1s:
        // the old values must be gone from the percentiles.
        for _ in 0..RING_CAP {
            s.observe_latency_us(1_000_000);
        }
        for _ in 0..RING_CAP {
            s.observe_latency_us(1);
        }
        let snap = s.snapshot();
        assert_eq!(snap.samples as usize, RING_CAP);
        assert_eq!(snap.p99_us, 1);
    }

    #[test]
    fn empty_ring_yields_zero_percentiles() {
        let snap = StatsRegistry::new().snapshot();
        assert_eq!((snap.p50_us, snap.p99_us, snap.samples), (0, 0, 0));
    }
}
