//! Service counters and latency percentiles.
//!
//! Counters are relaxed atomics — they are monotone event tallies, so no
//! ordering is needed. Latencies go into lock-free log-linear histograms
//! ([`crate::hist::Hist`]): the hot path is one `fetch_add`, percentiles
//! are computed from bucket counts at snapshot time, and bucket counts are
//! additive so the sharded aggregate view can merge peers into one honest
//! distribution instead of taking the worst peer's percentile.
//!
//! The reactor splits each request's wall time into **queue wait** (from
//! the moment the parsed request is handed to the compile worker pool
//! until a worker picks it up) and **service time** (cache probe or
//! pipeline execution plus response rendering). Queue wait rising while
//! service time stays flat is the signature of an under-provisioned worker
//! pool; both rising together means the compiles themselves got slower.

use crate::hist::Hist;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters for one cache/server instance.
#[derive(Default)]
pub struct StatsRegistry {
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    canon_hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    dedup_waits: AtomicU64,
    timeouts: AtomicU64,
    joint_truncated: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    sync_writes: AtomicU64,
    accepts: AtomicU64,
    conns_rejected: AtomicU64,
    idle_closed: AtomicU64,
    oversize_closed: AtomicU64,
    /// Request service time (cache probe / compile + render), microseconds.
    latency_us: Hist,
    /// Time a job waited in the worker queue before pickup, microseconds.
    queue_us: Hist,
}

/// A point-in-time copy of the counters plus latency percentiles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Memory-tier cache hits.
    pub mem_hits: u64,
    /// Disk-tier cache hits (served after a memory miss).
    pub disk_hits: u64,
    /// Semantic (alpha-equivalence) hits: the exact key missed but the
    /// canonical form's key held an alias entry, so an isomorphic variant
    /// of a cached loop was served without compiling. Each one is also
    /// counted as a mem/disk hit by the tier that held the alias.
    pub canon_hits: u64,
    /// Full misses (required a pipeline execution or a wait on one).
    pub misses: u64,
    /// Pipeline executions actually performed.
    pub compiles: u64,
    /// Requests that waited on an identical in-flight compile instead of
    /// executing their own.
    pub dedup_waits: u64,
    /// Requests that hit their deadline before the compile finished.
    pub timeouts: u64,
    /// Joint-partitioner compiles whose search was budget-truncated: the
    /// response carried the greedy incumbent with `optimal: false` and a
    /// proven `lower_bound_ii` instead of timing out.
    pub joint_truncated: u64,
    /// Malformed or failed requests.
    pub errors: u64,
    /// `compile_batch` requests served (each carries many entries).
    pub batches: u64,
    /// Disk writes that ran synchronously because the write-behind queue
    /// was full (degraded mode — results are never dropped).
    pub sync_writes: u64,
    /// Connections accepted over the server's lifetime.
    pub accepts: u64,
    /// Connections refused at the `max_conns` cap.
    pub conns_rejected: u64,
    /// Connections closed by the idle-timeout sweep (slowloris defense).
    pub idle_closed: u64,
    /// Connections closed for exceeding the request-line length cap.
    pub oversize_closed: u64,
    /// Number of service-latency samples recorded.
    pub samples: u64,
    /// 50th-percentile service time, microseconds.
    pub p50_us: u64,
    /// 90th-percentile service time, microseconds.
    pub p90_us: u64,
    /// 99th-percentile service time, microseconds.
    pub p99_us: u64,
    /// Number of queue-wait samples recorded.
    pub queue_samples: u64,
    /// 50th-percentile worker-queue wait, microseconds.
    pub queue_p50_us: u64,
    /// 99th-percentile worker-queue wait, microseconds.
    pub queue_p99_us: u64,
    /// Sparse `(bucket, count)` service-time histogram (see [`crate::hist`]).
    /// Shipped on the stats wire so the sharded aggregator can sum peers'
    /// distributions and report honest fleet-wide percentiles.
    pub latency_hist: Vec<(u32, u64)>,
    /// Sparse `(bucket, count)` worker-queue-wait histogram.
    pub queue_hist: Vec<(u32, u64)>,
}

impl StatsRegistry {
    /// Fresh zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a memory-tier hit.
    pub fn mem_hit(&self) {
        self.mem_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a disk-tier hit.
    pub fn disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a semantic (canonical-form alias) hit.
    pub fn canon_hit(&self) {
        self.canon_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a full miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an actual pipeline execution.
    pub fn compile(&self) {
        self.compiles.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request that piggybacked on an in-flight identical compile.
    pub fn dedup_wait(&self) {
        self.dedup_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request deadline expiry.
    pub fn timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a budget-truncated joint compile (anytime path taken).
    pub fn joint_truncated(&self) {
        self.joint_truncated.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a malformed or failed request.
    pub fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one served `compile_batch` request.
    pub fn batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a synchronous disk write forced by a full write-behind queue.
    pub fn sync_write(&self) {
        self.sync_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an accepted connection.
    pub fn accept(&self) {
        self.accepts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection refused at the `max_conns` cap.
    pub fn conn_rejected(&self) {
        self.conns_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection closed by the idle-timeout sweep.
    pub fn idle_close(&self) {
        self.idle_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection closed for an oversized request line.
    pub fn oversize_close(&self) {
        self.oversize_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request's service time.
    pub fn observe_latency_us(&self, us: u64) {
        self.latency_us.record(us);
    }

    /// Record one job's worker-queue wait.
    pub fn observe_queue_us(&self, us: u64) {
        self.queue_us.record(us);
    }

    /// Copy out the counters and compute percentiles.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            canon_hits: self.canon_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            dedup_waits: self.dedup_waits.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            joint_truncated: self.joint_truncated.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            sync_writes: self.sync_writes.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
            conns_rejected: self.conns_rejected.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            oversize_closed: self.oversize_closed.load(Ordering::Relaxed),
            samples: self.latency_us.count(),
            p50_us: self.latency_us.percentile(0.50),
            p90_us: self.latency_us.percentile(0.90),
            p99_us: self.latency_us.percentile(0.99),
            queue_samples: self.queue_us.count(),
            queue_p50_us: self.queue_us.percentile(0.50),
            queue_p99_us: self.queue_us.percentile(0.99),
            latency_hist: self.latency_us.sparse(),
            queue_hist: self.queue_us.sparse(),
        }
    }
}

impl StatsSnapshot {
    /// Total cache hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = StatsRegistry::new();
        s.mem_hit();
        s.mem_hit();
        s.disk_hit();
        s.canon_hit();
        s.miss();
        s.compile();
        s.dedup_wait();
        s.timeout();
        s.joint_truncated();
        s.error();
        s.batch();
        s.sync_write();
        s.accept();
        s.conn_rejected();
        s.idle_close();
        s.oversize_close();
        let snap = s.snapshot();
        assert_eq!(snap.mem_hits, 2);
        assert_eq!(snap.disk_hits, 1);
        assert_eq!(snap.hits(), 3);
        assert_eq!(snap.canon_hits, 1);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.compiles, 1);
        assert_eq!(snap.dedup_waits, 1);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.joint_truncated, 1);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.sync_writes, 1);
        assert_eq!(snap.accepts, 1);
        assert_eq!(snap.conns_rejected, 1);
        assert_eq!(snap.idle_closed, 1);
        assert_eq!(snap.oversize_closed, 1);
    }

    #[test]
    fn percentiles_over_known_distribution() {
        let s = StatsRegistry::new();
        for us in 1..=100 {
            s.observe_latency_us(us);
        }
        let snap = s.snapshot();
        assert_eq!(snap.samples, 100);
        assert!((49..=51).contains(&snap.p50_us), "p50={}", snap.p50_us);
        assert!((89..=91).contains(&snap.p90_us), "p90={}", snap.p90_us);
        assert!((98..=100).contains(&snap.p99_us), "p99={}", snap.p99_us);
    }

    #[test]
    fn queue_wait_is_tracked_separately_from_service_time() {
        let s = StatsRegistry::new();
        for _ in 0..100 {
            s.observe_latency_us(10);
            s.observe_queue_us(10_000);
        }
        let snap = s.snapshot();
        assert_eq!(snap.samples, 100);
        assert_eq!(snap.queue_samples, 100);
        assert_eq!(snap.p50_us, 10, "service stays flat");
        assert!(
            snap.queue_p50_us > 9_000,
            "queue wait visible on its own axis: {}",
            snap.queue_p50_us
        );
    }

    #[test]
    fn empty_registry_yields_zero_percentiles() {
        let snap = StatsRegistry::new().snapshot();
        assert_eq!((snap.p50_us, snap.p99_us, snap.samples), (0, 0, 0));
        assert_eq!((snap.queue_p50_us, snap.queue_samples), (0, 0));
    }
}
