//! The cached, deduplicating compile engine.
//!
//! [`CachedCompiler`] is the piece both the TCP server and the `repro
//! --cache` driver share: a [`TieredCache`] plus an in-flight table that
//! collapses concurrent identical requests onto one pipeline execution.
//!
//! The in-flight table maps cache key → a condvar-signalled slot. The first
//! requester of a key (the *leader*) spawns a detached compute thread and
//! then waits on the slot like everyone else; later requesters of the same
//! key just wait. The compute thread publishes to the cache *before*
//! signalling the slot and removing it from the table, so a request that
//! misses the table afterwards is guaranteed to hit the cache. A deadline
//! expiry returns [`CompileError::Timeout`] to that caller only — the
//! compute thread keeps running and still populates the cache, so a retry
//! of the same request is cheap.

use crate::cache::TieredCache;
use crate::envelope::{CacheKey, CompileRequest, CompileResult, RequestError};
use crate::stats::StatsRegistry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use vliw_pipeline::run_loop;

/// How a request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Served from the cache (either tier).
    Cache,
    /// This request's own pipeline execution.
    Compiled,
    /// Piggybacked on an identical in-flight execution.
    Deduped,
}

impl Source {
    /// Whether the result came from the cache rather than a fresh execution.
    pub fn is_cache_hit(self) -> bool {
        matches!(self, Source::Cache)
    }

    /// Wire label for the `served` field of a compile response.
    pub fn label(self) -> &'static str {
        match self {
            Source::Cache => "cache",
            Source::Compiled => "compiled",
            Source::Deduped => "deduped",
        }
    }
}

/// A compile failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The request failed validation.
    BadRequest(RequestError),
    /// The per-request deadline expired; the execution continues in the
    /// background and will populate the cache.
    Timeout,
    /// The pipeline panicked or the engine failed internally.
    Internal(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::BadRequest(e) => write!(f, "{e}"),
            CompileError::Timeout => write!(f, "compile deadline expired"),
            CompileError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// One in-flight execution slot.
struct Inflight {
    done: Mutex<Option<Result<CompileResult, String>>>,
    cv: Condvar,
}

/// Content-cached compiler with in-flight deduplication.
pub struct CachedCompiler {
    cache: TieredCache,
    inflight: Mutex<HashMap<CacheKey, Arc<Inflight>>>,
}

impl CachedCompiler {
    /// Wrap `cache`.
    pub fn new(cache: TieredCache) -> Arc<Self> {
        Arc::new(CachedCompiler {
            cache,
            inflight: Mutex::new(HashMap::new()),
        })
    }

    /// The cache statistics (shared with the server's `stats` endpoint).
    pub fn stats(&self) -> &StatsRegistry {
        self.cache.stats()
    }

    /// Memory-tier evictions so far.
    pub fn evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Compile `req`, canonicalising it first. `deadline` bounds how long
    /// this caller waits; the execution itself is never cancelled.
    pub fn compile(
        self: &Arc<Self>,
        req: &CompileRequest,
        deadline: Option<Duration>,
    ) -> Result<(CompileResult, Source), CompileError> {
        let canonical = req.canonicalize().map_err(CompileError::BadRequest)?;
        let key = canonical.cache_key();
        self.compile_canonical(&canonical, &key, deadline)
    }

    /// Compile an already-canonical request under a precomputed `key`.
    pub fn compile_canonical(
        self: &Arc<Self>,
        req: &CompileRequest,
        key: &str,
        deadline: Option<Duration>,
    ) -> Result<(CompileResult, Source), CompileError> {
        if let Some(hit) = self.cache.get(key) {
            return Ok((hit, Source::Cache));
        }

        let (slot, leader) = {
            let mut table = self.inflight.lock().expect("inflight table poisoned");
            match table.get(key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Inflight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    table.insert(key.to_string(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };

        if leader {
            self.spawn_compute(req.clone(), key.to_string(), Arc::clone(&slot));
        } else {
            self.stats().dedup_wait();
        }

        let started = Instant::now();
        let mut done = slot.done.lock().expect("inflight slot poisoned");
        loop {
            if let Some(outcome) = done.as_ref() {
                return match outcome {
                    Ok(res) => Ok((
                        res.clone(),
                        if leader {
                            Source::Compiled
                        } else {
                            Source::Deduped
                        },
                    )),
                    Err(m) => Err(CompileError::Internal(m.clone())),
                };
            }
            match deadline {
                None => {
                    done = slot.cv.wait(done).expect("inflight slot poisoned");
                }
                Some(limit) => {
                    let elapsed = started.elapsed();
                    if elapsed >= limit {
                        self.stats().timeout();
                        return Err(CompileError::Timeout);
                    }
                    let (guard, _) = slot
                        .cv
                        .wait_timeout(done, limit - elapsed)
                        .expect("inflight slot poisoned");
                    done = guard;
                }
            }
        }
    }

    fn spawn_compute(self: &Arc<Self>, req: CompileRequest, key: CacheKey, slot: Arc<Inflight>) {
        let engine = Arc::clone(self);
        std::thread::spawn(move || {
            let outcome = match req.decode() {
                Err(e) => Err(e.to_string()),
                Ok((body, machine, cfg)) => {
                    engine.stats().compile();
                    catch_unwind(AssertUnwindSafe(|| run_loop(&body, &machine, &cfg)))
                        .map(|lr| CompileResult::from_loop_result(key.clone(), &lr))
                        .map_err(|p| {
                            let msg = p
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| p.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "pipeline panicked".to_string());
                            format!("pipeline panicked: {msg}")
                        })
                }
            };
            // Publish to the cache before signalling, so anyone who misses
            // the inflight table after removal is guaranteed a cache hit.
            if let Ok(res) = &outcome {
                engine.cache.put(&key, res);
            }
            *slot.done.lock().expect("inflight slot poisoned") = Some(outcome);
            slot.cv.notify_all();
            engine
                .inflight
                .lock()
                .expect("inflight table poisoned")
                .remove(&key);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{DiskStore, TieredCache};
    use vliw_loopgen::{corpus_with, CorpusSpec};
    use vliw_machine::MachineDesc;
    use vliw_pipeline::PipelineConfig;

    fn engine() -> Arc<CachedCompiler> {
        CachedCompiler::new(TieredCache::new(256, None))
    }

    fn sample_request(i: usize) -> CompileRequest {
        let spec = CorpusSpec {
            n: i + 1,
            ..Default::default()
        };
        let body = corpus_with(&spec).remove(i);
        CompileRequest::from_parts(
            &body,
            &MachineDesc::embedded(2, 4),
            &PipelineConfig::default(),
        )
    }

    #[test]
    fn second_identical_request_is_a_cache_hit() {
        let engine = engine();
        let req = sample_request(0);
        let (first, src1) = engine.compile(&req, None).unwrap();
        assert_eq!(src1, Source::Compiled);
        let (second, src2) = engine.compile(&req, None).unwrap();
        assert_eq!(src2, Source::Cache);
        assert_eq!(first, second);
        let snap = engine.stats().snapshot();
        assert_eq!(snap.compiles, 1);
        assert_eq!(snap.mem_hits, 1);
    }

    #[test]
    fn concurrent_identical_requests_execute_once() {
        let engine = engine();
        let req = sample_request(1);
        let results: Vec<(CompileResult, Source)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let engine = Arc::clone(&engine);
                    let req = req.clone();
                    s.spawn(move || engine.compile(&req, None).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let snap = engine.stats().snapshot();
        assert_eq!(snap.compiles, 1, "dedup must collapse to one execution");
        let reference = &results[0].0;
        for (res, _) in &results {
            assert_eq!(res, reference);
        }
        let compiled = results
            .iter()
            .filter(|(_, s)| *s == Source::Compiled)
            .count();
        assert_eq!(compiled, 1);
    }

    #[test]
    fn malformed_request_is_rejected_without_execution() {
        let engine = engine();
        let req = CompileRequest {
            loop_text: "garbage".into(),
            machine_text: "machine m\ncluster 4 32 32".into(),
            config_text: String::new(),
        };
        match engine.compile(&req, None) {
            Err(CompileError::BadRequest(e)) => assert_eq!(e.section, "loop"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        assert_eq!(engine.stats().snapshot().compiles, 0);
    }

    #[test]
    fn disk_tier_survives_engine_restart() {
        let root =
            std::env::temp_dir().join(format!("vliw-serve-test-engine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let req = sample_request(2);
        let first = {
            let engine = CachedCompiler::new(TieredCache::new(8, Some(DiskStore::new(&root))));
            engine.compile(&req, None).unwrap().0
        };
        let engine = CachedCompiler::new(TieredCache::new(8, Some(DiskStore::new(&root))));
        let (second, src) = engine.compile(&req, None).unwrap();
        assert_eq!(src, Source::Cache);
        assert_eq!(first, second);
        assert_eq!(engine.stats().snapshot().compiles, 0);
        let _ = std::fs::remove_dir_all(&root);
    }
}
