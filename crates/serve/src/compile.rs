//! The cached, deduplicating compile engine.
//!
//! [`CachedCompiler`] is the piece both the TCP server and the `repro
//! --cache` driver share: a [`TieredCache`] plus an in-flight table that
//! collapses concurrent identical requests onto one pipeline execution.
//!
//! The in-flight table maps cache key → a condvar-signalled slot. The first
//! requester of a key (the *leader*) runs the pipeline and then signals the
//! slot; later requesters of the same key just wait. With no deadline the
//! leader computes **inline** on the calling thread (no spawn, no clone —
//! this is the corpus-sweep hot path). With a deadline the leader detaches
//! the execution onto a compute thread so an expiry returns
//! [`CompileError::Timeout`] to that caller only — the execution keeps
//! running and still populates the cache, so a retry of the same request is
//! cheap. Either way the result is published to the cache *before* the slot
//! is signalled and removed from the table, so a request that misses the
//! table afterwards is guaranteed to hit the cache.
//!
//! Parsing happens exactly once per request: [`CachedCompiler::compile`]
//! decodes the wire text up front and hands the parsed IR/machine/config
//! structures straight to `run_loop`; [`CachedCompiler::compile_parts`]
//! starts from parsed structures and never parses at all.

use crate::cache::TieredCache;
use crate::envelope::{CacheKey, CompileRequest, CompileResult, RequestError};
use crate::stats::StatsRegistry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use vliw_governor::TrackedBudget;
use vliw_ir::Loop;
use vliw_machine::MachineDesc;
use vliw_pipeline::{run_loop_governed, PartitionerKind, PipelineConfig};

/// How a request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Served from the cache (either tier).
    Cache,
    /// This request's own pipeline execution.
    Compiled,
    /// Piggybacked on an identical in-flight execution.
    Deduped,
}

impl Source {
    /// Whether the result came from the cache rather than a fresh execution.
    pub fn is_cache_hit(self) -> bool {
        matches!(self, Source::Cache)
    }

    /// Wire label for the `served` field of a compile response.
    pub fn label(self) -> &'static str {
        match self {
            Source::Cache => "cache",
            Source::Compiled => "compiled",
            Source::Deduped => "deduped",
        }
    }
}

/// A compile failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The request failed validation.
    BadRequest(RequestError),
    /// The per-request deadline expired; the execution continues in the
    /// background and will populate the cache.
    Timeout,
    /// Transient overload: the server shed this request before running it.
    /// Well-formed — the client should back off and retry. Distinct from
    /// [`CompileError::BadRequest`] on the wire (`error_kind: "shed"`).
    Shed {
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
    /// The request can never fit within the server's resource limits;
    /// retrying is pointless.
    Rejected,
    /// The pipeline panicked or the engine failed internally.
    Internal(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::BadRequest(e) => write!(f, "{e}"),
            CompileError::Timeout => write!(f, "compile deadline expired"),
            CompileError::Shed { retry_after_ms } => {
                write!(f, "server overloaded, retry after {retry_after_ms} ms")
            }
            CompileError::Rejected => write!(f, "request exceeds server resource limits"),
            CompileError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// One in-flight execution slot.
struct Inflight {
    done: Mutex<Option<Result<CompileResult, String>>>,
    cv: Condvar,
}

impl Inflight {
    fn new() -> Arc<Self> {
        Arc::new(Inflight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        })
    }
}

/// Entries kept in the preimage→key memo and the rendered-result cache
/// before each is cleared wholesale. Both are derived, content-addressed
/// side tables — a clear costs only recomputation, never correctness.
const SIDE_TABLE_CAP: usize = 16 * 1024;

/// Anytime routing for the joint partitioner: clamp the solver's own
/// wall-clock budget to a fraction of the request deadline, so an
/// over-budget loop returns *in time* with the greedy incumbent, an honest
/// `optimal: false`, and the proven `lower_bound_ii` — instead of blowing
/// the deadline into a bare [`CompileError::Timeout`] with nothing to show.
/// Three quarters of the deadline go to the solver; the remainder covers
/// the rest of the pipeline (copies, reschedule, allocation, lints) plus
/// response rendering. Returns the effective config and whether the budget
/// was actually tightened — a result truncated by a *request-derived*
/// budget must never be cached under the canonical config key, or it would
/// poison identical requests arriving with larger deadlines.
fn clamp_joint_budget(cfg: &PipelineConfig, deadline: Option<Duration>) -> (PipelineConfig, bool) {
    let Some(limit) = deadline else {
        return (cfg.clone(), false);
    };
    let PartitionerKind::Joint { budget_ms } = cfg.partitioner else {
        return (cfg.clone(), false);
    };
    let granted = ((limit.as_millis() as u64).saturating_mul(3) / 4).max(1);
    if budget_ms != 0 && budget_ms <= granted {
        return (cfg.clone(), false);
    }
    let mut out = cfg.clone();
    out.partitioner = PartitionerKind::Joint { budget_ms: granted };
    (out, true)
}

/// Content-cached compiler with in-flight deduplication.
pub struct CachedCompiler {
    cache: TieredCache,
    inflight: Mutex<HashMap<CacheKey, Arc<Inflight>>>,
    /// Request → cache key. Hashing a request costs a SHA-256 pass over
    /// ~1 KiB of canonical text plus building the preimage buffer; repeat
    /// requests (every warm sweep) skip both with one table probe keyed on
    /// the request sections themselves. The key is a pure function of the
    /// request text, so the memo can never serve a stale key.
    key_memo: Mutex<HashMap<CompileRequest, CacheKey>>,
    /// Cache key → pre-rendered result JSON, shared into responses as
    /// [`crate::Json::Raw`]. Keys are content hashes, so an entry can never
    /// go stale; the bound only limits memory.
    rendered: Mutex<HashMap<CacheKey, Arc<str>>>,
}

impl CachedCompiler {
    /// Wrap `cache`.
    pub fn new(cache: TieredCache) -> Arc<Self> {
        Arc::new(CachedCompiler {
            cache,
            inflight: Mutex::new(HashMap::new()),
            key_memo: Mutex::new(HashMap::new()),
            rendered: Mutex::new(HashMap::new()),
        })
    }

    /// The cache key for `req`, memoised so warm-path requests skip both
    /// the preimage build and the SHA-256 pass.
    fn key_for(&self, req: &CompileRequest) -> CacheKey {
        if let Some(key) = self.key_memo.lock().expect("key memo poisoned").get(req) {
            return key.clone();
        }
        let key = crate::hash::sha256_hex(&req.preimage());
        let mut memo = self.key_memo.lock().expect("key memo poisoned");
        if memo.len() >= SIDE_TABLE_CAP {
            memo.clear();
        }
        memo.insert(req.clone(), key.clone());
        key
    }

    /// Serve `req` as pre-rendered result JSON — the server's hot path. A
    /// rendered-map hit returns the shared bytes without even cloning the
    /// cached result (the map is keyed by content hash, so an entry can
    /// never be stale; it just doesn't refresh LRU recency). Anything else
    /// falls through to the full compile path and renders once.
    pub fn serve_rendered(
        self: &Arc<Self>,
        req: &CompileRequest,
        deadline: Option<Duration>,
    ) -> Result<(Arc<str>, Source), CompileError> {
        self.serve_rendered_governed(req, deadline, None)
    }

    /// [`serve_rendered`](Self::serve_rendered) under a server-granted
    /// resource budget: a miss runs the pipeline with `budget` threaded
    /// into the exact/joint search loops, so pool exhaustion truncates the
    /// solve instead of growing the process.
    pub fn serve_rendered_governed(
        self: &Arc<Self>,
        req: &CompileRequest,
        deadline: Option<Duration>,
        budget: Option<TrackedBudget>,
    ) -> Result<(Arc<str>, Source), CompileError> {
        let raw_key = self.key_for(req);
        if let Some(doc) = self
            .rendered
            .lock()
            .expect("rendered cache poisoned")
            .get(&raw_key)
        {
            self.stats().mem_hit();
            return Ok((Arc::clone(doc), Source::Cache));
        }
        let (res, source) = match self.cache.probe(&raw_key) {
            Some(hit) => (hit, Source::Cache),
            None => {
                let (body, machine, cfg) = req.decode().map_err(CompileError::BadRequest)?;
                self.compile_parts_governed(&body, &machine, &cfg, deadline, budget)?
            }
        };
        Ok((self.rendered(&res), source))
    }

    /// Probe every cache layer for `req` without ever compiling: the
    /// rendered memo, then the tiered cache. The server's admission path
    /// uses this so a heavy-shaped request that is actually a warm hit is
    /// served without opening a pool grant.
    pub fn probe_rendered(self: &Arc<Self>, req: &CompileRequest) -> Option<Arc<str>> {
        let raw_key = self.key_for(req);
        if let Some(doc) = self
            .rendered
            .lock()
            .expect("rendered cache poisoned")
            .get(&raw_key)
        {
            self.stats().mem_hit();
            return Some(Arc::clone(doc));
        }
        let res = self.cache.probe(&raw_key)?;
        Some(self.rendered(&res))
    }

    /// The result's wire JSON, pre-rendered once per key and shared across
    /// responses. Budget-truncated joint results are rendered but never
    /// memoised: the truncation point depends on the caller's deadline,
    /// not just the request text the key hashes, so a memo entry could
    /// serve one caller's degraded answer to another with time to spare.
    pub fn rendered(&self, res: &CompileResult) -> Arc<str> {
        if let Some(doc) = self
            .rendered
            .lock()
            .expect("rendered cache poisoned")
            .get(&res.key)
        {
            return Arc::clone(doc);
        }
        let doc: Arc<str> = res.to_json().render().into();
        if res.joint.is_some_and(|j| !j.optimal) || res.exact.is_some_and(|e| !e.optimal) {
            return doc;
        }
        let mut cache = self.rendered.lock().expect("rendered cache poisoned");
        if cache.len() >= SIDE_TABLE_CAP {
            cache.clear();
        }
        cache.insert(res.key.clone(), Arc::clone(&doc));
        doc
    }

    /// The cache statistics (shared with the server's `stats` endpoint).
    pub fn stats(&self) -> &StatsRegistry {
        self.cache.stats()
    }

    /// Memory-tier evictions so far.
    pub fn evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Barrier: every completed compile is persisted when this returns.
    pub fn flush(&self) {
        self.cache.flush();
    }

    /// Compile `req`. The raw wire bytes double as the cache-key preimage,
    /// so a request whose text is already canonical (anything our own
    /// client or the sharded router sends) is served from cache without
    /// parsing at all. Only on a raw-key miss is the text parsed — exactly
    /// once — and the parsed structures handed straight to the pipeline;
    /// non-canonical spellings of a cached request converge to the same
    /// canonical key there. `deadline` bounds how long this caller waits;
    /// the execution itself is never cancelled.
    pub fn compile(
        self: &Arc<Self>,
        req: &CompileRequest,
        deadline: Option<Duration>,
    ) -> Result<(CompileResult, Source), CompileError> {
        let raw_key = self.key_for(req);
        if let Some(hit) = self.cache.probe(&raw_key) {
            return Ok((hit, Source::Cache));
        }
        let (body, machine, cfg) = req.decode().map_err(CompileError::BadRequest)?;
        self.compile_parts(&body, &machine, &cfg, deadline)
    }

    /// Compile already-parsed pipeline inputs: canonical text is formatted
    /// once for the key preimage, and a miss runs `run_loop` on the given
    /// structures directly — no text is ever parsed.
    pub fn compile_parts(
        self: &Arc<Self>,
        body: &Loop,
        machine: &MachineDesc,
        cfg: &PipelineConfig,
        deadline: Option<Duration>,
    ) -> Result<(CompileResult, Source), CompileError> {
        self.compile_parts_governed(body, machine, cfg, deadline, None)
    }

    /// [`compile_parts`](Self::compile_parts) with an optional server
    /// resource budget threaded into the solver loops.
    pub fn compile_parts_governed(
        self: &Arc<Self>,
        body: &Loop,
        machine: &MachineDesc,
        cfg: &PipelineConfig,
        deadline: Option<Duration>,
        budget: Option<TrackedBudget>,
    ) -> Result<(CompileResult, Source), CompileError> {
        let canonical = CompileRequest::from_parts(body, machine, cfg);
        let key = self.key_for(&canonical);
        if let Some(hit) = self.cache.probe(&key) {
            return Ok((hit, Source::Cache));
        }
        self.compile_missed(body, machine, cfg, &key, deadline, budget)
    }

    /// Compile an already-canonical request under a precomputed `key`. The
    /// text is decoded only on a miss (one parse, no re-format).
    pub fn compile_canonical(
        self: &Arc<Self>,
        req: &CompileRequest,
        key: &str,
        deadline: Option<Duration>,
    ) -> Result<(CompileResult, Source), CompileError> {
        if let Some(hit) = self.cache.probe(key) {
            return Ok((hit, Source::Cache));
        }
        let (body, machine, cfg) = req.decode().map_err(CompileError::BadRequest)?;
        self.compile_missed(&body, &machine, &cfg, &key.to_string(), deadline, None)
    }

    /// The exact-key-missed path shared by every compile entry point.
    ///
    /// The exact key stays authoritative — an exact repeat is always served
    /// bit-identically from its own entry. But the pipeline's heuristic
    /// tie-breaks are index-sensitive, so isomorphic loops can compile to
    /// different (equally valid) results; to make the cache see through
    /// renaming anyway, each compiled result is *also* stored under its
    /// **semantic key** (the exact key of its alpha-canonical form), mapped
    /// into canonical space. A later exact-miss whose canonical form
    /// matches is then served the equivalence class representative's
    /// compilation, mapped back into the caller's names through the
    /// caller's own witness — no witness ever needs persisting, and the
    /// alias entries ride the ordinary mem/disk tiers, journal and all.
    fn compile_missed(
        self: &Arc<Self>,
        body: &Loop,
        machine: &MachineDesc,
        cfg: &PipelineConfig,
        key: &CacheKey,
        deadline: Option<Duration>,
        budget: Option<TrackedBudget>,
    ) -> Result<(CompileResult, Source), CompileError> {
        let canon = vliw_normal::canonicalize(body);
        let sem_key = self.key_for(&CompileRequest::from_parts(&canon.body, machine, cfg));
        let alias = (sem_key != *key).then(|| Arc::new((sem_key, canon.witness)));
        if let Some(a) = &alias {
            if let Some(hit) = self.cache.probe(&a.0) {
                self.stats().canon_hit();
                return Ok((hit.from_canonical_space(key.clone(), &a.1), Source::Cache));
            }
        }
        self.stats().miss();
        let (slot, leader) = self.join_inflight(key);
        if !leader {
            return self.wait(&slot, deadline, false);
        }
        let (effective_cfg, clamped) = clamp_joint_budget(cfg, deadline);
        match deadline {
            None => {
                let outcome =
                    self.execute_parts(body, machine, &effective_cfg, key, budget.as_ref());
                // A governed budget that actually *tripped* (pool
                // exhaustion or server deadline observed mid-solve)
                // truncated this result for reasons outside the request
                // text — never cache those, same as a deadline clamp. A
                // budget that was never felt leaves the result
                // reproducible and cacheable.
                let taint = clamped || budget.as_ref().is_some_and(|b| b.tripped());
                self.publish(key, &slot, outcome.clone(), alias.as_deref(), taint);
                match outcome {
                    Ok(res) => Ok((res, Source::Compiled)),
                    Err(m) => Err(CompileError::Internal(m)),
                }
            }
            Some(_) => {
                let engine = Arc::clone(self);
                let (body, machine) = (body.clone(), machine.clone());
                let thread_slot = Arc::clone(&slot);
                let thread_key = key.clone();
                std::thread::spawn(move || {
                    let outcome = engine.execute_parts(
                        &body,
                        &machine,
                        &effective_cfg,
                        &thread_key,
                        budget.as_ref(),
                    );
                    let taint = clamped || budget.as_ref().is_some_and(|b| b.tripped());
                    engine.publish(&thread_key, &thread_slot, outcome, alias.as_deref(), taint);
                });
                self.wait(&slot, deadline, true)
            }
        }
    }

    /// Join (or create) the in-flight slot for `key`. Returns the slot and
    /// whether this caller is the leader.
    fn join_inflight(&self, key: &str) -> (Arc<Inflight>, bool) {
        let mut table = self.inflight.lock().expect("inflight table poisoned");
        match table.get(key) {
            Some(slot) => {
                self.stats().dedup_wait();
                (Arc::clone(slot), false)
            }
            None => {
                let slot = Inflight::new();
                table.insert(key.to_string(), Arc::clone(&slot));
                (slot, true)
            }
        }
    }

    /// Run the pipeline on parsed inputs, converting panics to errors.
    fn execute_parts(
        &self,
        body: &Loop,
        machine: &MachineDesc,
        cfg: &PipelineConfig,
        key: &str,
        budget: Option<&TrackedBudget>,
    ) -> Result<CompileResult, String> {
        self.stats().compile();
        catch_unwind(AssertUnwindSafe(|| {
            run_loop_governed(body, machine, cfg, budget)
        }))
        .map(|lr| {
            let res = CompileResult::from_loop_result(key.to_string(), &lr);
            if res.joint.is_some_and(|j| !j.optimal) {
                self.stats().joint_truncated();
            }
            res
        })
        .map_err(|p| {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "pipeline panicked".to_string());
            format!("pipeline panicked: {msg}")
        })
    }

    /// Publish `outcome` to the cache, then to the slot, then retire the
    /// slot — in that order, so anyone who misses the inflight table after
    /// removal is guaranteed a cache hit. When a semantic `alias` is given,
    /// the result is also stored in canonical space under the semantic key,
    /// so future isomorphic variants of this loop hit without compiling.
    ///
    /// A joint *or exact* result truncated under a deadline-`clamped`
    /// budget — or cut short by a governed resource budget that tripped
    /// mid-solve — is published to waiters but **not** cached: its key is
    /// a pure function of the request text (which still names the original
    /// budget), so caching it would serve the degraded answer to identical
    /// requests arriving later with room to solve fully.
    fn publish(
        &self,
        key: &str,
        slot: &Arc<Inflight>,
        outcome: Result<CompileResult, String>,
        alias: Option<&(CacheKey, vliw_normal::Witness)>,
        taint_if_truncated: bool,
    ) {
        if let Ok(res) = &outcome {
            let tainted = taint_if_truncated
                && (res.joint.is_some_and(|j| !j.optimal) || res.exact.is_some_and(|e| !e.optimal));
            if !tainted {
                self.cache.put(key, res);
                if let Some((sem_key, witness)) = alias {
                    self.cache
                        .put(sem_key, &res.into_canonical_space(sem_key.clone(), witness));
                }
            }
        }
        *slot.done.lock().expect("inflight slot poisoned") = Some(outcome);
        slot.cv.notify_all();
        self.inflight
            .lock()
            .expect("inflight table poisoned")
            .remove(key);
    }

    /// Wait on an in-flight slot until its outcome is published or the
    /// deadline expires.
    fn wait(
        &self,
        slot: &Arc<Inflight>,
        deadline: Option<Duration>,
        leader: bool,
    ) -> Result<(CompileResult, Source), CompileError> {
        let started = Instant::now();
        let mut done = slot.done.lock().expect("inflight slot poisoned");
        loop {
            if let Some(outcome) = done.as_ref() {
                return match outcome {
                    Ok(res) => Ok((
                        res.clone(),
                        if leader {
                            Source::Compiled
                        } else {
                            Source::Deduped
                        },
                    )),
                    Err(m) => Err(CompileError::Internal(m.clone())),
                };
            }
            match deadline {
                None => {
                    done = slot.cv.wait(done).expect("inflight slot poisoned");
                }
                Some(limit) => {
                    let elapsed = started.elapsed();
                    if elapsed >= limit {
                        self.stats().timeout();
                        return Err(CompileError::Timeout);
                    }
                    let (guard, _) = slot
                        .cv
                        .wait_timeout(done, limit - elapsed)
                        .expect("inflight slot poisoned");
                    done = guard;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{DiskStore, TieredCache};
    use vliw_loopgen::{corpus_with, CorpusSpec};
    use vliw_machine::MachineDesc;
    use vliw_pipeline::PipelineConfig;

    fn engine() -> Arc<CachedCompiler> {
        CachedCompiler::new(TieredCache::new(256, None))
    }

    fn sample_request(i: usize) -> CompileRequest {
        let spec = CorpusSpec {
            n: i + 1,
            ..Default::default()
        };
        let body = corpus_with(&spec).remove(i);
        CompileRequest::from_parts(
            &body,
            &MachineDesc::embedded(2, 4),
            &PipelineConfig::default(),
        )
    }

    #[test]
    fn second_identical_request_is_a_cache_hit() {
        let engine = engine();
        let req = sample_request(0);
        let (first, src1) = engine.compile(&req, None).unwrap();
        assert_eq!(src1, Source::Compiled);
        let (second, src2) = engine.compile(&req, None).unwrap();
        assert_eq!(src2, Source::Cache);
        assert_eq!(first, second);
        let snap = engine.stats().snapshot();
        assert_eq!(snap.compiles, 1);
        assert_eq!(snap.mem_hits, 1);
    }

    #[test]
    fn compile_parts_matches_text_path() {
        let engine = engine();
        let spec = CorpusSpec {
            n: 1,
            ..Default::default()
        };
        let body = corpus_with(&spec).remove(0);
        let machine = MachineDesc::embedded(2, 4);
        let cfg = PipelineConfig::default();
        let (from_parts, src) = engine.compile_parts(&body, &machine, &cfg, None).unwrap();
        assert_eq!(src, Source::Compiled);
        // The text path lands on the same key and is served from cache.
        let req = CompileRequest::from_parts(&body, &machine, &cfg);
        let (from_text, src) = engine.compile(&req, None).unwrap();
        assert_eq!(src, Source::Cache);
        assert_eq!(from_parts, from_text);
        assert_eq!(from_parts.key, req.cache_key());
    }

    #[test]
    fn concurrent_identical_requests_execute_once() {
        let engine = engine();
        let req = sample_request(1);
        let results: Vec<(CompileResult, Source)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let engine = Arc::clone(&engine);
                    let req = req.clone();
                    s.spawn(move || engine.compile(&req, None).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let snap = engine.stats().snapshot();
        assert_eq!(snap.compiles, 1, "dedup must collapse to one execution");
        let reference = &results[0].0;
        for (res, _) in &results {
            assert_eq!(res, reference);
        }
        let compiled = results
            .iter()
            .filter(|(_, s)| *s == Source::Compiled)
            .count();
        assert_eq!(compiled, 1);
    }

    #[test]
    fn malformed_request_is_rejected_without_execution() {
        let engine = engine();
        let req = CompileRequest {
            loop_text: "garbage".into(),
            machine_text: "machine m\ncluster 4 32 32".into(),
            config_text: String::new(),
        };
        match engine.compile(&req, None) {
            Err(CompileError::BadRequest(e)) => assert_eq!(e.section, "loop"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        assert_eq!(engine.stats().snapshot().compiles, 0);
    }

    #[test]
    fn disk_tier_survives_engine_restart() {
        let root =
            std::env::temp_dir().join(format!("vliw-serve-test-engine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let req = sample_request(2);
        let first = {
            let engine = CachedCompiler::new(TieredCache::new(8, Some(DiskStore::new(&root))));
            engine.compile(&req, None).unwrap().0
            // Dropping the engine drains the write-behind queue.
        };
        let engine = CachedCompiler::new(TieredCache::new(8, Some(DiskStore::new(&root))));
        let (second, src) = engine.compile(&req, None).unwrap();
        assert_eq!(src, Source::Cache);
        assert_eq!(first, second);
        assert_eq!(engine.stats().snapshot().compiles, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// An isomorphic variant of a compiled loop must be served from the
    /// canonical-space alias entry without a second pipeline execution, and
    /// the served result must be bit-identical to the representative's
    /// result pushed through base→canon→variant witness composition.
    #[test]
    fn isomorphic_variant_hits_the_semantic_alias() {
        let engine = engine();
        let spec = CorpusSpec {
            n: 5,
            ..Default::default()
        };
        let body = corpus_with(&spec).remove(4);
        let machine = MachineDesc::embedded(2, 4);
        let cfg = PipelineConfig::default();
        let base_req = CompileRequest::from_parts(&body, &machine, &cfg);
        let (base, src) = engine.compile(&base_req, None).unwrap();
        assert_eq!(src, Source::Compiled);

        let var_body = vliw_normal::variant(&body, 23);
        let var_req = CompileRequest::from_parts(&var_body, &machine, &cfg);
        assert_ne!(var_req.cache_key(), base_req.cache_key());
        let (served, src) = engine.compile(&var_req, None).unwrap();
        assert_eq!(src, Source::Cache, "variant must not recompile");
        let snap = engine.stats().snapshot();
        assert_eq!(snap.compiles, 1);
        assert_eq!(snap.canon_hits, 1);

        // Reconstruct what the alias path must produce: the base result in
        // canonical space, mapped out through the variant's own witness.
        let (canon_req, base_w) = base_req.semantic_canonicalize().unwrap();
        let sem_key = canon_req.cache_key();
        assert_eq!(var_req.semantic_key().unwrap(), sem_key);
        let (_, var_w) = var_req.semantic_canonicalize().unwrap();
        let expected = base
            .into_canonical_space(sem_key, &base_w)
            .from_canonical_space(var_req.cache_key(), &var_w);
        assert_eq!(served, expected);
        assert_eq!(served.name, var_body.name);
        assert_eq!(
            served.to_json().render(),
            expected.to_json().render(),
            "wire JSON must be bit-identical"
        );

        // The variant's exact key was never populated (aliases live only
        // under the semantic key), so a repeat takes the alias path again.
        let (_, src) = engine.compile(&var_req, None).unwrap();
        assert_eq!(src, Source::Cache);
        assert_eq!(engine.stats().snapshot().canon_hits, 2);
    }

    /// Alias entries ride the ordinary disk tier: a fresh engine over the
    /// same store serves a *renamed* loop from cache without compiling.
    #[test]
    fn semantic_alias_survives_engine_restart() {
        let root =
            std::env::temp_dir().join(format!("vliw-serve-test-alias-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let spec = CorpusSpec {
            n: 6,
            ..Default::default()
        };
        let body = corpus_with(&spec).remove(5);
        let machine = MachineDesc::embedded(2, 4);
        let cfg = PipelineConfig::default();
        {
            let engine = CachedCompiler::new(TieredCache::new(8, Some(DiskStore::new(&root))));
            engine.compile_parts(&body, &machine, &cfg, None).unwrap();
        }
        let engine = CachedCompiler::new(TieredCache::new(8, Some(DiskStore::new(&root))));
        let var_body = vliw_normal::variant(&body, 99);
        let (_, src) = engine
            .compile_parts(&var_body, &machine, &cfg, None)
            .unwrap();
        assert_eq!(src, Source::Cache);
        let snap = engine.stats().snapshot();
        assert_eq!((snap.compiles, snap.canon_hits), (0, 1));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn deadline_requests_still_populate_cache() {
        let engine = engine();
        let req = sample_request(3);
        // A generous deadline: the spawned compute path must behave exactly
        // like the inline one.
        let (res, src) = engine.compile(&req, Some(Duration::from_secs(60))).unwrap();
        assert_eq!(src, Source::Compiled);
        let (hit, src) = engine.compile(&req, None).unwrap();
        assert_eq!(src, Source::Cache);
        assert_eq!(hit, res);
    }
}
