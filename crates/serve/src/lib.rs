//! # vliw-serve — a batched, content-cached compilation service
//!
//! Turns the paper pipeline into a long-running service: requests carry the
//! full input set (loop, machine, configuration) as canonical text, results
//! carry the full artifact set of [`vliw_pipeline::LoopResult`], and a
//! deterministic content hash over the canonical request encoding keys a
//! two-tier cache (sharded in-memory LRU over an on-disk content-addressed
//! store under `target/vliw-cache/`).
//!
//! * [`envelope`] — request/result envelopes, canonicalisation, cache key;
//! * [`hash`] — hand-rolled SHA-256 (offline container, no crypto crate);
//! * [`json`] — minimal JSON value/parser/writer (the vendored `serde` is a
//!   no-op stub);
//! * [`cache`] — the two tiers and their composition;
//! * [`compile`] — [`compile::CachedCompiler`], the cache plus in-flight
//!   dedup of concurrent identical requests;
//! * [`stats`] — hit/miss/eviction counters and latency percentiles;
//! * [`server`] / [`client`] — JSON-lines protocol over TCP, server
//!   (`vliw-served`) and client CLI (`vliw-client`), including the
//!   `compile_batch` op (N requests, one wire round trip);
//! * [`sys`] / [`reactor`] — the default event-driven serving core: a
//!   libc-free epoll/poll readiness facility and the reactor that
//!   multiplexes every connection on one thread while a worker pool runs
//!   the compiles (a thread-per-connection core remains as baseline);
//! * [`hist`] — lock-free log-linear latency histograms whose buckets are
//!   additive, so sharded stats merge into honest percentiles;
//! * [`ring`] / [`shard`] — consistent-hash routing over multiple peers
//!   with failover to ring successors and aggregated stats.
//!
//! The `repro` binary (moved here from `vliw-pipeline` so it can see the
//! cache) accepts `--cache` to route every experiment's per-loop compile
//! through a process-local [`compile::CachedCompiler`].

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod compile;
mod conn;
pub mod envelope;
pub mod hash;
pub mod hist;
pub mod json;
pub mod reactor;
pub mod ring;
pub mod server;
pub mod shard;
pub mod stats;
pub mod sys;

pub use cache::{DiskStore, MemCache, TieredCache, WriteBehind};
pub use client::{Client, ClientError, ServedResult};
pub use compile::{CachedCompiler, CompileError, Source};
pub use envelope::{CacheKey, CompileRequest, CompileResult, RequestError, CACHE_FORMAT_VERSION};
pub use hash::sha256_hex;
pub use json::{parse_json, Json, JsonParseError};
pub use ring::{HashRing, VNODES_PER_PEER};
pub use server::{
    handle_line, ServeOptions, Server, ServerConfig, ServerCore, ShutdownHandle,
    AGGREGATE_SUM_FIELDS,
};
pub use shard::{PeerStats, ShardedClient};
pub use stats::{StatsRegistry, StatsSnapshot};

// Governance types the server front-end (and embedders) configure:
// admission policy and the lane/budget machinery live in `vliw-governor`.
pub use vliw_governor::{Governor, Lane, ShedPolicy};

// The witness type that maps results between a caller's register/op names
// and the alpha-canonical space the semantic cache entries live in.
pub use vliw_normal::Witness;
