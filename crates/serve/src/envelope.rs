//! Request/result envelopes and the content-hash cache key.
//!
//! A [`CompileRequest`] carries the three inputs of one pipeline run as
//! canonical text — the loop body ([`vliw_ir::format_loop_full`]), the
//! machine ([`vliw_machine::format_machine`]) and the configuration
//! ([`vliw_pipeline::format_pipeline_config`]). Canonicalisation is
//! parse-then-reprint, so two requests that differ only in whitespace,
//! comments or line order of unordered sections hash to the same
//! [`CacheKey`]: the SHA-256 digest over a single preimage buffer holding
//! the [`CACHE_FORMAT_VERSION`] byte and a length-prefixed concatenation of
//! the three canonical texts (length prefixes prevent boundary-shift
//! collisions between the sections; the version byte retires every key the
//! moment compile semantics change without the text changing).
//!
//! A [`CompileResult`] carries every scalar artifact of
//! [`vliw_pipeline::LoopResult`] plus the lint diagnostics as structured
//! JSON objects (code, severity, stage, message, and the optional source
//! anchors). Every field of [`vliw_analysis::Diagnostic`] round-trips —
//! `stage` is the closed [`vliw_analysis::Stage`] enum and codes resolve
//! through [`vliw_analysis::LintCode::from_code`] — so a result
//! reconstructed from cache carries the same diagnostics a direct
//! [`vliw_pipeline::run_loop`] call would have produced.

use crate::hash::sha256_hex;
use crate::json::{parse_json, Json};
use vliw_analysis::{Diagnostic, LintCode, Severity, SourceLoc, Stage};
use vliw_ir::{format_loop_full, parse_loop, Loop};
use vliw_machine::{format_machine, parse_machine, MachineDesc};
use vliw_normal::Witness;
use vliw_pipeline::{
    format_pipeline_config, parse_pipeline_config, ExactOutcome, JointOutcome, LoopResult,
    PipelineConfig,
};

/// SHA-256 cache key as 64 lowercase hex digits.
pub type CacheKey = String;

/// Cache-format version folded into every key preimage. Bump this whenever
/// a change alters compile semantics *without* changing the canonical
/// request text (a new config default, a heuristic fix, a result-field
/// change), so stale disk artifacts from older builds can never be served:
/// they simply live under keys no current request can produce.
///
/// History: 1 = PR 3 layout (implicit — no version byte in the preimage);
/// 2 = this version byte plus the single-buffer preimage; 3 = diagnostics
/// stored as structured objects instead of pre-rendered text lines; 4 =
/// semantic (alpha-canonical) cache aliasing — results additionally stored
/// in canonical-class space, and every stored result carries an explicit
/// `v` field that decode rejects when it disagrees (mixed-version shards
/// fail closed instead of serving mis-keyed or mis-shaped entries); 5 =
/// results carry the joint solver's audited claims (`joint` object with
/// achieved/greedy/lower-bound IIs and the optimality flag); 6 = results
/// carry the exact partitioner's claims too (`exact` object with cut cost
/// and optimality flag), so truncated exact searches are visible to the
/// taint logic and on the wire.
pub const CACHE_FORMAT_VERSION: u8 = 6;

/// One compile job: the full pipeline input set as canonical text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompileRequest {
    /// Canonical loop text.
    pub loop_text: String,
    /// Canonical machine description text.
    pub machine_text: String,
    /// Canonical pipeline configuration text.
    pub config_text: String,
}

/// A [`CompileRequest`] that failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Which section failed: `"loop"`, `"machine"` or `"config"`.
    pub section: &'static str,
    /// The underlying parse error.
    pub message: String,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad {} section: {}", self.section, self.message)
    }
}

impl std::error::Error for RequestError {}

impl CompileRequest {
    /// Build a request from in-memory pipeline inputs. The encoders emit
    /// canonical text directly, so no re-canonicalisation is needed.
    pub fn from_parts(body: &Loop, machine: &MachineDesc, cfg: &PipelineConfig) -> Self {
        CompileRequest {
            loop_text: format_loop_full(body),
            machine_text: format_machine(machine),
            config_text: format_pipeline_config(cfg),
        }
    }

    /// Parse all three sections, rejecting the request if any is malformed,
    /// and return the decoded inputs. Used by the server before compiling.
    pub fn decode(&self) -> Result<(Loop, MachineDesc, PipelineConfig), RequestError> {
        let body = parse_loop(&self.loop_text).map_err(|e| RequestError {
            section: "loop",
            message: e.to_string(),
        })?;
        let machine = parse_machine(&self.machine_text).map_err(|e| RequestError {
            section: "machine",
            message: e.to_string(),
        })?;
        let cfg = parse_pipeline_config(&self.config_text).map_err(|e| RequestError {
            section: "config",
            message: e.to_string(),
        })?;
        Ok((body, machine, cfg))
    }

    /// Re-print each section from its parsed form, so formatting variants of
    /// the same inputs (extra whitespace, comments) share a cache key.
    pub fn canonicalize(&self) -> Result<CompileRequest, RequestError> {
        let (body, machine, cfg) = self.decode()?;
        Ok(CompileRequest::from_parts(&body, &machine, &cfg))
    }

    /// The canonical key preimage: one contiguous buffer holding the
    /// format-version byte followed by the length-prefixed sections (length
    /// prefixes prevent boundary-shift collisions). Built once and hashed in
    /// one pass — the sections are never re-encoded.
    pub fn preimage(&self) -> Vec<u8> {
        self.preimage_with_version(CACHE_FORMAT_VERSION)
    }

    fn preimage_with_version(&self, version: u8) -> Vec<u8> {
        let sections = [&self.loop_text, &self.machine_text, &self.config_text];
        let cap = 1 + sections.iter().map(|s| 8 + s.len()).sum::<usize>();
        let mut out = Vec::with_capacity(cap);
        out.push(version);
        for section in sections {
            out.extend_from_slice(&(section.len() as u64).to_be_bytes());
            out.extend_from_slice(section.as_bytes());
        }
        out
    }

    /// The content hash over [`CompileRequest::preimage`]. Assumes `self` is
    /// already canonical (as produced by [`CompileRequest::from_parts`] or
    /// [`CompileRequest::canonicalize`]).
    pub fn cache_key(&self) -> CacheKey {
        sha256_hex(&self.preimage())
    }

    /// Alpha-canonicalize the loop section (text canonicalisation for the
    /// other two): the returned request's [`CompileRequest::cache_key`] is
    /// the *semantic* key, shared by every request whose loop is isomorphic
    /// to this one (register renaming, commutative operand order,
    /// dependence-legal statement order, loop/array names). The witness
    /// maps this request's loop onto the canonical body and back.
    pub fn semantic_canonicalize(&self) -> Result<(CompileRequest, Witness), RequestError> {
        let (body, machine, cfg) = self.decode()?;
        let canon = vliw_normal::canonicalize(&body);
        Ok((
            CompileRequest {
                loop_text: format_loop_full(&canon.body),
                machine_text: format_machine(&machine),
                config_text: format_pipeline_config(&cfg),
            },
            canon.witness,
        ))
    }

    /// The semantic cache key: the exact key of the alpha-canonical form.
    /// Equal across all isomorphic variants of the same loop (with the same
    /// machine and configuration).
    pub fn semantic_key(&self) -> Result<CacheKey, RequestError> {
        Ok(self.semantic_canonicalize()?.0.cache_key())
    }

    /// JSON object form used on the wire and in the disk store.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("loop", Json::Str(self.loop_text.clone())),
            ("machine", Json::Str(self.machine_text.clone())),
            ("config", Json::Str(self.config_text.clone())),
        ])
    }

    /// Decode from the JSON object form.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        Self::from_json_with_defaults(v, None, None)
    }

    /// Decode a (possibly abbreviated) request object: a batch entry may
    /// omit `machine`/`config` and inherit the batch-level defaults the
    /// client hoisted out of the entry list.
    pub fn from_json_with_defaults(
        v: &Json,
        default_machine: Option<&str>,
        default_config: Option<&str>,
    ) -> Result<Self, String> {
        let field = |k: &str, default: Option<&str>| -> Result<String, String> {
            match v.get(k).map(|f| f.as_str()) {
                Some(Some(s)) => Ok(s.to_string()),
                Some(None) => Err(format!("request field `{k}` is not a string")),
                None => default
                    .map(str::to_string)
                    .ok_or_else(|| format!("request missing string field `{k}`")),
            }
        };
        Ok(CompileRequest {
            loop_text: field("loop", None)?,
            machine_text: field("machine", default_machine)?,
            config_text: field("config", default_config)?,
        })
    }

    /// Consuming variant of [`CompileRequest::from_json_with_defaults`]:
    /// moves the sections out of an owned entry instead of cloning them —
    /// the batch path owns its entry array, so each loop body transfers
    /// into the request without a copy.
    pub fn take_from_json(
        v: Json,
        default_machine: Option<&str>,
        default_config: Option<&str>,
    ) -> Result<Self, String> {
        let mut m = match v {
            Json::Obj(m) => m,
            _ => return Err("request missing string field `loop`".to_string()),
        };
        let mut field = |k: &str, default: Option<&str>| -> Result<String, String> {
            match m.remove(k) {
                Some(Json::Str(s)) => Ok(s),
                Some(_) => Err(format!("request field `{k}` is not a string")),
                None => default
                    .map(str::to_string)
                    .ok_or_else(|| format!("request missing string field `{k}`")),
            }
        };
        Ok(CompileRequest {
            loop_text: field("loop", None)?,
            machine_text: field("machine", default_machine)?,
            config_text: field("config", default_config)?,
        })
    }
}

/// The artifact set produced by one pipeline run, in wire/cache form.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileResult {
    /// Cache key of the request that produced this result.
    pub key: CacheKey,
    /// Loop name.
    pub name: String,
    /// Original (pre-copy) operation count.
    pub n_ops: usize,
    /// II of the ideal monolithic schedule.
    pub ideal_ii: u32,
    /// II after partitioning, copy insertion and rescheduling.
    pub clustered_ii: u32,
    /// Kernel copies inserted.
    pub n_copies: usize,
    /// Hoisted (pre-loop) invariant copies.
    pub n_hoisted: usize,
    /// Ideal kernel IPC.
    pub ideal_ipc: f64,
    /// Clustered kernel IPC.
    pub clustered_ipc: f64,
    /// Degradation normalised to 100.
    pub normalized: f64,
    /// Spills during per-bank colouring.
    pub spills: usize,
    /// MVE kernel unroll factor.
    pub mve_unroll: u32,
    /// Peak float-register pressure in the busiest bank.
    pub peak_float_pressure: usize,
    /// Chaitin spill rounds before colouring succeeded.
    pub spill_rounds: usize,
    /// Simulation verdict (`None` = simulation disabled).
    pub sim_ok: Option<bool>,
    /// Lint findings, carried in full structured form.
    pub diagnostics: Vec<Diagnostic>,
    /// The joint solver's claims (`None` unless the `joint` partitioner
    /// ran). `optimal: false` marks a budget-truncated search whose
    /// `lower_bound_ii` is the honest proven floor.
    pub joint: Option<JointOutcome>,
    /// The exact partitioner's claims (`None` unless the `exact`
    /// partitioner ran). `optimal: false` marks a budget-truncated search
    /// whose partition is the best incumbent found.
    pub exact: Option<ExactOutcome>,
}

/// Encode one diagnostic as the wire/cache JSON object. The shape matches
/// [`Diagnostic::render_json`]: `code`, `slug`, `severity`, `stage`,
/// `message`, plus whichever source anchors are present.
fn diag_to_json(d: &Diagnostic) -> Json {
    let mut fields: Vec<(&str, Json)> = vec![
        ("code", Json::Str(d.code.code().to_string())),
        ("slug", Json::Str(d.code.slug().to_string())),
        ("severity", Json::Str(d.severity.name().to_string())),
        ("stage", Json::Str(d.stage.name().to_string())),
        ("message", Json::Str(d.message.clone())),
    ];
    if let Some(o) = d.loc.op {
        fields.push(("op", Json::Num(o.index() as f64)));
    }
    if let Some(v) = d.loc.vreg {
        fields.push(("vreg", Json::Num(v.index() as f64)));
    }
    if let Some(c) = d.loc.cycle {
        fields.push(("cycle", Json::Num(c as f64)));
    }
    if let Some(c) = d.loc.cluster {
        fields.push(("cluster", Json::Num(c.index() as f64)));
    }
    Json::obj(fields)
}

/// Decode one diagnostic object. `slug` is derived from the code and is
/// ignored on input; unknown codes, stages or severities are decode errors
/// (the cache-format version retires old spellings, so a mismatch means
/// corruption, not drift).
fn diag_from_json(v: &Json) -> Result<Diagnostic, String> {
    let s = |k: &str| -> Result<&str, String> {
        v.get(k)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("diagnostic missing string field `{k}`"))
    };
    let code = LintCode::from_code(s("code")?)
        .ok_or_else(|| format!("unknown lint code `{}`", s("code").unwrap()))?;
    let severity = Severity::parse(s("severity")?)
        .ok_or_else(|| format!("unknown severity `{}`", s("severity").unwrap()))?;
    let stage = Stage::parse(s("stage")?)
        .ok_or_else(|| format!("unknown stage `{}`", s("stage").unwrap()))?;
    let opt_u32 = |k: &str| -> Result<Option<u32>, String> {
        match v.get(k) {
            None | Some(Json::Null) => Ok(None),
            Some(j) => j
                .as_f64()
                .filter(|n| *n >= 0.0 && *n == n.trunc())
                .map(|n| Some(n as u32))
                .ok_or_else(|| format!("diagnostic field `{k}` is not an index")),
        }
    };
    let loc = SourceLoc {
        op: opt_u32("op")?.map(vliw_ir::OpId),
        vreg: opt_u32("vreg")?.map(vliw_ir::VReg),
        cycle: match v.get("cycle") {
            None | Some(Json::Null) => None,
            Some(j) => Some(
                j.as_f64()
                    .filter(|n| *n == n.trunc())
                    .ok_or("diagnostic field `cycle` is not an integer")? as i64,
            ),
        },
        cluster: opt_u32("cluster")?.map(vliw_machine::ClusterId),
    };
    let mut d = Diagnostic::new(code, stage, loc, s("message")?.to_string());
    d.severity = severity;
    Ok(d)
}

/// Renumber diagnostic source anchors through a witness direction map.
/// Anchors outside the map's domain (ops or registers the pipeline created
/// during expansion/copy insertion) are dropped rather than mis-mapped.
fn map_diag_anchors(diags: &mut [Diagnostic], op_map: &[u32], vreg_map: &[u32]) {
    for d in diags {
        d.loc.op = d
            .loc
            .op
            .and_then(|o| op_map.get(o.index()).map(|&mapped| vliw_ir::OpId(mapped)));
        d.loc.vreg = d
            .loc
            .vreg
            .and_then(|v| vreg_map.get(v.index()).map(|&mapped| vliw_ir::VReg(mapped)));
    }
}

impl CompileResult {
    /// Package a pipeline result under `key`.
    pub fn from_loop_result(key: CacheKey, r: &LoopResult) -> Self {
        CompileResult {
            key,
            name: r.name.clone(),
            n_ops: r.n_ops,
            ideal_ii: r.ideal_ii,
            clustered_ii: r.clustered_ii,
            n_copies: r.n_copies,
            n_hoisted: r.n_hoisted,
            ideal_ipc: r.ideal_ipc,
            clustered_ipc: r.clustered_ipc,
            normalized: r.normalized,
            spills: r.spills,
            mve_unroll: r.mve_unroll,
            peak_float_pressure: r.peak_float_pressure,
            spill_rounds: r.spill_rounds,
            sim_ok: r.sim_ok,
            diagnostics: r.diagnostics.clone(),
            joint: r.joint,
            exact: r.exact,
        }
    }

    /// Reconstruct a [`LoopResult`] for harness code that consumes one.
    /// Diagnostics carry over in full: a cache hit reports the same
    /// findings the original compile did.
    pub fn to_loop_result(&self) -> LoopResult {
        LoopResult {
            name: self.name.clone(),
            n_ops: self.n_ops,
            ideal_ii: self.ideal_ii,
            clustered_ii: self.clustered_ii,
            n_copies: self.n_copies,
            n_hoisted: self.n_hoisted,
            ideal_ipc: self.ideal_ipc,
            clustered_ipc: self.clustered_ipc,
            normalized: self.normalized,
            spills: self.spills,
            mve_unroll: self.mve_unroll,
            peak_float_pressure: self.peak_float_pressure,
            spill_rounds: self.spill_rounds,
            sim_ok: self.sim_ok,
            diagnostics: self.diagnostics.clone(),
            joint: self.joint,
            exact: self.exact,
        }
    }

    /// Rewrite this result from the space of the loop it was compiled in
    /// into canonical-class space: the name becomes the canonical loop
    /// name and diagnostic source anchors are renumbered through `w`
    /// (anchors pointing at pipeline-created ops/registers beyond the
    /// original body are dropped — they have no canonical identity).
    /// `key` should be the semantic key the aliased entry is stored under.
    pub fn into_canonical_space(&self, key: CacheKey, w: &Witness) -> CompileResult {
        let mut out = self.clone();
        out.key = key;
        out.name = vliw_normal::CANONICAL_LOOP_NAME.to_string();
        map_diag_anchors(&mut out.diagnostics, &w.op_to_canon, &w.vreg_to_canon);
        out
    }

    /// Rewrite a canonical-space result into the space of the caller's
    /// loop: the inverse direction of
    /// [`CompileResult::into_canonical_space`], using the *caller's*
    /// witness. `key` should be the caller's exact cache key.
    pub fn from_canonical_space(&self, key: CacheKey, w: &Witness) -> CompileResult {
        let mut out = self.clone();
        out.key = key;
        out.name = w.original_name.clone();
        map_diag_anchors(&mut out.diagnostics, &w.op_from_canon, &w.vreg_from_canon);
        out
    }

    /// JSON object form used on the wire and in the disk store. Carries the
    /// [`CACHE_FORMAT_VERSION`] explicitly so decode can fail closed on
    /// entries written by any other format version.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("v", Json::Num(CACHE_FORMAT_VERSION as f64)),
            ("key", Json::Str(self.key.clone())),
            ("name", Json::Str(self.name.clone())),
            ("n_ops", Json::Num(self.n_ops as f64)),
            ("ideal_ii", Json::Num(self.ideal_ii as f64)),
            ("clustered_ii", Json::Num(self.clustered_ii as f64)),
            ("n_copies", Json::Num(self.n_copies as f64)),
            ("n_hoisted", Json::Num(self.n_hoisted as f64)),
            ("ideal_ipc", Json::Num(self.ideal_ipc)),
            ("clustered_ipc", Json::Num(self.clustered_ipc)),
            ("normalized", Json::Num(self.normalized)),
            ("spills", Json::Num(self.spills as f64)),
            ("mve_unroll", Json::Num(self.mve_unroll as f64)),
            (
                "peak_float_pressure",
                Json::Num(self.peak_float_pressure as f64),
            ),
            ("spill_rounds", Json::Num(self.spill_rounds as f64)),
            (
                "sim_ok",
                match self.sim_ok {
                    Some(b) => Json::Bool(b),
                    None => Json::Null,
                },
            ),
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(diag_to_json).collect()),
            ),
            (
                "joint",
                match &self.joint {
                    Some(j) => Json::obj([
                        ("ii", Json::Num(j.ii as f64)),
                        ("greedy_ii", Json::Num(j.greedy_ii as f64)),
                        ("lower_bound_ii", Json::Num(j.lower_bound_ii as f64)),
                        ("optimal", Json::Bool(j.optimal)),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "exact",
                match &self.exact {
                    Some(e) => Json::obj([
                        ("cost", Json::Num(e.cost)),
                        ("optimal", Json::Bool(e.optimal)),
                    ]),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Decode from the JSON object form. Rejects entries whose `v` field is
    /// missing (pre-v4 layouts) or disagrees with [`CACHE_FORMAT_VERSION`]:
    /// a mixed-version shard must fail closed, never serve a stale entry.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        match v.get("v").and_then(Json::as_f64) {
            Some(ver) if ver == CACHE_FORMAT_VERSION as f64 => {}
            Some(ver) => {
                return Err(format!(
                    "cache format version mismatch: entry is v{ver}, this build reads v{CACHE_FORMAT_VERSION}"
                ))
            }
            None => {
                return Err(format!(
                    "cache entry has no `v` field (pre-v{CACHE_FORMAT_VERSION} layout)"
                ))
            }
        }
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("result missing string field `{k}`"))
        };
        let num = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("result missing numeric field `{k}`"))
        };
        let int = |k: &str| -> Result<usize, String> {
            let n = num(k)?;
            if n < 0.0 || n != n.trunc() {
                return Err(format!("field `{k}` is not a non-negative integer"));
            }
            Ok(n as usize)
        };
        let sim_ok = match v.get("sim_ok") {
            Some(Json::Null) | None => None,
            Some(Json::Bool(b)) => Some(*b),
            Some(_) => return Err("field `sim_ok` is not bool or null".into()),
        };
        let diagnostics = v
            .get("diagnostics")
            .and_then(Json::as_arr)
            .ok_or("result missing array field `diagnostics`")?
            .iter()
            .map(diag_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let joint = match v.get("joint") {
            None | Some(Json::Null) => None,
            Some(j) => {
                let jint = |k: &str| -> Result<u32, String> {
                    j.get(k)
                        .and_then(Json::as_f64)
                        .filter(|n| *n >= 0.0 && *n == n.trunc())
                        .map(|n| n as u32)
                        .ok_or_else(|| format!("joint field `{k}` is not a non-negative integer"))
                };
                Some(JointOutcome {
                    ii: jint("ii")?,
                    greedy_ii: jint("greedy_ii")?,
                    lower_bound_ii: jint("lower_bound_ii")?,
                    optimal: match j.get("optimal") {
                        Some(Json::Bool(b)) => *b,
                        _ => return Err("joint field `optimal` is not bool".into()),
                    },
                })
            }
        };
        let exact = match v.get("exact") {
            None | Some(Json::Null) => None,
            Some(e) => Some(ExactOutcome {
                cost: e
                    .get("cost")
                    .and_then(Json::as_f64)
                    .ok_or("exact field `cost` is not a number")?,
                optimal: match e.get("optimal") {
                    Some(Json::Bool(b)) => *b,
                    _ => return Err("exact field `optimal` is not bool".into()),
                },
            }),
        };
        Ok(CompileResult {
            key: str_field("key")?,
            name: str_field("name")?,
            n_ops: int("n_ops")?,
            ideal_ii: int("ideal_ii")? as u32,
            clustered_ii: int("clustered_ii")? as u32,
            n_copies: int("n_copies")?,
            n_hoisted: int("n_hoisted")?,
            ideal_ipc: num("ideal_ipc")?,
            clustered_ipc: num("clustered_ipc")?,
            normalized: num("normalized")?,
            spills: int("spills")?,
            mve_unroll: int("mve_unroll")? as u32,
            peak_float_pressure: int("peak_float_pressure")?,
            spill_rounds: int("spill_rounds")?,
            sim_ok,
            diagnostics,
            joint,
            exact,
        })
    }

    /// Parse the single-line JSON document stored on disk.
    pub fn from_json_text(text: &str) -> Result<Self, String> {
        let v = parse_json(text).map_err(|e| e.to_string())?;
        CompileResult::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_loopgen::{corpus_with, CorpusSpec};

    fn sample_inputs() -> (Loop, MachineDesc, PipelineConfig) {
        let spec = CorpusSpec {
            n: 1,
            ..Default::default()
        };
        let body = corpus_with(&spec).remove(0);
        (body, MachineDesc::embedded(2, 4), PipelineConfig::default())
    }

    #[test]
    fn key_is_stable_and_input_sensitive() {
        let (body, machine, cfg) = sample_inputs();
        let req = CompileRequest::from_parts(&body, &machine, &cfg);
        let k1 = req.cache_key();
        assert_eq!(k1.len(), 64);
        assert_eq!(k1, req.cache_key());
        // Any section change moves the key.
        let other_machine = CompileRequest::from_parts(&body, &MachineDesc::copy_unit(2, 4), &cfg);
        assert_ne!(k1, other_machine.cache_key());
        let mut cfg2 = cfg;
        cfg2.simulate = true;
        assert_ne!(
            k1,
            CompileRequest::from_parts(&body, &machine, &cfg2).cache_key()
        );
    }

    #[test]
    fn joint_partitioner_round_trips_and_keys_distinctly() {
        // The joint solver rides the existing canonical config encoding, so
        // no cache-format bump: a joint request decodes back to itself and
        // keys apart from greedy/exact at any budget.
        let (body, machine, cfg) = sample_inputs();
        let base_key = CompileRequest::from_parts(&body, &machine, &cfg).cache_key();
        let mut seen = vec![base_key];
        for budget_ms in [0u64, 2000] {
            let mut jcfg = cfg.clone();
            jcfg.partitioner = vliw_pipeline::PartitionerKind::Joint { budget_ms };
            let req = CompileRequest::from_parts(&body, &machine, &jcfg);
            let (_, _, back) = req.decode().unwrap();
            assert_eq!(back.partitioner, jcfg.partitioner);
            let key = req.cache_key();
            assert!(!seen.contains(&key), "budget {budget_ms} collided");
            seen.push(key);
        }
    }

    #[test]
    fn key_moves_when_format_version_moves() {
        let (body, machine, cfg) = sample_inputs();
        let req = CompileRequest::from_parts(&body, &machine, &cfg);
        let current = sha256_hex(&req.preimage_with_version(CACHE_FORMAT_VERSION));
        assert_eq!(current, req.cache_key());
        let bumped = sha256_hex(&req.preimage_with_version(CACHE_FORMAT_VERSION + 1));
        assert_ne!(
            current, bumped,
            "a version bump must retire every existing key"
        );
        // The PR-3 layout (no version byte) is also retired by version 2.
        let unversioned = sha256_hex(&req.preimage()[1..]);
        assert_ne!(current, unversioned);
    }

    #[test]
    fn canonicalize_erases_formatting_variants() {
        let (body, machine, cfg) = sample_inputs();
        let req = CompileRequest::from_parts(&body, &machine, &cfg);
        let noisy = CompileRequest {
            loop_text: format!("; leading comment\n{}\n\n", req.loop_text),
            machine_text: format!("  {}", req.machine_text.replace('\n', "\n  ")),
            config_text: format!("{}; trailing comment\n", req.config_text),
        };
        let canon = noisy.canonicalize().unwrap();
        assert_eq!(canon, req);
        assert_eq!(canon.cache_key(), req.cache_key());
    }

    #[test]
    fn request_json_round_trips() {
        let (body, machine, cfg) = sample_inputs();
        let req = CompileRequest::from_parts(&body, &machine, &cfg);
        let back =
            CompileRequest::from_json(&parse_json(&req.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn result_json_round_trips() {
        let (body, machine, cfg) = sample_inputs();
        let req = CompileRequest::from_parts(&body, &machine, &cfg);
        let lr = vliw_pipeline::run_loop(&body, &machine, &cfg);
        let res = CompileResult::from_loop_result(req.cache_key(), &lr);
        let back = CompileResult::from_json_text(&res.to_json().render()).unwrap();
        assert_eq!(back, res);
        // Scalars survive the LoopResult reconstruction.
        let rebuilt = back.to_loop_result();
        assert_eq!(rebuilt.clustered_ii, lr.clustered_ii);
        assert_eq!(rebuilt.normalized, lr.normalized);
        assert_eq!(rebuilt.sim_ok, lr.sim_ok);
    }

    #[test]
    fn diagnostics_round_trip_structured() {
        // A hand-built result exercising every diagnostic field, including a
        // severity that differs from the code's default and every source
        // anchor at once.
        let mut demoted = Diagnostic::new(
            LintCode::Pres002,
            Stage::Pressure,
            SourceLoc::vreg(vliw_ir::VReg(7))
                .at_cycle(-3)
                .in_cluster(vliw_machine::ClusterId(2)),
            "pressure 9 exceeds capacity 8 with \"quotes\"\nand a newline".into(),
        );
        demoted.severity = Severity::Warn;
        let res = CompileResult {
            key: "k".repeat(64),
            name: "diag-loop".into(),
            n_ops: 1,
            ideal_ii: 1,
            clustered_ii: 1,
            n_copies: 0,
            n_hoisted: 0,
            ideal_ipc: 1.0,
            clustered_ipc: 1.0,
            normalized: 100.0,
            spills: 0,
            mve_unroll: 1,
            peak_float_pressure: 0,
            spill_rounds: 0,
            sim_ok: Some(false),
            diagnostics: vec![
                demoted,
                Diagnostic::new(
                    LintCode::Sim006,
                    Stage::Sim,
                    SourceLoc::op(vliw_ir::OpId(4)),
                    "divergence".into(),
                ),
            ],
            joint: Some(JointOutcome {
                ii: 3,
                greedy_ii: 4,
                lower_bound_ii: 2,
                optimal: false,
            }),
            exact: Some(ExactOutcome {
                cost: 12.5,
                optimal: false,
            }),
        };
        let back = CompileResult::from_json_text(&res.to_json().render()).unwrap();
        assert_eq!(back, res);
        // The reconstructed LoopResult carries the findings too — a cache
        // hit is indistinguishable from a direct compile.
        assert_eq!(back.to_loop_result().diagnostics, res.diagnostics);
    }

    #[test]
    fn diagnostic_decode_rejects_unknown_names() {
        let good = diag_to_json(&Diagnostic::new(
            LintCode::Bank001,
            Stage::Partition,
            SourceLoc::default(),
            "m".into(),
        ));
        assert!(diag_from_json(&good).is_ok());
        for (field, bad) in [
            ("code", "BANK999"),
            ("severity", "fatal"),
            ("stage", "banks"),
        ] {
            let mut j = good.clone();
            if let Json::Obj(m) = &mut j {
                m.insert(field.into(), Json::Str(bad.to_string()));
            }
            assert!(diag_from_json(&j).is_err(), "`{field}` = `{bad}`");
        }
    }

    #[test]
    fn result_decode_rejects_other_format_versions() {
        let (body, machine, cfg) = sample_inputs();
        let req = CompileRequest::from_parts(&body, &machine, &cfg);
        let lr = vliw_pipeline::run_loop(&body, &machine, &cfg);
        let res = CompileResult::from_loop_result(req.cache_key(), &lr);
        let mut doc = match res.to_json() {
            Json::Obj(m) => m,
            _ => unreachable!(),
        };
        // A v3-era entry carries no `v` field at all: must fail closed.
        doc.remove("v");
        let err = CompileResult::from_json(&Json::Obj(doc.clone())).unwrap_err();
        assert!(err.contains("no `v` field"), "{err}");
        // An explicit other version must fail closed too.
        doc.insert("v".into(), Json::Num(3.0));
        let err = CompileResult::from_json(&Json::Obj(doc.clone())).unwrap_err();
        assert!(err.contains("version mismatch"), "{err}");
        doc.insert("v".into(), Json::Num(CACHE_FORMAT_VERSION as f64 + 1.0));
        assert!(CompileResult::from_json(&Json::Obj(doc)).is_err());
    }

    #[test]
    fn semantic_key_is_shared_by_isomorphic_variants_only() {
        let (body, machine, cfg) = sample_inputs();
        let req = CompileRequest::from_parts(&body, &machine, &cfg);
        let variant = vliw_normal::variant(&body, 11);
        let vreq = CompileRequest::from_parts(&variant, &machine, &cfg);
        assert_ne!(req.cache_key(), vreq.cache_key(), "texts differ");
        assert_eq!(
            req.semantic_key().unwrap(),
            vreq.semantic_key().unwrap(),
            "semantic keys agree"
        );
        // A different machine must split the semantic key.
        let other = CompileRequest::from_parts(&variant, &MachineDesc::copy_unit(2, 4), &cfg);
        assert_ne!(req.semantic_key().unwrap(), other.semantic_key().unwrap());
        // A semantically different loop must split it too.
        let perturbed = vliw_normal::perturb(&body, 5).expect("mutable");
        let preq = CompileRequest::from_parts(&perturbed, &machine, &cfg);
        assert_ne!(req.semantic_key().unwrap(), preq.semantic_key().unwrap());
    }

    #[test]
    fn canonical_space_round_trip_maps_anchors_and_name() {
        let (body, machine, cfg) = sample_inputs();
        let req = CompileRequest::from_parts(&body, &machine, &cfg);
        let (canon_req, w) = req.semantic_canonicalize().unwrap();
        let sem_key = canon_req.cache_key();
        let lr = vliw_pipeline::run_loop(&body, &machine, &cfg);
        let mut res = CompileResult::from_loop_result(req.cache_key(), &lr);
        // Attach anchored diagnostics: one mappable, one pointing past the
        // original body (a pipeline-created op) that must drop its anchor.
        res.diagnostics = vec![
            Diagnostic::new(
                LintCode::Ir007,
                Stage::Ir,
                SourceLoc {
                    op: Some(vliw_ir::OpId(0)),
                    vreg: Some(vliw_ir::VReg(0)),
                    ..Default::default()
                },
                "anchored".into(),
            ),
            Diagnostic::new(
                LintCode::Sched001,
                Stage::Schedule,
                SourceLoc::op(vliw_ir::OpId(10_000)),
                "expansion op".into(),
            ),
        ];
        let canonical = res.into_canonical_space(sem_key.clone(), &w);
        assert_eq!(canonical.key, sem_key);
        assert_eq!(canonical.name, vliw_normal::CANONICAL_LOOP_NAME);
        assert_eq!(
            canonical.diagnostics[0].loc.op,
            Some(vliw_ir::OpId(w.op_to_canon[0]))
        );
        assert_eq!(
            canonical.diagnostics[1].loc.op, None,
            "out-of-range anchor drops"
        );
        let back = canonical.from_canonical_space(req.cache_key(), &w);
        assert_eq!(back.name, body.name);
        assert_eq!(back.diagnostics[0].loc.op, Some(vliw_ir::OpId(0)));
        assert_eq!(back.diagnostics[0].loc.vreg, Some(vliw_ir::VReg(0)));
        // Scalars are class-level: untouched by the mapping.
        assert_eq!(back.clustered_ii, res.clustered_ii);
        assert_eq!(back.normalized, res.normalized);
    }

    #[test]
    fn decode_rejects_malformed_sections() {
        let (body, machine, cfg) = sample_inputs();
        let good = CompileRequest::from_parts(&body, &machine, &cfg);
        for (section, bad) in [
            (
                "loop",
                CompileRequest {
                    loop_text: "not a loop".into(),
                    ..good.clone()
                },
            ),
            (
                "machine",
                CompileRequest {
                    machine_text: "machine\ncluster x".into(),
                    ..good.clone()
                },
            ),
            (
                "config",
                CompileRequest {
                    config_text: "partitioner frobnicate".into(),
                    ..good.clone()
                },
            ),
        ] {
            let err = bad.decode().unwrap_err();
            assert_eq!(err.section, section, "{err}");
        }
    }
}
